//! The structure *lifecycle*: incremental maintenance of the §5 overlay
//! under churn and mobility.
//!
//! [`build_structure`](crate::structure::build_structure) produces a
//! snapshot of a world that, since the dynamic-environment subsystem
//! landed, keeps changing underneath it: dominators crash and orphan their
//! members, late joiners appear with no cluster, mobile members drift out
//! of their dominator's radius, and mobile dominators drift into color
//! conflicts. A [`StructureMaintainer`] owns the structure plus the dirty
//! state accumulated from engine [`NodeEvent`]s and repairs it
//! *incrementally* — each repair confined to the affected neighborhood and
//! run as slot-consuming protocol phases, so repair cost is measured in the
//! same currency as the original build:
//!
//! * **re-homing** — orphans, joiners, and handover members run a
//!   two-slot ANNOUNCE/JOIN protocol (see [`RehomeMsg`]) against nearby
//!   surviving dominators: they attach to the nearest announcer within
//!   `r_c` and confirm with a JOIN beacon their new dominator hears;
//! * **MIS patch** — seekers no surviving dominator covers re-run the
//!   dominating-set stage among themselves (everyone else absent), exactly
//!   the local re-clustering the paper's substrate would perform;
//! * **recoloring patch** — fresh dominators (and moved dominators caught
//!   in a same-color conflict) claim colors against the committed palette
//!   beaconed by established neighbors
//!   ([`stages::color_patch_stage`]);
//! * **local re-election** — clusters whose membership changed re-run
//!   reporter election under the cluster-color TDMA, everyone else keeping
//!   their reporters.
//!
//! When churn outruns locality — more than
//! [`MaintainConfig::rebuild_threshold`] of the live network needs
//! re-homing — the maintainer falls back to a full masked rebuild, which is
//! also the baseline the `repair-bench` experiment measures against.
//!
//! After every repair the structure must satisfy
//! [`audit_structure_masked`]
//! scoped to the live nodes (with attachment certified against the
//! handover hysteresis); the proptests in `tests/maintain_properties.rs`
//! enforce exactly that.

use crate::knowledge::{NodeRecord, Role};
use crate::stages::{self, ColorSeat};
use crate::structure::{
    build_structure_masked, build_structure_observed, AggregationStructure, NetworkEnv,
    StructureConfig,
};
use crate::validate::{audit_structure_masked, AuditTolerances, StructureAudit};
use mca_geom::SpatialGrid;
use mca_radio::rng::derive_seed;
use mca_radio::{
    Action, Channel, DetectionEvent, Engine, NodeEvent, NodeId, Observation, Protocol,
};
use mca_sinr::SinrParams;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Maintenance policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintainConfig {
    /// Handover hysteresis `h ≥ 1`: a member is re-homed once its distance
    /// to its dominator exceeds `h · r_c`. Larger values trade attachment
    /// slack for fewer handovers.
    pub handover_hysteresis: f64,
    /// Fraction of the live network that may need re-homing before the
    /// maintainer gives up on locality and rebuilds from scratch.
    pub rebuild_threshold: f64,
    /// Motion watch granularity, as a fraction of the cluster radius: the
    /// engine reports motion only on drifts beyond
    /// `move_threshold · r_c` from the last anchor
    /// ([`Engine::watch_events`](mca_radio::Engine::watch_events) — pass
    /// [`StructureMaintainer::move_threshold`]). Between a pair's events
    /// its true distance can exceed what the maintainer last acted on by
    /// up to four anchors' worth, which
    /// [`StructureMaintainer::tolerances`] accounts for.
    pub move_threshold: f64,
    /// Epochs a node waits after its first proactive action before it can
    /// be acted on again while still flagged; each further action doubles
    /// the wait (bounded exponential backoff, capped at
    /// [`MaintainConfig::backoff_cap`]). A recovery notice resets the
    /// node's backoff. Keeps a transiently faded link from thrashing
    /// handovers epoch after epoch.
    pub backoff_base: u64,
    /// Upper bound on the proactive backoff wait, in epochs.
    pub backoff_cap: u64,
}

impl Default for MaintainConfig {
    fn default() -> Self {
        MaintainConfig {
            handover_hysteresis: 1.25,
            rebuild_threshold: 0.5,
            move_threshold: 0.05,
            backoff_base: 1,
            backoff_cap: 16,
        }
    }
}

/// What a [`StructureMaintainer::repair`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairKind {
    /// Nothing was dirty; no slots were spent.
    #[default]
    Clean,
    /// Local repair operations ran.
    Repaired,
    /// Churn exceeded the rebuild threshold; the structure was rebuilt
    /// from scratch over the live set.
    Rebuilt,
}

/// Per-repair accounting, in the same slot currency as
/// [`BuildReport`](crate::structure::BuildReport).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RepairReport {
    /// What the repair did.
    pub kind: RepairKind,
    /// Slots of the ANNOUNCE/JOIN re-homing phases (both passes).
    pub rehome_slots: u64,
    /// Slots of the local dominating-set (MIS) patch.
    pub patch_slots: u64,
    /// Slots of the recoloring patch.
    pub color_slots: u64,
    /// Slots of the scoped reporter re-election.
    pub election_slots: u64,
    /// Slots of a full rebuild (only when `kind == Rebuilt`).
    pub rebuild_slots: u64,
    /// Nodes that needed a (new) dominator this epoch.
    pub seekers: usize,
    /// Seekers that re-attached to a surviving dominator.
    pub rehomed: usize,
    /// Members re-homed because they drifted beyond the hysteresis radius.
    pub handovers: usize,
    /// Fresh dominators elected by the MIS patch.
    pub new_dominators: usize,
    /// Seekers that ended as singleton dominators after every protocol
    /// avenue failed (orchestrator fallback; quality metric).
    pub forced_singletons: usize,
    /// Clusters retired because their dominator crashed.
    pub retired_clusters: usize,
    /// Clusters merged because mobility pushed two dominators within the
    /// independence radius (the smaller cluster demotes and is absorbed).
    pub merged_clusters: usize,
    /// Clusters whose membership changed (re-elected this epoch).
    pub dirty_clusters: usize,
    /// Moved dominators recolored out of a same-color conflict.
    pub recolored: usize,
    /// Duplicate reporters demoted after a re-election (the election's
    /// at-most-one guarantee is whp; the dominator spots a duplicate on its
    /// channel and keeps the smaller id).
    pub reporter_dedups: usize,
    /// Reporters appointed by their dominator after a channel's randomized
    /// election came up empty (the channel-fill counterpart of the build's
    /// `serves_channel0` rescue).
    pub reporter_appointments: usize,
    /// JOIN confirmations dominators decoded during re-homing (dominator-
    /// side knowledge of membership changes; quality metric).
    pub join_confirms: usize,
    /// Flagged members pre-emptively re-homed this epoch, before any audit
    /// could fail (SINR-triggered proactive repair).
    pub proactive_rehomes: usize,
    /// Flagged dominators demoted into scoped re-election this epoch.
    pub proactive_demotions: usize,
    /// Flagged nodes whose proactive action was deferred by the bounded
    /// exponential backoff ([`MaintainConfig::backoff_base`]).
    pub deferred_flags: usize,
    /// Recovery notices consumed this epoch (flags cleared without action).
    pub recovered_flags: usize,
    /// Worst detection latency (slots from degradation onset to the
    /// detector flagging it) over the flags acted on this epoch; `0` when
    /// none were acted on.
    pub time_to_detect: u64,
    /// Worst repair latency (slots from degradation onset to the repair
    /// epoch that acted on it) over the flags acted on this epoch; `0`
    /// when none were acted on. Requires the caller to supply the current
    /// slot via [`StructureMaintainer::repair_at`].
    pub time_to_repair: u64,
}

impl RepairReport {
    /// Total slots this repair consumed.
    pub fn total_slots(&self) -> u64 {
        self.rehome_slots
            + self.patch_slots
            + self.color_slots
            + self.election_slots
            + self.rebuild_slots
    }

    /// Folds another epoch's report into this one, element-wise — the
    /// same accumulation idiom as `Metrics::merge` with its per-channel
    /// vectors: slot and node counters add, the two latency fields keep
    /// the worst case, and `kind` keeps the most severe outcome
    /// (`Rebuilt > Repaired > Clean`).
    pub fn merge(&mut self, other: &RepairReport) {
        self.kind = match (self.kind, other.kind) {
            (RepairKind::Rebuilt, _) | (_, RepairKind::Rebuilt) => RepairKind::Rebuilt,
            (RepairKind::Repaired, _) | (_, RepairKind::Repaired) => RepairKind::Repaired,
            (RepairKind::Clean, RepairKind::Clean) => RepairKind::Clean,
        };
        self.rehome_slots += other.rehome_slots;
        self.patch_slots += other.patch_slots;
        self.color_slots += other.color_slots;
        self.election_slots += other.election_slots;
        self.rebuild_slots += other.rebuild_slots;
        self.seekers += other.seekers;
        self.rehomed += other.rehomed;
        self.handovers += other.handovers;
        self.new_dominators += other.new_dominators;
        self.forced_singletons += other.forced_singletons;
        self.retired_clusters += other.retired_clusters;
        self.merged_clusters += other.merged_clusters;
        self.dirty_clusters += other.dirty_clusters;
        self.recolored += other.recolored;
        self.reporter_dedups += other.reporter_dedups;
        self.reporter_appointments += other.reporter_appointments;
        self.join_confirms += other.join_confirms;
        self.proactive_rehomes += other.proactive_rehomes;
        self.proactive_demotions += other.proactive_demotions;
        self.deferred_flags += other.deferred_flags;
        self.recovered_flags += other.recovered_flags;
        self.time_to_detect = self.time_to_detect.max(other.time_to_detect);
        self.time_to_repair = self.time_to_repair.max(other.time_to_repair);
    }
}

// ---------------------------------------------------------------------------
// The re-homing protocol
// ---------------------------------------------------------------------------

/// Messages of the re-homing phase (two-slot rounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RehomeMsg {
    /// ANNOUNCE slot: "I am a dominator with cluster color `color`."
    Announce {
        /// The announcing dominator's cluster color.
        color: u16,
    },
    /// JOIN slot: "I attached to dominator `to`."
    Join {
        /// The dominator joined.
        to: NodeId,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct RehomeCfg {
    /// Attach radius (`r_c`).
    radius: f64,
    /// Anchor announce probability (`1/(2µ)`).
    p_announce: f64,
    /// Seeker join-confirm probability.
    p_join: f64,
    /// Two-slot rounds.
    rounds: u64,
    /// Conservative node-side parameters (RSSI distance filter).
    params: SinrParams,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RehomeRole {
    /// A surviving dominator announcing and collecting JOIN confirms.
    Anchor { color: u16 },
    /// A node looking for a dominator.
    Seeker,
    /// Not involved (kept absent by the stage fault plan).
    Out,
}

/// The ANNOUNCE/JOIN re-homing protocol: anchors beacon their identity and
/// color on even slots; seekers attach to the nearest anchor within the
/// radius and confirm on odd slots, so the dominator side learns its
/// membership grew without any orchestrator back-channel.
#[derive(Debug, Clone)]
struct RehomeProtocol {
    cfg: RehomeCfg,
    me: NodeId,
    role: RehomeRole,
    /// Seeker: best anchor so far `(dominator, color, distance)`.
    best: Option<(NodeId, u16, f64)>,
    /// Anchor: JOIN confirmations decoded for this anchor.
    joins_heard: u32,
    rounds_done: u64,
    finished: bool,
}

impl RehomeProtocol {
    fn new(me: NodeId, role: RehomeRole, cfg: RehomeCfg) -> Self {
        RehomeProtocol {
            cfg,
            me,
            role,
            best: None,
            joins_heard: 0,
            rounds_done: 0,
            finished: role == RehomeRole::Out,
        }
    }

    fn attachment(&self) -> Option<(NodeId, u16, f64)> {
        self.best
    }
}

impl Protocol for RehomeProtocol {
    type Msg = RehomeMsg;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<RehomeMsg> {
        let join_slot = slot % 2 == 1;
        match self.role {
            RehomeRole::Anchor { color } => {
                if join_slot {
                    Action::Listen {
                        channel: Channel::FIRST,
                    }
                } else if rng.gen_bool(self.cfg.p_announce) {
                    Action::Transmit {
                        channel: Channel::FIRST,
                        msg: RehomeMsg::Announce { color },
                    }
                } else {
                    Action::Idle
                }
            }
            RehomeRole::Seeker => {
                if !join_slot {
                    Action::Listen {
                        channel: Channel::FIRST,
                    }
                } else if let Some((to, _, _)) = self.best {
                    if rng.gen_bool(self.cfg.p_join) {
                        Action::Transmit {
                            channel: Channel::FIRST,
                            msg: RehomeMsg::Join { to },
                        }
                    } else {
                        Action::Idle
                    }
                } else {
                    Action::Idle
                }
            }
            RehomeRole::Out => Action::Idle,
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<RehomeMsg>, _rng: &mut SmallRng) {
        if let Observation::Received(r) = &obs {
            match (self.role, r.msg) {
                (RehomeRole::Seeker, RehomeMsg::Announce { color }) => {
                    let dist = r.distance_estimate(&self.cfg.params);
                    if dist <= self.cfg.radius * 1.02
                        && self.best.is_none_or(|(_, _, bd)| dist < bd)
                    {
                        self.best = Some((r.from, color, dist));
                    }
                }
                (RehomeRole::Anchor { .. }, RehomeMsg::Join { to }) if to == self.me => {
                    self.joins_heard += 1;
                }
                _ => {}
            }
        }
        if slot % 2 == 1 {
            self.rounds_done += 1;
            if self.rounds_done >= self.cfg.rounds {
                self.finished = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

// ---------------------------------------------------------------------------
// The maintainer
// ---------------------------------------------------------------------------

/// Owns an [`AggregationStructure`] and keeps it sound while the network
/// churns and moves. Feed it engine [`NodeEvent`]s with
/// [`StructureMaintainer::observe`], then call
/// [`StructureMaintainer::repair`] at the maintenance cadence.
#[derive(Debug, Clone)]
pub struct StructureMaintainer {
    cfg: StructureConfig,
    mcfg: MaintainConfig,
    structure: AggregationStructure,
    alive: Vec<bool>,
    /// Nodes needing a (new) dominator: orphans of crashed dominators,
    /// late joiners, handover candidates.
    seekers: BTreeSet<u32>,
    /// Cluster heads whose membership changed since the last repair.
    dirty: BTreeSet<u32>,
    /// Nodes with undigested motion events.
    movers: BTreeSet<u32>,
    /// Clusters retired (dominator crashed) since the last repair.
    retired: usize,
    /// Repair epochs executed (distinguishes per-epoch RNG streams).
    epochs: u64,
    /// Observability recorder ([`StructureMaintainer::attach_obs`]);
    /// repairs emit one typed event per action class per epoch.
    obs: Option<mca_obs::Recorder>,
    /// Cumulative repair slots before the current epoch (event/span slot
    /// attribution).
    repair_slots: u64,
    /// Scratch grid over live dominator positions, reused across repairs
    /// (allocation-free steady state via [`SpatialGrid::rebuild`]).
    grid: SpatialGrid,
    grid_doms: Vec<u32>,
    grid_pts: Vec<mca_geom::Point>,
    /// Nodes the degradation detector currently flags
    /// ([`StructureMaintainer::observe_detection`]); cleared on recovery.
    flagged: BTreeSet<u32>,
    /// Per flagged node: `(since, detect_slot)` from the Degraded event,
    /// for time-to-detect / time-to-repair attribution.
    flag_meta: HashMap<u32, (u64, u64)>,
    /// Per-node proactive backoff: `(level, retry_epoch)` — the node is
    /// not acted on again before `retry_epoch`.
    backoff: HashMap<u32, (u32, u64)>,
    /// Recovery notices consumed since the last repair.
    recovered: usize,
    /// World slot of the in-flight [`StructureMaintainer::repair_at`] call.
    now: Option<u64>,
}

impl StructureMaintainer {
    /// Builds the structure over the live subset of `env` and wraps it in a
    /// maintainer. `alive = None` means every node is present.
    pub fn build(
        env: &NetworkEnv,
        cfg: StructureConfig,
        mcfg: MaintainConfig,
        alive: Option<&[bool]>,
    ) -> Self {
        let structure = build_structure_masked(env, &cfg, alive);
        let alive = alive
            .map(<[bool]>::to_vec)
            .unwrap_or_else(|| vec![true; env.len()]);
        Self::adopt(structure, cfg, mcfg, alive)
    }

    /// Wraps an already-built structure. `alive[i]` must reflect the world
    /// the structure was built over.
    pub fn adopt(
        structure: AggregationStructure,
        cfg: StructureConfig,
        mcfg: MaintainConfig,
        alive: Vec<bool>,
    ) -> Self {
        assert_eq!(structure.records.len(), alive.len());
        assert!(
            mcfg.handover_hysteresis >= 1.0,
            "hysteresis below 1 would re-home nodes the build considers attached"
        );
        StructureMaintainer {
            cfg,
            mcfg,
            structure,
            alive,
            seekers: BTreeSet::new(),
            dirty: BTreeSet::new(),
            movers: BTreeSet::new(),
            retired: 0,
            epochs: 0,
            obs: None,
            repair_slots: 0,
            grid: SpatialGrid::build(&[], 1.0),
            grid_doms: Vec::new(),
            grid_pts: Vec::new(),
            flagged: BTreeSet::new(),
            flag_meta: HashMap::new(),
            backoff: HashMap::new(),
            recovered: 0,
            now: None,
        }
    }

    /// The maintained structure.
    pub fn structure(&self) -> &AggregationStructure {
        &self.structure
    }

    /// Liveness per node (joined and not crashed, as observed).
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Repair epochs executed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Attaches an observability recorder: every subsequent
    /// [`StructureMaintainer::repair`] records a wall-clock span and one
    /// typed event per repair action class (re-home, MIS patch, recolor,
    /// merge, re-election, rebuild) with slot/epoch attribution, and a
    /// full rebuild records its stage breakdown. Requires the `obs` cargo
    /// feature for real data; recording never influences the repair.
    pub fn attach_obs(&mut self, rec: mca_obs::Recorder) {
        self.obs = Some(rec);
    }

    /// The observability recorder, if one is attached.
    pub fn obs(&self) -> Option<&mca_obs::Recorder> {
        self.obs.as_ref()
    }

    /// Detaches and returns the observability recorder.
    pub fn take_obs(&mut self) -> Option<mca_obs::Recorder> {
        self.obs.take()
    }

    /// Whether any dirty state is pending (a repair would do work).
    pub fn is_dirty(&self) -> bool {
        !self.seekers.is_empty()
            || !self.dirty.is_empty()
            || !self.movers.is_empty()
            || !self.flagged.is_empty()
    }

    /// Digests one detector transition
    /// ([`Engine::drain_detections`](mca_radio::Engine::drain_detections))
    /// into proactive-repair state: a degradation flags the node for
    /// pre-emptive action at the next repair epoch, a recovery clears the
    /// flag and resets the node's backoff without any repair work.
    pub fn observe_detection(&mut self, event: &DetectionEvent) {
        match *event {
            DetectionEvent::Degraded {
                node, slot, since, ..
            } => {
                if self.alive[node.index()] {
                    self.flagged.insert(node.0);
                    self.flag_meta.insert(node.0, (since, slot));
                }
            }
            DetectionEvent::Recovered { node, .. } => {
                if self.flagged.remove(&node.0) {
                    self.flag_meta.remove(&node.0);
                    self.backoff.remove(&node.0);
                    self.recovered += 1;
                }
            }
        }
    }

    /// Nodes currently flagged by the detector and awaiting (or backing
    /// off from) proactive action, ascending.
    pub fn flagged_nodes(&self) -> Vec<u32> {
        self.flagged.iter().copied().collect()
    }

    /// Whether node `node` is currently flagged as degraded.
    pub fn is_flagged(&self, node: u32) -> bool {
        self.flagged.contains(&node)
    }

    /// The engine watch threshold (absolute distance) this maintainer's
    /// policy expects — pass to
    /// [`Engine::watch_events`](mca_radio::Engine::watch_events).
    pub fn move_threshold(&self) -> f64 {
        self.mcfg.move_threshold * self.cfg.cluster_radius
    }

    /// The audit tolerances this maintainer certifies against: attachment
    /// within the handover hysteresis, plus the motion the event watch can
    /// leave unseen between two nodes' anchors (4 thresholds), times the
    /// build's RSSI slack.
    pub fn tolerances(&self) -> AuditTolerances {
        AuditTolerances {
            attach_ratio: (self.mcfg.handover_hysteresis + 4.0 * self.mcfg.move_threshold) * 1.05,
            ..AuditTolerances::default()
        }
    }

    /// Audits the maintained structure over the live subset of `env`.
    pub fn audit(&self, env: &NetworkEnv) -> StructureAudit {
        audit_structure_masked(
            env,
            &self.structure,
            self.cfg.cluster_radius,
            Some(&self.alive),
        )
    }

    /// Digests one engine event into dirty state. O(1) except for a
    /// dominator crash, which is O(members) via the cluster index.
    pub fn observe(&mut self, event: &NodeEvent) {
        match *event {
            NodeEvent::Joined { node, .. } => {
                let i = node.index();
                self.alive[i] = true;
                self.structure.records[i] = NodeRecord::new(node);
                self.seekers.insert(node.0);
            }
            NodeEvent::Crashed { node, .. } => {
                let i = node.index();
                self.alive[i] = false;
                self.seekers.remove(&node.0);
                self.movers.remove(&node.0);
                // A crash supersedes any degradation flag: the lifecycle
                // path below repairs harder than the proactive one would.
                self.flagged.remove(&node.0);
                self.flag_meta.remove(&node.0);
                self.backoff.remove(&node.0);
                let rec = &self.structure.records[i];
                if rec.role.is_dominator() {
                    // Cluster retired: orphan every surviving member.
                    self.dirty.remove(&node.0);
                    self.retired += 1;
                    let members: Vec<NodeId> = self.structure.members_of(node).to_vec();
                    for m in members {
                        if m == node || !self.alive[m.index()] {
                            continue;
                        }
                        if self.structure.records[m.index()].cluster == Some(node) {
                            detach(&mut self.structure.records[m.index()]);
                            self.seekers.insert(m.0);
                        }
                    }
                } else if let Some(c) = rec.cluster {
                    // A member (possibly a reporter) died: its cluster's
                    // census and elections are stale.
                    if self.alive[c.index()] {
                        self.dirty.insert(c.0);
                    }
                }
                self.structure.records[i] = NodeRecord::new(node);
            }
            NodeEvent::Moved { node, .. } => {
                if self.alive[node.index()] {
                    self.movers.insert(node.0);
                }
            }
        }
    }

    /// Runs one maintenance epoch against the current world (`env` carries
    /// the up-to-date positions): digests pending motion into handovers and
    /// color conflicts, then repairs — re-homing, MIS patch, recoloring,
    /// census refresh, scoped re-election — or rebuilds if churn exceeded
    /// the threshold. `seed` must vary per epoch (it parameterizes every
    /// protocol phase of the repair).
    pub fn repair(&mut self, env: &NetworkEnv, seed: u64) -> RepairReport {
        use mca_obs::{EventKind, SpanKind, Stopwatch};
        let sw = Stopwatch::start_if(self.obs.is_some());
        let before = self.repair_slots;
        let report = self.repair_inner(env, seed);
        self.repair_slots = before + report.total_slots();
        if let Some(rec) = self.obs.as_mut() {
            let epoch = self.epochs;
            rec.span(SpanKind::Repair, before, 0, 0, sw.elapsed_ns());
            let acted = (report.proactive_rehomes + report.proactive_demotions) as u64;
            if acted > 0 {
                rec.event(EventKind::DetectDegraded, before, epoch, 0, acted);
            }
            if report.recovered_flags > 0 {
                rec.event(
                    EventKind::DetectRecovered,
                    before,
                    epoch,
                    0,
                    report.recovered_flags as u64,
                );
            }
            match report.kind {
                RepairKind::Clean => rec.event(EventKind::RepairClean, before, epoch, 0, 1),
                RepairKind::Rebuilt => rec.event(
                    EventKind::RepairRebuild,
                    before,
                    epoch,
                    report.rebuild_slots,
                    1,
                ),
                RepairKind::Repaired => {
                    // One event per action class that did anything.
                    let actions: [(EventKind, u64, u64); 6] = [
                        (
                            EventKind::RepairProactive,
                            0,
                            (report.proactive_rehomes + report.proactive_demotions) as u64,
                        ),
                        (EventKind::RepairMerge, 0, report.merged_clusters as u64),
                        (
                            EventKind::RepairRehome,
                            report.rehome_slots,
                            report.rehomed as u64,
                        ),
                        (
                            EventKind::RepairMisPatch,
                            report.patch_slots,
                            report.new_dominators as u64,
                        ),
                        (
                            EventKind::RepairRecolor,
                            report.color_slots,
                            report.recolored as u64,
                        ),
                        (
                            EventKind::RepairElection,
                            report.election_slots,
                            report.reporter_appointments as u64,
                        ),
                    ];
                    for (kind, slots, count) in actions {
                        if slots > 0 || count > 0 {
                            rec.event(kind, before, epoch, slots, count);
                        }
                    }
                }
            }
        }
        report
    }

    /// [`StructureMaintainer::repair`] with the current world slot
    /// supplied, so proactive actions can report
    /// [`RepairReport::time_to_repair`] — the slot distance from
    /// degradation onset (the detector's `since`) to this repair epoch.
    /// Plain `repair` leaves that field `0` (the maintainer has no clock
    /// of its own).
    pub fn repair_at(&mut self, env: &NetworkEnv, seed: u64, now: u64) -> RepairReport {
        self.now = Some(now);
        let report = self.repair(env, seed);
        self.now = None;
        report
    }

    /// The uninstrumented repair body (see [`StructureMaintainer::repair`]).
    fn repair_inner(&mut self, env: &NetworkEnv, seed: u64) -> RepairReport {
        let n = env.len();
        assert_eq!(n, self.structure.records.len());
        self.epochs += 1;
        let mut report = RepairReport {
            retired_clusters: std::mem::take(&mut self.retired),
            ..RepairReport::default()
        };

        // --- Digest motion: handovers and dominator color conflicts. ---
        let hyst = self.mcfg.handover_hysteresis.max(1.0) * self.cfg.cluster_radius;
        let mut recolor: BTreeSet<u32> = BTreeSet::new();
        self.refresh_dominator_grid(env);
        let node_params = self.cfg.algo.node_params();
        let r_sep =
            (2.0 * self.cfg.cluster_radius + node_params.r_eps()).max(node_params.r_eps_half());
        let movers: Vec<u32> = std::mem::take(&mut self.movers).into_iter().collect();

        // Cluster merges: mobility can push two dominators inside the
        // independence radius, eroding the density invariant the whole
        // TDMA rests on. The smaller cluster's dominator demotes (ties
        // break to the smaller id, mirroring the protocols' own rule) and
        // its population re-homes — usually straight into the absorber.
        let mut demoted: BTreeSet<u32> = BTreeSet::new();
        for &v in &movers {
            let vi = v as usize;
            if !self.alive[vi]
                || demoted.contains(&v)
                || !self.structure.records[vi].role.is_dominator()
            {
                continue;
            }
            let mut nearest: Option<(u32, f64)> = None;
            self.grid.for_each_within(
                &self.grid_pts,
                env.positions[vi],
                self.cfg.cluster_radius,
                |k| {
                    let u = self.grid_doms[k];
                    if u == v
                        || demoted.contains(&u)
                        || !self.structure.records[u as usize].role.is_dominator()
                    {
                        return;
                    }
                    let d = env.positions[u as usize].dist(env.positions[vi]);
                    if nearest.is_none_or(|(_, bd)| d < bd) {
                        nearest = Some((u, d));
                    }
                },
            );
            let Some((u, _)) = nearest else {
                continue;
            };
            let (mv, mu) = (
                self.live_member_count(NodeId(v)),
                self.live_member_count(NodeId(u)),
            );
            let loser = if mv < mu || (mv == mu && u < v) { v } else { u };
            let winner = if loser == v { u } else { v };
            for m in self.live_members(NodeId(loser)) {
                if m.0 != loser {
                    detach(&mut self.structure.records[m.index()]);
                    self.seekers.insert(m.0);
                }
            }
            detach(&mut self.structure.records[loser as usize]);
            self.seekers.insert(loser);
            self.dirty.remove(&loser);
            self.dirty.insert(winner);
            demoted.insert(loser);
            report.merged_clusters += 1;
        }
        if !demoted.is_empty() {
            self.structure.rebuild_members_index();
            self.refresh_dominator_grid(env);
        }

        for v in movers {
            let vi = v as usize;
            if !self.alive[vi] {
                continue;
            }
            let rec = &self.structure.records[vi];
            if rec.role.is_dominator() {
                // Members left behind by a moving dominator.
                for m in self.live_members(NodeId(v)) {
                    if m.0 == v {
                        continue;
                    }
                    if env.positions[m.index()].dist(env.positions[vi]) > hyst {
                        detach(&mut self.structure.records[m.index()]);
                        self.seekers.insert(m.0);
                        self.dirty.insert(v);
                        report.handovers += 1;
                    }
                }
                // Same-color dominator now within the separation radius:
                // the larger id of the pair yields (whether or not it is
                // the one that moved), mirroring the coloring protocol's
                // own healing rule.
                let my_color = self.structure.records[vi].cluster_color;
                if my_color.is_some() {
                    self.grid
                        .for_each_within(&self.grid_pts, env.positions[vi], r_sep, |k| {
                            let other = self.grid_doms[k];
                            if other != v
                                && self.structure.records[other as usize].cluster_color == my_color
                            {
                                recolor.insert(other.max(v));
                            }
                        });
                }
            } else if let Some(c) = rec.cluster {
                if !self.alive[c.index()] || env.positions[vi].dist(env.positions[c.index()]) > hyst
                {
                    detach(&mut self.structure.records[vi]);
                    self.seekers.insert(v);
                    if self.alive[c.index()] {
                        self.dirty.insert(c.0);
                    }
                    report.handovers += 1;
                }
            }
        }

        // --- Proactive digest: act on detector flags before any audit
        // fails. A flagged member pre-emptively re-homes; a flagged
        // dominator demotes and its cluster re-homes plus re-elects, all
        // through the same seeker machinery the reactive paths use. Each
        // action arms a bounded exponential backoff on the node so a
        // transient fade cannot thrash handovers; the flag itself only
        // clears on a detector recovery notice.
        report.recovered_flags = std::mem::take(&mut self.recovered);
        let epoch = self.epochs;
        let mut proactive_demoted = false;
        for f in self.flagged.iter().copied().collect::<Vec<u32>>() {
            let fi = f as usize;
            if !self.alive[fi] {
                continue;
            }
            if let Some(&(_, until)) = self.backoff.get(&f) {
                if epoch < until {
                    report.deferred_flags += 1;
                    continue;
                }
            }
            if self.structure.records[fi].role.is_dominator() {
                for m in self.live_members(NodeId(f)) {
                    if m.0 != f {
                        detach(&mut self.structure.records[m.index()]);
                        self.seekers.insert(m.0);
                    }
                }
                detach(&mut self.structure.records[fi]);
                self.seekers.insert(f);
                self.dirty.remove(&f);
                proactive_demoted = true;
                report.proactive_demotions += 1;
            } else {
                if let Some(c) = self.structure.records[fi].cluster {
                    if self.alive[c.index()] {
                        self.dirty.insert(c.0);
                    }
                }
                detach(&mut self.structure.records[fi]);
                self.seekers.insert(f);
                report.proactive_rehomes += 1;
            }
            if let Some(&(since, detect_slot)) = self.flag_meta.get(&f) {
                report.time_to_detect =
                    report.time_to_detect.max(detect_slot.saturating_sub(since));
                if let Some(now) = self.now {
                    report.time_to_repair = report.time_to_repair.max(now.saturating_sub(since));
                }
            }
            let level = self.backoff.get(&f).map_or(0, |&(l, _)| l);
            let wait = self
                .mcfg
                .backoff_base
                .saturating_mul(1u64 << level.min(16))
                .clamp(1, self.mcfg.backoff_cap.max(1));
            self.backoff
                .insert(f, (level.saturating_add(1), epoch + wait));
        }
        if proactive_demoted {
            self.structure.rebuild_members_index();
            self.refresh_dominator_grid(env);
        }

        let live_count = self.live_count();
        report.seekers = self.seekers.len();
        if self.seekers.is_empty()
            && self.dirty.is_empty()
            && recolor.is_empty()
            && report.retired_clusters == 0
        {
            return report;
        }

        // --- Rebuild fallback: churn outran locality. ---
        if live_count == 0
            || self.seekers.len() as f64 > self.mcfg.rebuild_threshold * live_count as f64
        {
            let mut cfg = self.cfg;
            cfg.seed = derive_seed(seed, 0x4EB1);
            self.structure =
                build_structure_observed(env, &cfg, Some(&self.alive), self.obs.as_mut());
            self.seekers.clear();
            self.dirty.clear();
            report.kind = RepairKind::Rebuilt;
            report.rebuild_slots = self.structure.report.total_slots();
            return report;
        }
        report.kind = RepairKind::Repaired;

        // --- R1: re-home seekers onto surviving dominators. ---
        let seekers: Vec<u32> = std::mem::take(&mut self.seekers).into_iter().collect();
        let (attached, mut uncovered, confirms, slots) =
            self.rehome(env, &seekers, derive_seed(seed, 0x4E01));
        report.rehome_slots += slots;
        report.join_confirms += confirms;
        report.rehomed += attached;

        // --- R2: MIS patch among uncovered seekers. ---
        let mut new_doms: Vec<u32> = Vec::new();
        if !uncovered.is_empty() {
            let mut active = vec![false; n];
            for &u in &uncovered {
                active[u as usize] = true;
            }
            let patch =
                stages::dominating_stage(env, &self.cfg, &active, derive_seed(seed, 0x4E02));
            report.patch_slots += patch.slots;
            for &u in &uncovered {
                if patch.is_dominator[u as usize] {
                    self.structure.records[u as usize].make_dominator();
                    self.dirty.insert(u);
                    new_doms.push(u);
                }
            }
            report.new_dominators = new_doms.len();
            uncovered.retain(|u| !patch.is_dominator[*u as usize]);
        }

        // --- R3: recoloring patch (fresh dominators + moved conflicts). ---
        if !new_doms.is_empty() || !recolor.is_empty() {
            let claimants: BTreeSet<u32> = new_doms
                .iter()
                .copied()
                .chain(recolor.iter().copied())
                .collect();
            for &c in &recolor {
                self.structure.records[c as usize].cluster_color = None;
                self.dirty.insert(c);
            }
            let seats: Vec<ColorSeat> = (0..n)
                .map(|i| {
                    if claimants.contains(&(i as u32)) {
                        ColorSeat::Claimant
                    } else if self.alive[i] && self.structure.records[i].role.is_dominator() {
                        match self.structure.records[i].cluster_color {
                            Some(c) => ColorSeat::Committed(c),
                            None => ColorSeat::Out,
                        }
                    } else {
                        ColorSeat::Out
                    }
                })
                .collect();
            let patch =
                stages::color_patch_stage(env, &self.cfg, &seats, derive_seed(seed, 0x4E03));
            report.color_slots += patch.slots;
            report.recolored = recolor.len();
            let mut next_fresh = self
                .structure
                .records
                .iter()
                .filter_map(|r| r.cluster_color)
                .max()
                .map_or(0, |c| c + 1)
                .max(self.structure.phi);
            for &c in &claimants {
                let color = match patch.colors[c as usize] {
                    Some(col) => col,
                    None => {
                        // Uncommitted within the round budget: fresh unique
                        // color, exactly as the build's cap fallback.
                        let col = next_fresh;
                        next_fresh += 1;
                        col
                    }
                };
                self.structure.records[c as usize].cluster_color = Some(color);
                self.structure.phi = self.structure.phi.max(color + 1);
            }
            // Separation exceeds the decode range by a thin annulus (r_sep
            // can top R_T), so a claimant may commit a color it could never
            // have heard conflicts against. Certify each patch color
            // centrally and bump survivors to fresh colors — the same
            // orchestrator fallback the build applies past its cap.
            self.refresh_dominator_grid(env);
            for &c in &claimants {
                let my_color = self.structure.records[c as usize].cluster_color;
                let mut conflicted = false;
                self.grid
                    .for_each_within(&self.grid_pts, env.positions[c as usize], r_sep, |k| {
                        let other = self.grid_doms[k];
                        if other != c
                            && self.structure.records[other as usize].cluster_color == my_color
                        {
                            conflicted = true;
                        }
                    });
                if conflicted {
                    self.structure.records[c as usize].cluster_color = Some(next_fresh);
                    self.structure.phi = self.structure.phi.max(next_fresh + 1);
                    next_fresh += 1;
                }
            }
        }

        // --- R4: admit remaining seekers to the now-colored patch
        // dominators (second ANNOUNCE/JOIN pass). ---
        if !uncovered.is_empty() {
            let (attached, still, confirms, slots) =
                self.rehome(env, &uncovered, derive_seed(seed, 0x4E04));
            report.rehome_slots += slots;
            report.join_confirms += confirms;
            report.rehomed += attached;
            // Every protocol avenue failed (isolated node, lost announces):
            // it heads its own singleton cluster with a fresh color.
            for u in still {
                let rec = &mut self.structure.records[u as usize];
                rec.make_dominator();
                let color = self.structure.phi;
                rec.cluster_color = Some(color);
                self.structure.phi += 1;
                self.dirty.insert(u);
                report.forced_singletons += 1;
            }
        }

        // --- R5: census refresh for dirty clusters. The dominator heard
        // its JOINers (R1/R4) and missed its dead members' heartbeats; the
        // ledger below is that knowledge, applied cluster-wide. ---
        self.structure.rebuild_members_index();
        self.dirty.retain(|&d| {
            self.alive[d as usize] && self.structure.records[d as usize].role.is_dominator()
        });
        let dirty: Vec<u32> = self.dirty.iter().copied().collect();
        for &d in &dirty {
            let members: Vec<NodeId> = self.structure.members_of(NodeId(d)).to_vec();
            let est = (members.len() as u64).max(1);
            let fv = self.cfg.algo.cluster_channels(est);
            let color = self.structure.records[d as usize].cluster_color;
            for m in members {
                let rec = &mut self.structure.records[m.index()];
                rec.cluster_size_est = Some(est);
                rec.cluster_channels = Some(fv);
                rec.cluster_color = color;
            }
        }
        report.dirty_clusters = dirty.len();

        // --- R6: scoped reporter re-election for dirty clusters. ---
        if !dirty.is_empty() {
            let scope: HashSet<NodeId> = dirty.iter().map(|&d| NodeId(d)).collect();
            report.election_slots += stages::election_stage(
                env,
                &self.cfg,
                &mut self.structure.records,
                self.structure.phi,
                Some(&scope),
                derive_seed(seed, 0x4E05),
                Some(&self.alive),
            );
        }
        self.dirty.clear();
        // Reporter certification (dominator-side bookkeeping, no slots):
        // the election's at-most-one-per-channel guarantee is whp, and the
        // channel-fill guarantee likewise — repeated epochs compound both
        // exposures, and a deficit can even come in from the initial build.
        // Every dominator can see both failures on its own channels (a
        // duplicate the moment both reporters serve one channel, a hole as
        // the silence behind the build's `serves_channel0` rescue), so the
        // sweep runs over every live cluster: duplicates demote (smaller id
        // stays), holes get an appointed member — preferring one already
        // listening on the channel, falling back to any spare follower.
        let (dedups, appointments) = self.certify_reporters();
        report.reporter_dedups += dedups;
        report.reporter_appointments += appointments;

        // --- Bookkeeping: the structure-level accounting experiments read.
        self.structure.rebuild_members_index();
        self.structure.report.phi = self.structure.phi;
        self.structure.report.clusters = self
            .structure
            .records
            .iter()
            .enumerate()
            .filter(|(i, r)| self.alive[*i] && r.role.is_dominator())
            .count();
        self.structure.report.unclustered = self
            .structure
            .records
            .iter()
            .enumerate()
            .filter(|(i, r)| self.alive[*i] && r.cluster.is_none())
            .count();
        let (filled, total) = stages::channel_accounting(&self.structure.records);
        self.structure.report.channels_filled = filled;
        self.structure.report.channels_total = total;
        report
    }

    /// Runs one ANNOUNCE/JOIN re-homing pass for `seekers`. Anchors are the
    /// live dominators within reach of any seeker; everyone else is absent.
    /// Returns `(attached, still_uncovered, join_confirms, slots)` and
    /// applies successful attachments to the records.
    fn rehome(
        &mut self,
        env: &NetworkEnv,
        seekers: &[u32],
        seed: u64,
    ) -> (usize, Vec<u32>, usize, u64) {
        if seekers.is_empty() {
            return (0, Vec::new(), 0, 0);
        }
        self.refresh_dominator_grid(env);
        // The affected neighborhood: anchors a seeker could attach to, with
        // margin for RSSI slack. A detector-flagged dominator cannot
        // reliably decode JOINs, so the first pass offers only clean
        // dominators; seekers left over then salvage-attach to flagged
        // dominators in reach — a hard exclusion would strand whole jammed
        // neighborhoods into adjacent forced singletons and break dominator
        // independence.
        let reach = 1.5 * self.cfg.cluster_radius;
        let nearby = |this: &Self, set: &[u32], want_flagged: bool| -> BTreeSet<u32> {
            let mut anchors = BTreeSet::new();
            for &s in set {
                this.grid
                    .for_each_within(&this.grid_pts, env.positions[s as usize], reach, |k| {
                        let u = this.grid_doms[k];
                        if this.flagged.contains(&u) == want_flagged {
                            anchors.insert(u);
                        }
                    });
            }
            anchors
        };
        let clean = nearby(self, seekers, false);
        let (attached, still, confirms, slots) =
            self.rehome_pass(env, seekers, &clean, derive_seed(seed, 0x4E40));
        if still.is_empty() {
            return (attached, still, confirms, slots);
        }
        let flagged = nearby(self, &still, true);
        if flagged.is_empty() {
            return (attached, still, confirms, slots);
        }
        let (attached2, still2, confirms2, slots2) =
            self.rehome_pass(env, &still, &flagged, derive_seed(seed, 0x4E41));
        (
            attached + attached2,
            still2,
            confirms + confirms2,
            slots + slots2,
        )
    }

    /// One simulated announce/join pass of [`StructureMaintainer::rehome`]
    /// over a fixed anchor set, with `engine_seed` as the engine's RNG
    /// seed. Returns `(attached, leftover_seekers, confirms, slots)`.
    fn rehome_pass(
        &mut self,
        env: &NetworkEnv,
        seekers: &[u32],
        anchors: &BTreeSet<u32>,
        engine_seed: u64,
    ) -> (usize, Vec<u32>, usize, u64) {
        let n = env.len();
        let algo = &self.cfg.algo;
        let seeker_set: BTreeSet<u32> = seekers.iter().copied().collect();
        let cfg = RehomeCfg {
            radius: self.cfg.cluster_radius,
            p_announce: algo.density_tx_prob(),
            p_join: algo.density_tx_prob(),
            rounds: algo.announce_rounds(),
            params: algo.node_params(),
        };
        let mut participates = vec![false; n];
        let protocols: Vec<RehomeProtocol> = (0..n)
            .map(|i| {
                let id = NodeId(i as u32);
                let role = if seeker_set.contains(&(i as u32)) {
                    RehomeRole::Seeker
                } else if anchors.contains(&(i as u32)) {
                    RehomeRole::Anchor {
                        color: self.structure.records[i].cluster_color.unwrap_or(0),
                    }
                } else {
                    RehomeRole::Out
                };
                participates[i] = role != RehomeRole::Out;
                RehomeProtocol::new(id, role, cfg)
            })
            .collect();
        let mut engine = Engine::new(env.params, env.positions.clone(), protocols, engine_seed)
            .with_faults(stages::absence_plan(Some(&participates)));
        engine.run_until_done(2 * cfg.rounds + 2);
        let slots = engine.slot();
        let out = engine.into_protocols();

        let mut attached = 0;
        let mut still = Vec::new();
        let mut confirms = 0;
        for p in &out {
            if let RehomeRole::Anchor { .. } = p.role {
                confirms += p.joins_heard as usize;
            }
        }
        for &s in seekers {
            match out[s as usize].attachment() {
                Some((dom, color, dist)) => {
                    let rec = &mut self.structure.records[s as usize];
                    rec.make_member(dom, dist);
                    rec.cluster_color = Some(color);
                    self.dirty.insert(dom.0);
                    attached += 1;
                }
                None => still.push(s),
            }
        }
        (attached, still, confirms, slots)
    }

    /// Reporter certification over every live cluster: demotes duplicate
    /// reporters per channel (smaller id stays) and appoints members onto
    /// electable channels left without one. Returns
    /// `(dedups, appointments)`. Pure record bookkeeping — see the call
    /// site in [`StructureMaintainer::repair`] for why the dominator
    /// legitimately knows both conditions.
    fn certify_reporters(&mut self) -> (usize, usize) {
        let n = self.structure.records.len();
        let mut dedups = 0;
        let mut appointments = 0;
        let mut seen: HashSet<(NodeId, u16)> = HashSet::new();
        for i in 0..n {
            if !self.alive[i] || !self.structure.records[i].role.is_reporter() {
                continue;
            }
            let rec = &self.structure.records[i];
            let (Some(c), Some(ch)) = (rec.cluster, rec.channel) else {
                continue;
            };
            if !seen.insert((c, ch.0)) {
                self.structure.records[i].role = Role::Follower;
                dedups += 1;
            }
        }
        let heads: Vec<u32> = (0..n as u32)
            .filter(|&d| {
                self.alive[d as usize] && self.structure.records[d as usize].role.is_dominator()
            })
            .collect();
        for d in heads {
            let head = NodeId(d);
            let members: Vec<NodeId> = self
                .live_members(head)
                .into_iter()
                .filter(|m| *m != head)
                .collect();
            if members.is_empty() {
                continue;
            }
            let fv = self.structure.records[d as usize]
                .cluster_channels
                .unwrap_or(1);
            let electable = (fv as usize).min(members.len()) as u16;
            for ch in 0..electable {
                let filled = members.iter().any(|m| {
                    let r = &self.structure.records[m.index()];
                    r.role.is_reporter() && r.channel == Some(Channel(ch))
                });
                if filled {
                    continue;
                }
                let pick = members
                    .iter()
                    .find(|m| {
                        let r = &self.structure.records[m.index()];
                        !r.role.is_reporter() && r.channel == Some(Channel(ch))
                    })
                    .or_else(|| {
                        members
                            .iter()
                            .find(|m| !self.structure.records[m.index()].role.is_reporter())
                    });
                if let Some(&m) = pick {
                    let rec = &mut self.structure.records[m.index()];
                    rec.role = Role::Reporter { heap_pos: ch + 1 };
                    rec.channel = Some(Channel(ch));
                    appointments += 1;
                }
            }
        }
        (dedups, appointments)
    }

    /// Live members currently attached to `head` (index entries are
    /// re-validated against the records, so a stale index is harmless).
    fn live_members(&self, head: NodeId) -> Vec<NodeId> {
        self.structure
            .members_of(head)
            .iter()
            .copied()
            .filter(|m| {
                self.alive[m.index()] && self.structure.records[m.index()].cluster == Some(head)
            })
            .collect()
    }

    /// Number of live members attached to `head`, allocation-free.
    fn live_member_count(&self, head: NodeId) -> usize {
        self.structure
            .members_of(head)
            .iter()
            .filter(|m| {
                self.alive[m.index()] && self.structure.records[m.index()].cluster == Some(head)
            })
            .count()
    }

    /// Rebuilds the reused grid over the current live dominator positions.
    fn refresh_dominator_grid(&mut self, env: &NetworkEnv) {
        self.grid_doms.clear();
        self.grid_pts.clear();
        for (i, r) in self.structure.records.iter().enumerate() {
            if self.alive[i] && r.role.is_dominator() {
                self.grid_doms.push(i as u32);
                self.grid_pts.push(env.positions[i]);
            }
        }
        self.grid
            .rebuild(&self.grid_pts, self.cfg.cluster_radius.max(1e-9));
    }
}

/// Clears a record's membership (the node keeps existing but belongs to no
/// cluster until re-homed).
fn detach(rec: &mut NodeRecord) {
    rec.role = Role::Undecided;
    rec.cluster = None;
    rec.dominator_dist = None;
    rec.cluster_color = None;
    rec.cluster_size_est = None;
    rec.cluster_channels = None;
    rec.channel = None;
    rec.reporter = None;
    rec.serves_channel0 = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoConfig;
    use crate::structure::SubstrateMode;
    use mca_geom::Deployment;
    use rand::SeedableRng;

    fn world(n: usize, side: f64, seed: u64) -> (NetworkEnv, StructureConfig) {
        let params = SinrParams::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let env = NetworkEnv::new(params, &deploy);
        let algo = AlgoConfig::practical(4, &params, n);
        let mut cfg = StructureConfig::new(algo, seed);
        cfg.substrate = SubstrateMode::Oracle;
        (env, cfg)
    }

    fn crash(m: &mut StructureMaintainer, node: u32, slot: u64) {
        m.observe(&NodeEvent::Crashed {
            node: NodeId(node),
            slot,
        });
    }

    #[test]
    fn clean_world_repairs_for_free() {
        let (env, cfg) = world(120, 11.0, 3);
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        assert!(!m.is_dirty());
        let report = m.repair(&env, 77);
        assert_eq!(report.kind, RepairKind::Clean);
        assert_eq!(report.total_slots(), 0);
        m.audit(&env).assert_sound_with(&m.tolerances());
    }

    #[test]
    fn dominator_crash_is_repaired_audit_clean() {
        let (env, cfg) = world(150, 11.0, 5);
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        m.audit(&env).assert_sound();
        // Crash the dominator with the most members.
        let victim = m
            .structure()
            .dominators()
            .into_iter()
            .max_by_key(|&d| m.structure().members_of(d).len())
            .unwrap();
        let orphans = m.structure().members_of(victim).len() - 1;
        crash(&mut m, victim.0, 10);
        assert!(m.is_dirty());
        let report = m.repair(&env, 91);
        assert_eq!(report.kind, RepairKind::Repaired);
        assert_eq!(report.retired_clusters, 1);
        assert_eq!(report.seekers, orphans);
        assert!(report.total_slots() > 0, "repair must consume slots");
        m.audit(&env).assert_sound_with(&m.tolerances());
        // The crashed node is fully out of the structure.
        assert!(m.structure().records[victim.index()].cluster.is_none());
    }

    #[test]
    fn member_crash_refreshes_census() {
        let (env, cfg) = world(150, 11.0, 7);
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        let victim = m
            .structure()
            .records
            .iter()
            .find(|r| !r.role.is_dominator() && r.cluster.is_some())
            .map(|r| r.id)
            .unwrap();
        let head = m.structure().records[victim.index()].cluster.unwrap();
        let before = m.structure().members_of(head).len();
        crash(&mut m, victim.0, 10);
        let report = m.repair(&env, 13);
        assert_eq!(report.kind, RepairKind::Repaired);
        assert_eq!(m.structure().members_of(head).len(), before - 1);
        m.audit(&env).assert_sound_with(&m.tolerances());
    }

    #[test]
    fn late_joiner_is_admitted() {
        let (env, cfg) = world(130, 11.0, 9);
        let mut alive = vec![true; 130];
        alive[17] = false;
        alive[18] = false;
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), Some(&alive));
        assert!(m.structure().records[17].cluster.is_none());
        m.observe(&NodeEvent::Joined {
            node: NodeId(17),
            slot: 50,
        });
        m.observe(&NodeEvent::Joined {
            node: NodeId(18),
            slot: 51,
        });
        let report = m.repair(&env, 23);
        assert_eq!(report.kind, RepairKind::Repaired);
        assert_eq!(report.seekers, 2);
        assert!(m.structure().records[17].cluster.is_some());
        assert!(m.structure().records[18].cluster.is_some());
        m.audit(&env).assert_sound_with(&m.tolerances());
    }

    #[test]
    fn handover_rehomes_drifted_member() {
        let (env, cfg) = world(140, 11.0, 11);
        let radius = cfg.cluster_radius;
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        // Teleport a member far from its dominator (next to another one).
        let (victim, head) = m
            .structure()
            .records
            .iter()
            .find(|r| !r.role.is_dominator() && r.cluster.is_some())
            .map(|r| (r.id, r.cluster.unwrap()))
            .unwrap();
        let target = m
            .structure()
            .dominators()
            .into_iter()
            .max_by(|a, b| {
                let da = env.positions[a.index()].dist(env.positions[head.index()]);
                let db = env.positions[b.index()].dist(env.positions[head.index()]);
                da.partial_cmp(&db).unwrap()
            })
            .unwrap();
        let mut env2 = env.clone();
        env2.positions[victim.index()] = mca_geom::Point::new(
            env.positions[target.index()].x + 0.3 * radius,
            env.positions[target.index()].y,
        );
        m.observe(&NodeEvent::Moved {
            node: victim,
            slot: 60,
            from: env.positions[victim.index()],
            to: env2.positions[victim.index()],
        });
        let report = m.repair(&env2, 31);
        assert_eq!(report.kind, RepairKind::Repaired);
        assert_eq!(report.handovers, 1);
        let new_head = m.structure().records[victim.index()].cluster;
        assert!(
            new_head.is_some() && new_head != Some(head),
            "member must re-home"
        );
        m.audit(&env2).assert_sound_with(&m.tolerances());
    }

    #[test]
    fn mass_churn_triggers_rebuild() {
        let (env, cfg) = world(100, 10.0, 13);
        let mcfg = MaintainConfig {
            rebuild_threshold: 0.2,
            ..MaintainConfig::default()
        };
        let mut m = StructureMaintainer::build(&env, cfg, mcfg, None);
        // Crash every dominator: nearly everyone becomes a seeker.
        for d in m.structure().dominators() {
            crash(&mut m, d.0, 10);
        }
        let report = m.repair(&env, 41);
        assert_eq!(report.kind, RepairKind::Rebuilt);
        assert!(report.rebuild_slots > 0);
        m.audit(&env).assert_sound_with(&m.tolerances());
    }

    #[test]
    fn repairs_are_deterministic_in_seed() {
        let (env, cfg) = world(120, 11.0, 17);
        let run = || {
            let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
            let victim = m.structure().dominators()[0];
            crash(&mut m, victim.0, 10);
            let report = m.repair(&env, 55);
            (report, m.structure().records.clone())
        };
        let (r1, s1) = run();
        let (r2, s2) = run();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn obs_recorder_never_perturbs_repairs() {
        let run = |observe: bool| {
            let (env, cfg) = world(120, 11.0, 5);
            let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
            if observe {
                m.attach_obs(mca_obs::Recorder::new());
            }
            crash(&mut m, 3, 10);
            crash(&mut m, 17, 10);
            let report = m.repair(&env, 99);
            (report, m.structure().records.clone())
        };
        assert_eq!(run(false), run(true));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_repair_emits_typed_events() {
        use mca_obs::EventKind;
        let (env, cfg) = world(120, 11.0, 3);
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        m.attach_obs(mca_obs::Recorder::new());
        let clean = m.repair(&env, 77);
        assert_eq!(clean.kind, RepairKind::Clean);
        let victim = m.structure().dominators()[0];
        crash(&mut m, victim.0, 4);
        let repaired = m.repair(&env, 78);
        let rec = m.obs().unwrap();
        let kinds: Vec<EventKind> = rec.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::RepairClean));
        // The crash orphans cluster members; either they re-home or the
        // MIS patch promotes replacements — both must be attributed.
        if repaired.kind == RepairKind::Repaired {
            assert!(
                kinds.contains(&EventKind::RepairRehome)
                    || kinds.contains(&EventKind::RepairMisPatch)
            );
        }
        // Epoch attribution matches the maintainer's counter.
        assert!(rec.events().iter().all(|e| e.epoch >= 1 && e.epoch <= 2));
        // Two repair spans, one per epoch.
        let spans = rec
            .spans()
            .iter()
            .filter(|s| s.kind == mca_obs::SpanKind::Repair)
            .count();
        assert_eq!(spans, 2);
    }

    fn degraded(node: u32, slot: u64, since: u64) -> DetectionEvent {
        DetectionEvent::Degraded {
            node: NodeId(node),
            slot,
            score: 0.2,
            since,
        }
    }

    fn recovered(node: u32, slot: u64) -> DetectionEvent {
        DetectionEvent::Recovered {
            node: NodeId(node),
            slot,
            score: 0.9,
        }
    }

    /// A live member (not a dominator) of a multi-member cluster.
    fn some_member(m: &StructureMaintainer) -> u32 {
        m.structure()
            .records
            .iter()
            .position(|r| !r.role.is_dominator() && r.cluster.is_some_and(|c| c != r.id))
            .expect("world has at least one attached member") as u32
    }

    #[test]
    fn proactive_member_rehome_is_audit_clean_with_latencies() {
        let (env, cfg) = world(150, 11.0, 7);
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        let victim = some_member(&m);
        m.observe_detection(&degraded(victim, 30, 20));
        assert!(m.is_dirty() && m.is_flagged(victim));
        let report = m.repair_at(&env, 123, 40);
        assert_eq!(report.kind, RepairKind::Repaired);
        assert_eq!(report.proactive_rehomes, 1);
        assert_eq!(report.proactive_demotions, 0);
        assert_eq!(report.time_to_detect, 10, "flag slot 30 - onset 20");
        assert_eq!(report.time_to_repair, 20, "repair slot 40 - onset 20");
        m.audit(&env).assert_sound_with(&m.tolerances());
        // The flag persists (no recovery notice yet) — only the backoff
        // keeps the next epochs from re-acting.
        assert!(m.is_flagged(victim));
    }

    #[test]
    fn plain_repair_reports_zero_time_to_repair() {
        let (env, cfg) = world(150, 11.0, 7);
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        m.observe_detection(&degraded(some_member(&m), 30, 20));
        let report = m.repair(&env, 123);
        assert_eq!(report.time_to_detect, 10);
        assert_eq!(report.time_to_repair, 0, "no clock without repair_at");
    }

    #[test]
    fn flagged_dominator_demotes_into_scoped_reelection() {
        let (env, cfg) = world(150, 11.0, 5);
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        let victim = m
            .structure()
            .dominators()
            .into_iter()
            .max_by_key(|&d| m.structure().members_of(d).len())
            .unwrap();
        let orphans = m.structure().members_of(victim).len() - 1;
        m.observe_detection(&degraded(victim.0, 50, 44));
        let report = m.repair_at(&env, 91, 60);
        assert_eq!(report.kind, RepairKind::Repaired);
        assert_eq!(report.proactive_demotions, 1);
        assert!(
            report.seekers >= orphans + 1,
            "the demoted dominator and its members all re-home"
        );
        // The victim may be re-promoted by the MIS patch (an uncovered
        // seeker is a natural MIS point), and members with no clean
        // dominator in reach may salvage-attach back to it — but the
        // cluster was broken up, re-homed with clean-anchors-first
        // preference, and the structure must still audit sound. The flag
        // survives (only a detector recovery clears it), so the backoff
        // now owns the retry cadence.
        assert!(m.is_flagged(victim.0), "only Recovered clears a flag");
        m.audit(&env).assert_sound_with(&m.tolerances());
    }

    #[test]
    fn backoff_defers_reflagged_nodes_then_rearms() {
        let (env, cfg) = world(150, 11.0, 7);
        let mcfg = MaintainConfig {
            backoff_base: 4,
            ..MaintainConfig::default()
        };
        let mut m = StructureMaintainer::build(&env, cfg, mcfg, None);
        let victim = some_member(&m);
        m.observe_detection(&degraded(victim, 30, 20));
        let first = m.repair(&env, 1);
        assert_eq!(first.proactive_rehomes, 1);
        // Epochs 2..=4 sit inside the backoff window: the still-flagged
        // node is deferred, not thrashed.
        for seed in 2..=4 {
            let r = m.repair(&env, seed);
            assert_eq!(r.proactive_rehomes, 0, "epoch {seed} must defer");
            assert_eq!(r.deferred_flags, 1);
        }
        // Epoch 5 re-arms (and doubles the next wait).
        let again = m.repair(&env, 5);
        assert_eq!(again.proactive_rehomes, 1);
        assert_eq!(again.deferred_flags, 0);
        m.audit(&env).assert_sound_with(&m.tolerances());
    }

    #[test]
    fn recovery_notice_clears_flag_without_repair_work() {
        let (env, cfg) = world(150, 11.0, 7);
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        let victim = some_member(&m);
        m.observe_detection(&degraded(victim, 30, 20));
        m.repair(&env, 1);
        assert!(m.is_flagged(victim));
        m.observe_detection(&recovered(victim, 90));
        assert!(!m.is_flagged(victim));
        let report = m.repair(&env, 2);
        assert_eq!(report.recovered_flags, 1);
        assert_eq!(report.proactive_rehomes, 0);
        // Backoff was reset: a fresh degradation acts immediately.
        m.observe_detection(&degraded(victim, 120, 110));
        let report = m.repair(&env, 3);
        assert_eq!(report.proactive_rehomes, 1);
        assert_eq!(report.deferred_flags, 0);
        m.audit(&env).assert_sound_with(&m.tolerances());
    }

    #[test]
    fn flagged_dominators_are_last_resort_anchors() {
        let (env, cfg) = world(150, 11.0, 5);
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        // Flag a few dominators (few enough to stay under the rebuild
        // threshold): the proactive digest demotes them, clean dominators
        // get the first re-home pass, and flagged ones only salvage the
        // stragglers — a hard exclusion would strand jammed neighborhoods
        // into adjacent forced singletons. Net effect: flagged clusters
        // lose most of their membership while the audit stays sound.
        let victims: Vec<NodeId> = m.structure().dominators().into_iter().take(3).collect();
        let before: usize = victims
            .iter()
            .map(|&d| m.structure().members_of(d).len().saturating_sub(1))
            .sum();
        for &d in &victims {
            m.observe_detection(&degraded(d.0, 10, 5));
        }
        let report = m.repair(&env, 7);
        assert_eq!(report.kind, RepairKind::Repaired);
        assert_eq!(report.proactive_demotions, 3);
        m.audit(&env).assert_sound_with(&m.tolerances());
        let after = m
            .structure()
            .records
            .iter()
            .enumerate()
            .filter(|&(i, r)| {
                r.cluster
                    .is_some_and(|c| c.index() != i && victims.contains(&c))
            })
            .count();
        assert!(
            after < before.max(1),
            "flagged clusters kept {after} of {before} members"
        );
    }

    #[test]
    fn crash_supersedes_degradation_flag() {
        let (env, cfg) = world(150, 11.0, 5);
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        let victim = some_member(&m);
        m.observe_detection(&degraded(victim, 30, 20));
        crash(&mut m, victim, 35);
        assert!(!m.is_flagged(victim));
        let report = m.repair(&env, 9);
        assert_eq!(report.proactive_rehomes, 0);
        m.audit(&env).assert_sound_with(&m.tolerances());
    }

    #[test]
    fn repair_report_merge_is_element_wise() {
        let a = RepairReport {
            kind: RepairKind::Repaired,
            rehome_slots: 10,
            seekers: 3,
            rehomed: 2,
            proactive_rehomes: 1,
            time_to_detect: 4,
            time_to_repair: 9,
            ..RepairReport::default()
        };
        let b = RepairReport {
            kind: RepairKind::Rebuilt,
            rebuild_slots: 50,
            seekers: 5,
            deferred_flags: 2,
            time_to_detect: 7,
            time_to_repair: 6,
            ..RepairReport::default()
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.kind, RepairKind::Rebuilt, "max-severity kind");
        assert_eq!(merged.rehome_slots, 10);
        assert_eq!(merged.rebuild_slots, 50);
        assert_eq!(merged.total_slots(), 60);
        assert_eq!(merged.seekers, 8);
        assert_eq!(merged.rehomed, 2);
        assert_eq!(merged.proactive_rehomes, 1);
        assert_eq!(merged.deferred_flags, 2);
        assert_eq!(merged.time_to_detect, 7, "latencies keep the worst case");
        assert_eq!(merged.time_to_repair, 9);
        let mut clean = RepairReport::default();
        clean.merge(&RepairReport::default());
        assert_eq!(clean.kind, RepairKind::Clean);
    }
}
