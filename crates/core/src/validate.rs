//! Invariant validators for the aggregation structure.
//!
//! Experiments call [`audit_structure`] after every build: the paper's
//! guarantees (domination radius, dominator density, cluster-color
//! separation, one reporter per channel, constant-factor size estimates)
//! become numeric audit fields with [`StructureAudit::assert_sound`]
//! enforcing the tolerances of the practical preset.
//!
//! The maintenance layer uses the same audit as its *repair oracle*:
//! [`audit_structure_masked`] scopes the checks to the live subset of a
//! churning network, and [`StructureAudit::check`] evaluates them against
//! explicit [`AuditTolerances`] (a maintainer that defers handover by a
//! hysteresis factor certifies attachment against that factor, not the
//! build-time bound) without panicking — so a repair harness can count
//! clean epochs instead of dying on the first violation.

use crate::knowledge::Role;
use crate::structure::{AggregationStructure, NetworkEnv};
use mca_geom::SpatialGrid;
use mca_radio::NodeId;
use std::collections::HashMap;

/// Numeric audit of a built structure.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureAudit {
    /// Number of nodes audited (live nodes under a mask).
    pub n: usize,
    /// Number of clusters (dominators).
    pub clusters: usize,
    /// Nodes without a cluster.
    pub unclustered: usize,
    /// Live members attached to a cluster whose head is not a live
    /// dominator (stale membership; must be 0 after any repair).
    pub dangling_members: usize,
    /// Worst `dist(node, dominator) / cluster_radius` (≤ 1 wanted).
    pub worst_attach_ratio: f64,
    /// Dominator pairs within the cluster radius (independence violations).
    pub independence_violations: usize,
    /// Max dominators in any cluster-radius ball (the density `µ`).
    pub density: usize,
    /// Same-color dominator pairs within `R_{ε/2}` (coloring violations).
    pub color_violations: usize,
    /// Measured `φ` (number of cluster colors).
    pub phi: u16,
    /// Min and max of `estimate / |C_v|` over clusters.
    pub est_ratio: (f64, f64),
    /// Channels with more than one reporter (Lemma 15 violations).
    pub multi_reporter_channels: usize,
    /// Fraction of cluster channels that elected a reporter.
    pub channel_fill: f64,
}

/// Tolerances a [`StructureAudit`] is checked against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditTolerances {
    /// Maximum `dist(node, dominator) / cluster_radius`. The build bound is
    /// 1.05 (RSSI slack); a maintainer that re-homes only beyond a handover
    /// hysteresis certifies against `hysteresis * 1.05`.
    pub attach_ratio: f64,
    /// Minimum fraction of cluster channels with an elected reporter.
    pub channel_fill: f64,
}

impl Default for AuditTolerances {
    fn default() -> Self {
        AuditTolerances {
            attach_ratio: 1.05,
            channel_fill: 0.8,
        }
    }
}

impl StructureAudit {
    /// Checks every invariant against `tol`, returning the first violation
    /// as a description instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn check(&self, tol: &AuditTolerances) -> Result<(), String> {
        if self.unclustered != 0 {
            return Err(format!("unclustered nodes: {}", self.unclustered));
        }
        if self.dangling_members != 0 {
            return Err(format!(
                "members attached to dead clusters: {}",
                self.dangling_members
            ));
        }
        if self.worst_attach_ratio > tol.attach_ratio {
            return Err(format!(
                "attach radius exceeded: {} (tolerance {})",
                self.worst_attach_ratio, tol.attach_ratio
            ));
        }
        // The distributed substrate (like the paper's [28]) guarantees
        // constant *density*, not independence: nearby simultaneous
        // elections are possible. Track independence loosely; density is
        // the binding invariant.
        if self.independence_violations * 3 > self.clusters.max(1) {
            return Err(format!(
                "too many independence violations: {}/{}",
                self.independence_violations, self.clusters
            ));
        }
        if self.density > 10 {
            return Err(format!("dominator density too high: {}", self.density));
        }
        // The greedy coloring self-heals conflicts via Committed beacons;
        // with practical round counts a stray pair can survive the healing
        // window (it only degrades TDMA separation locally). Tolerate a
        // 2%-of-clusters residue; experiments report the exact count.
        if self.color_violations > self.clusters.max(1).div_ceil(50) {
            return Err(format!(
                "same-color clusters within R_eps/2: {} of {}",
                self.color_violations, self.clusters
            ));
        }
        if !(self.est_ratio.0 >= 0.1 && self.est_ratio.1 <= 10.0) {
            return Err(format!(
                "size estimates out of constant-factor band: {:?}",
                self.est_ratio
            ));
        }
        if self.multi_reporter_channels != 0 {
            return Err(format!(
                "channels with multiple reporters: {}",
                self.multi_reporter_channels
            ));
        }
        if self.channel_fill < tol.channel_fill {
            return Err(format!(
                "too many reporterless channels: fill {} (tolerance {})",
                self.channel_fill, tol.channel_fill
            ));
        }
        Ok(())
    }

    /// Panics if any invariant is outside the practical tolerances.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn assert_sound(&self) {
        self.assert_sound_with(&AuditTolerances::default());
    }

    /// Panics if any invariant is outside `tol`.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn assert_sound_with(&self, tol: &AuditTolerances) {
        if let Err(msg) = self.check(tol) {
            panic!("{msg}");
        }
    }
}

/// Audits `structure` against ground truth, every node live.
pub fn audit_structure(
    env: &NetworkEnv,
    structure: &AggregationStructure,
    cluster_radius: f64,
) -> StructureAudit {
    audit_structure_masked(env, structure, cluster_radius, None)
}

/// Audits the live subset of `structure` against ground truth: nodes with
/// `alive[i] = false` (crashed or not yet joined) are outside the
/// structure's responsibility and are skipped by every check, while a live
/// member still pointing at a dead cluster head is reported as dangling.
pub fn audit_structure_masked(
    env: &NetworkEnv,
    structure: &AggregationStructure,
    cluster_radius: f64,
    alive: Option<&[bool]>,
) -> StructureAudit {
    let n = env.len();
    let records = &structure.records;
    assert_eq!(records.len(), n);
    if let Some(a) = alive {
        assert_eq!(a.len(), n, "one liveness flag per node required");
    }
    let live = |i: usize| alive.is_none_or(|a| a[i]);

    let dominators: Vec<usize> = (0..n)
        .filter(|&i| live(i) && records[i].role.is_dominator())
        .collect();
    let clusters = dominators.len();
    let unclustered = (0..n)
        .filter(|&i| live(i) && records[i].cluster.is_none())
        .count();
    let n_live = (0..n).filter(|&i| live(i)).count();

    // Attachment radius; membership must point at a live dominator.
    let mut worst_attach: f64 = 0.0;
    let mut dangling_members = 0;
    for (i, r) in records.iter().enumerate() {
        if !live(i) {
            continue;
        }
        if let Some(c) = r.cluster {
            if !live(c.index()) || !records[c.index()].role.is_dominator() {
                dangling_members += 1;
                continue;
            }
            let d = env.positions[i].dist(env.positions[c.index()]);
            worst_attach = worst_attach.max(d / cluster_radius);
        }
    }

    // Dominator independence + density.
    let dom_points: Vec<mca_geom::Point> = dominators.iter().map(|&i| env.positions[i]).collect();
    let (independence_violations, density) = if dom_points.is_empty() {
        (0, 0)
    } else {
        let grid = SpatialGrid::build(&dom_points, cluster_radius.max(1e-9));
        let mut viol = 0;
        for (a, &pa) in dom_points.iter().enumerate() {
            grid.for_each_within(&dom_points, pa, cluster_radius, |b| {
                if b > a {
                    viol += 1;
                }
            });
        }
        (viol, grid.max_ball_occupancy(&dom_points, cluster_radius))
    };

    // Cluster-color separation at max(R_{eps/2}, 2·r_c + R_ε) — the radius
    // the construction actually enforces (see cluster.rs).
    let r_sep = (2.0 * cluster_radius + env.params.r_eps()).max(env.params.r_eps_half());
    let mut color_violations = 0;
    for (a, &ia) in dominators.iter().enumerate() {
        for &ib in &dominators[a + 1..] {
            if records[ia].cluster_color == records[ib].cluster_color
                && env.positions[ia].dist(env.positions[ib]) <= r_sep
            {
                color_violations += 1;
            }
        }
    }

    // Size-estimate accuracy.
    let mut true_sizes: HashMap<NodeId, u64> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        if !live(i) {
            continue;
        }
        if let Some(c) = r.cluster {
            *true_sizes.entry(c).or_default() += 1;
        }
    }
    let mut est_lo = f64::INFINITY;
    let mut est_hi: f64 = 0.0;
    for &i in &dominators {
        if let (Some(est), Some(&size)) = (
            records[i].cluster_size_est,
            true_sizes.get(&NodeId(i as u32)),
        ) {
            let ratio = est as f64 / size.max(1) as f64;
            est_lo = est_lo.min(ratio);
            est_hi = est_hi.max(ratio);
        }
    }
    if clusters == 0 {
        est_lo = 1.0;
        est_hi = 1.0;
    }

    // Reporters per channel.
    let mut per_channel: HashMap<(NodeId, u16), usize> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        if !live(i) {
            continue;
        }
        if let (Role::Reporter { .. }, Some(c), Some(ch)) = (r.role, r.cluster, r.channel) {
            *per_channel.entry((c, ch.0)).or_default() += 1;
        }
    }
    let multi_reporter_channels = per_channel.values().filter(|&&v| v > 1).count();
    let channel_fill = if structure.report.channels_total == 0 {
        1.0
    } else {
        structure.report.channels_filled as f64 / structure.report.channels_total as f64
    };

    StructureAudit {
        n: n_live,
        clusters,
        unclustered,
        dangling_members,
        worst_attach_ratio: worst_attach,
        independence_violations,
        density,
        color_violations,
        phi: structure.phi,
        est_ratio: (est_lo, est_hi),
        multi_reporter_channels,
        channel_fill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoConfig;
    use crate::structure::{build_structure, StructureConfig, SubstrateMode};
    use mca_geom::Deployment;
    use mca_sinr::SinrParams;
    use rand::{rngs::SmallRng, SeedableRng};

    fn build(
        n: usize,
        side: f64,
        channels: u16,
        substrate: SubstrateMode,
        seed: u64,
    ) -> (NetworkEnv, AggregationStructure, StructureConfig) {
        let params = SinrParams::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let env = NetworkEnv::new(params, &deploy);
        let algo = AlgoConfig::practical(channels, &params, n);
        let mut cfg = StructureConfig::new(algo, seed);
        cfg.substrate = substrate;
        let s = build_structure(&env, &cfg);
        (env, s, cfg)
    }

    #[test]
    fn oracle_structure_is_sound() {
        let (env, s, cfg) = build(250, 15.0, 8, SubstrateMode::Oracle, 3);
        let audit = audit_structure(&env, &s, cfg.cluster_radius);
        audit.assert_sound();
        assert!(audit.clusters > 1);
        assert_eq!(audit.independence_violations, 0, "oracle is independent");
    }

    #[test]
    fn distributed_structure_is_sound() {
        let (env, s, cfg) = build(200, 14.0, 8, SubstrateMode::Distributed, 5);
        let audit = audit_structure(&env, &s, cfg.cluster_radius);
        audit.assert_sound();
        assert!(s.report.total_slots() > 0);
    }

    #[test]
    fn report_accounting_consistent() {
        let (_, s, _) = build(150, 12.0, 4, SubstrateMode::Oracle, 7);
        assert_eq!(
            s.report.total_slots(),
            s.report.dominate_slots
                + s.report.coloring_slots
                + s.report.announce_slots
                + s.report.csa_slots
                + s.report.election_slots
        );
        assert_eq!(s.report.clusters, s.dominators().len());
        assert!(s.report.channels_filled <= s.report.channels_total);
    }

    #[test]
    fn members_of_partitions_nodes() {
        let (_, s, _) = build(120, 10.0, 4, SubstrateMode::Oracle, 9);
        let mut seen = 0;
        for d in s.dominators() {
            seen += s.members_of(d).len();
        }
        let clustered = s.records.iter().filter(|r| r.cluster.is_some()).count();
        assert_eq!(seen, clustered);
    }
}
