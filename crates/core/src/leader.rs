//! Leader election on the aggregation structure.
//!
//! The paper's introduction motivates multiple channels with leader
//! election (its reference \[5\], Daum et al., *Leader election in shared
//! spectrum radio networks*, PODC 2012). The aggregation structure solves
//! it directly: every node draws a random rank, the network aggregates the
//! maximum `(rank, id)` pair — an idempotent function, so it rides the
//! flood-and-combine inter-cluster path — and the unique maximum is the
//! leader every node agrees on.
//!
//! The round cost is exactly one aggregation:
//! `O(D + Δ/F + log n·log log n)` (Theorem 22), which inherits the linear
//! channel speedup. On single-hop instances this is
//! `O(Δ/F + log n·log log n)`, compared with the `O(log² n / F + …)` of
//! the dedicated multichannel algorithms — the structure pays its `Δ/F`
//! construction cost once and then answers *any* aggregate query, leader
//! election included.
//!
//! # Examples
//!
//! ```no_run
//! use mca_core::leader::elect_leader;
//! use mca_core::{build_structure, AlgoConfig, NetworkEnv, StructureConfig};
//! use mca_geom::Deployment;
//! use mca_sinr::SinrParams;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let params = SinrParams::default();
//! let mut rng = SmallRng::seed_from_u64(7);
//! let deploy = Deployment::uniform(120, 10.0, &mut rng);
//! let env = NetworkEnv::new(params, &deploy);
//! let algo = AlgoConfig::practical(8, &params, 120);
//! let structure = build_structure(&env, &StructureConfig::new(algo, 7));
//! let d_hat = env.comm_graph().diameter_approx() + 2;
//! let out = elect_leader(&env, &structure, &algo, d_hat, 42);
//! println!("leader: {:?}, agreement: {}/120", out.leader, out.agreement);
//! ```

use crate::aggfun::Aggregate;
use crate::config::AlgoConfig;
use crate::structure::{aggregate, AggregationStructure, InterclusterMode, NetworkEnv};
use mca_radio::{rng, NodeId};

/// A leadership candidate: a random rank with the node id as tiebreak.
///
/// Candidates are totally ordered by `(rank, id)`; the network-wide maximum
/// is the elected leader. Ranks are drawn uniformly from `[1, u64::MAX]`,
/// so rank 0 is reserved for [`LeaderAgg::identity`] (the "no candidate"
/// element, which loses to every real candidate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Candidate {
    /// Random rank (primary key; `0` only in the identity element).
    pub rank: u64,
    /// The candidate node (tiebreak key).
    pub id: NodeId,
}

impl Candidate {
    /// The "no candidate yet" element: loses to every drawn candidate.
    pub fn none() -> Self {
        Candidate {
            rank: 0,
            id: NodeId(0),
        }
    }

    /// Draws node `id`'s candidate for election round `seed`.
    ///
    /// The rank is a deterministic hash of `(seed, id)` — each node can
    /// compute its own rank locally without communication, and the draw is
    /// uniform over `[1, u64::MAX]`.
    pub fn draw(seed: u64, id: NodeId) -> Self {
        let rank = rng::mix64(rng::derive_seed(seed, 0x1EAD_E1EC ^ u64::from(id.0))).max(1);
        Candidate { rank, id }
    }

    /// Whether this is a real (drawn) candidate rather than the identity.
    pub fn is_some(&self) -> bool {
        self.rank > 0
    }
}

/// The max-candidate aggregate: idempotent, so leader election floods at
/// `O(D + log n)` across clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LeaderAgg;

impl Aggregate for LeaderAgg {
    type Value = Candidate;

    fn identity(&self) -> Candidate {
        Candidate::none()
    }

    fn combine(&self, a: &Candidate, b: &Candidate) -> Candidate {
        *a.max(b)
    }

    fn is_idempotent(&self) -> bool {
        true
    }
}

/// Result of a leader election run.
#[derive(Debug, Clone)]
pub struct LeaderOutcome {
    /// The ground-truth winner (maximum candidate over all inputs); the
    /// node every correct execution elects.
    pub leader: NodeId,
    /// What each node learned (`None` if it never heard any candidate).
    pub learned: Vec<Option<NodeId>>,
    /// Nodes that learned the true leader.
    pub agreement: usize,
    /// Whether the leader itself knows it won.
    pub leader_knows: bool,
    /// Slots of the follower→reporter procedure.
    pub follower_slots: u64,
    /// Slots of the reporter-tree convergecast.
    pub tree_slots: u64,
    /// Slots of the inter-cluster flood.
    pub inter_slots: u64,
}

impl LeaderOutcome {
    /// Total slots across the three aggregation procedures.
    pub fn total_slots(&self) -> u64 {
        self.follower_slots + self.tree_slots + self.inter_slots
    }

    /// Whether every node elected the same (true) leader.
    pub fn unanimous(&self) -> bool {
        self.agreement == self.learned.len()
    }
}

/// Elects a leader over a built aggregation structure.
///
/// Every node draws [`Candidate::draw`]`(seed, id)` and the network
/// aggregates the maximum with [`LeaderAgg`] (flood mode). `d_hat` bounds
/// the hop diameter, as in [`aggregate`].
///
/// # Panics
///
/// Panics if the environment is empty (no candidates to elect).
pub fn elect_leader(
    env: &NetworkEnv,
    structure: &AggregationStructure,
    algo: &AlgoConfig,
    d_hat: u32,
    seed: u64,
) -> LeaderOutcome {
    let n = env.len();
    assert!(n > 0, "cannot elect a leader over an empty network");
    let inputs: Vec<Candidate> = (0..n)
        .map(|i| Candidate::draw(seed, NodeId(i as u32)))
        .collect();
    let winner = *inputs
        .iter()
        .max()
        .expect("non-empty input set has a maximum");

    let out = aggregate(
        env,
        structure,
        algo,
        LeaderAgg,
        &inputs,
        InterclusterMode::Flood,
        d_hat,
        seed,
    );

    let learned: Vec<Option<NodeId>> = out
        .values
        .iter()
        .map(|v| v.as_ref().filter(|c| c.is_some()).map(|c| c.id))
        .collect();
    let agreement = learned.iter().filter(|l| **l == Some(winner.id)).count();
    let leader_knows = learned[winner.id.index()] == Some(winner.id);

    LeaderOutcome {
        leader: winner.id,
        learned,
        agreement,
        leader_knows,
        follower_slots: out.follower_slots,
        tree_slots: out.tree_slots,
        inter_slots: out.inter_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{build_structure, StructureConfig, SubstrateMode};
    use mca_geom::Deployment;
    use mca_sinr::SinrParams;
    use rand::{rngs::SmallRng, SeedableRng};

    fn setup(
        n: usize,
        side: f64,
        channels: u16,
        seed: u64,
    ) -> (NetworkEnv, AggregationStructure, AlgoConfig) {
        let params = SinrParams::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let env = NetworkEnv::new(params, &deploy);
        let algo = AlgoConfig::practical(channels, &params, n);
        let mut cfg = StructureConfig::new(algo, seed);
        cfg.substrate = SubstrateMode::Oracle;
        let s = build_structure(&env, &cfg);
        (env, s, algo)
    }

    #[test]
    fn candidate_order_is_rank_then_id() {
        let a = Candidate {
            rank: 5,
            id: NodeId(9),
        };
        let b = Candidate {
            rank: 7,
            id: NodeId(1),
        };
        let c = Candidate {
            rank: 7,
            id: NodeId(2),
        };
        assert!(b > a, "higher rank wins regardless of id");
        assert!(c > b, "id breaks rank ties");
        assert!(Candidate::none() < a, "identity loses to everything");
    }

    #[test]
    fn leader_agg_laws() {
        let agg = LeaderAgg;
        let vals = [
            Candidate::none(),
            Candidate::draw(1, NodeId(0)),
            Candidate::draw(1, NodeId(1)),
            Candidate::draw(2, NodeId(0)),
        ];
        for a in &vals {
            assert_eq!(agg.combine(a, &agg.identity()), *a);
            assert_eq!(agg.combine(a, a), *a, "idempotence");
            for b in &vals {
                assert_eq!(agg.combine(a, b), agg.combine(b, a));
                for c in &vals {
                    assert_eq!(
                        agg.combine(a, &agg.combine(b, c)),
                        agg.combine(&agg.combine(a, b), c)
                    );
                }
            }
        }
    }

    #[test]
    fn draw_is_deterministic_and_spread() {
        let a = Candidate::draw(42, NodeId(7));
        assert_eq!(a, Candidate::draw(42, NodeId(7)));
        assert_ne!(
            Candidate::draw(42, NodeId(8)).rank,
            a.rank,
            "distinct nodes draw distinct ranks"
        );
        assert_ne!(
            Candidate::draw(43, NodeId(7)).rank,
            a.rank,
            "distinct seeds draw distinct ranks"
        );
        assert!(a.rank >= 1, "rank 0 is reserved for the identity");
    }

    #[test]
    fn election_is_unanimous_and_correct() {
        let (env, s, algo) = setup(150, 12.0, 8, 101);
        let d_hat = env.comm_graph().diameter_approx() + 2;
        let out = elect_leader(&env, &s, &algo, d_hat, 77);
        assert!(out.leader_knows, "the winner must learn it won");
        assert!(
            out.agreement * 10 >= 150 * 9,
            "only {}/150 nodes agree on the leader",
            out.agreement
        );
        // The ground truth winner is the max candidate.
        let expect = (0..150)
            .map(|i| Candidate::draw(77, NodeId(i)))
            .max()
            .unwrap();
        assert_eq!(out.leader, expect.id);
    }

    #[test]
    fn different_seeds_elect_different_leaders() {
        // The election is randomized: over several seeds the winner should
        // not be constant (probability of a repeat triple is ~(1/n)²).
        let leaders: Vec<NodeId> = [11u64, 22, 33]
            .iter()
            .map(|&seed| {
                (0..200)
                    .map(|i| Candidate::draw(seed, NodeId(i)))
                    .max()
                    .unwrap()
                    .id
            })
            .collect();
        assert!(
            leaders.windows(2).any(|w| w[0] != w[1]),
            "three elections produced the same leader: {leaders:?}"
        );
    }

    #[test]
    fn election_works_single_channel() {
        let (env, s, algo) = setup(80, 9.0, 1, 55);
        let d_hat = env.comm_graph().diameter_approx() + 2;
        let out = elect_leader(&env, &s, &algo, d_hat, 3);
        assert!(out.agreement * 10 >= 80 * 9);
        assert!(out.leader_knows);
    }
}
