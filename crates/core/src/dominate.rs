//! The `r_c`-dominating-set / clustering substrate (paper §5.1.1).
//!
//! The paper black-boxes this step with the Scheideler–Richa–Santi protocol
//! \[28\]: `O(log n)` rounds, constant density `µ`, plus the clustering
//! function (every node gets a dominator within `r_c`). Per `DESIGN.md`
//! substitution #1 we provide:
//!
//! * [`DominateProtocol`] — a distributed, faithful-in-spirit protocol:
//!   3-slot rounds (CAND / JOIN / DOM). Active nodes beacon `CAND` with a
//!   carrier-sense-adapted probability (start `λ/n̂`, double on quiet,
//!   halve on busy — the signal-strength adaptation is exactly the kind of
//!   mechanism \[28\] builds on); a node hearing `CAND` from within `r_c`
//!   answers `JOIN`; an acknowledged candidate becomes a dominator and
//!   announces `DOM` (repeatedly, with the constant-density probability);
//!   nodes hearing `DOM` from within `r_c` become its dominatees and halt.
//!   Unlike the ruling set of §4, ordinary SINR receptions suffice here
//!   (domination needs no independence certificate), which is what makes
//!   the protocol fast at high density.
//! * [`oracle`] — a centrally computed greedy maximal `r_c`-independent set,
//!   used by ablation A1 to factor the substrate out of core benchmarks.

use crate::schedule::Tdma;
use mca_geom::{Point, SpatialGrid};
use mca_radio::{Action, Channel, NodeId, Observation, Protocol};
use mca_sinr::SinrParams;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Messages of the dominating-set protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DominateMsg {
    /// Candidacy beacon.
    Cand(NodeId),
    /// Willingness to be dominated by `to`.
    Join {
        /// The candidate being joined.
        to: NodeId,
    },
    /// Dominator announcement.
    Dom(NodeId),
}

/// Slots per protocol round (CAND, JOIN, DOM).
pub const SLOTS_PER_ROUND: u16 = 3;

/// Configuration of the distributed dominating-set protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DominateConfig {
    /// Domination radius `r_c`.
    pub radius: f64,
    /// Initial (and minimum) candidacy probability, `λ/n̂`.
    pub p_start: f64,
    /// Probability cap.
    pub p_cap: f64,
    /// Dominator announce probability (`1/(2µ)`).
    pub p_dom: f64,
    /// Sensed-power level above which a round counts busy (power of a
    /// single transmitter at ~2·r_c is a good default).
    pub busy_threshold: f64,
    /// Total protocol rounds.
    pub rounds: u64,
    /// Rounds before the end at which still-active nodes self-declare
    /// dominator (they then announce for the remaining tail).
    pub tail: u64,
    /// Conservative node-side SINR parameters.
    pub params: SinrParams,
}

impl DominateConfig {
    /// Default configuration from an [`crate::AlgoConfig`]: radius `r_c`,
    /// `λ/n̂` start, tail = announce rounds.
    pub fn from_algo(cfg: &crate::AlgoConfig) -> Self {
        let params = cfg.node_params();
        let rc = params.r_cluster();
        let ramp = cfg.know.log2_n() as u64;
        let tail = cfg.announce_rounds();
        DominateConfig {
            radius: rc,
            p_start: (cfg.consts.lambda / cfg.know.n_bound.max(2) as f64).min(0.25),
            p_cap: cfg.consts.p_cap,
            p_dom: cfg.density_tx_prob(),
            busy_threshold: params.received_power(2.0 * rc),
            rounds: ramp + 2 * cfg.ruling_rounds() + tail,
            tail,
            params,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum DomStatus {
    Active,
    /// Became a dominator in some round; `announced` tracks the immediate
    /// first DOM transmission.
    Dominator {
        announced: bool,
        by_timeout: bool,
    },
    /// Dominated: halted.
    Dominated {
        by: NodeId,
        dist: f64,
    },
}

/// Per-node state machine of the distributed dominating-set protocol.
#[derive(Debug, Clone)]
pub struct DominateProtocol {
    cfg: DominateConfig,
    me: NodeId,
    status: DomStatus,
    p: f64,
    sent_cand: bool,
    cand_heard: Option<NodeId>,
    busy: bool,
    rounds_done: u64,
    decided_round: Option<u64>,
    finished: bool,
}

impl DominateProtocol {
    /// A participant.
    pub fn new(me: NodeId, cfg: DominateConfig) -> Self {
        assert!(cfg.radius > 0.0);
        assert!(cfg.p_start > 0.0 && cfg.p_start <= cfg.p_cap && cfg.p_cap <= 0.5);
        assert!(cfg.tail < cfg.rounds, "tail must leave room for elections");
        DominateProtocol {
            cfg,
            me,
            status: DomStatus::Active,
            p: cfg.p_start,
            sent_cand: false,
            cand_heard: None,
            busy: false,
            rounds_done: 0,
            decided_round: None,
            finished: false,
        }
    }

    /// Whether this node ended as a dominator.
    pub fn is_dominator(&self) -> bool {
        matches!(self.status, DomStatus::Dominator { .. })
    }

    /// Whether the node self-declared at timeout (quality metric).
    pub fn timed_out(&self) -> bool {
        matches!(
            self.status,
            DomStatus::Dominator {
                by_timeout: true,
                ..
            }
        )
    }

    /// The dominator this node attached to, with RSSI distance estimate.
    pub fn dominated_by(&self) -> Option<(NodeId, f64)> {
        match self.status {
            DomStatus::Dominated { by, dist } => Some((by, dist)),
            _ => None,
        }
    }

    /// Round at which the node's fate was decided (election/domination).
    pub fn decided_round(&self) -> Option<u64> {
        self.decided_round
    }

    fn within(&self, signal: f64) -> bool {
        signal >= self.cfg.params.received_power(self.cfg.radius) * 0.98
    }

    fn end_round(&mut self) {
        self.rounds_done += 1;
        if matches!(self.status, DomStatus::Active) {
            if self.busy {
                self.p = (self.p / 2.0).max(self.cfg.p_start);
            } else {
                self.p = (self.p * 2.0).min(self.cfg.p_cap);
            }
            // Self-declare near the end so the announce tail can reach
            // potential dominatees.
            if self.rounds_done + self.cfg.tail >= self.cfg.rounds {
                self.status = DomStatus::Dominator {
                    announced: false,
                    by_timeout: true,
                };
                self.decided_round = Some(self.rounds_done);
            }
        }
        self.sent_cand = false;
        self.cand_heard = None;
        self.busy = false;
        if self.rounds_done >= self.cfg.rounds {
            self.finished = true;
        }
    }
}

impl Protocol for DominateProtocol {
    type Msg = DominateMsg;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<DominateMsg> {
        let tdma = Tdma::trivial(SLOTS_PER_ROUND);
        let ts = tdma.decompose(slot);
        let ch = Channel::FIRST;
        match (ts.slot_in_round, self.status) {
            (0, DomStatus::Active) => {
                if rng.gen_bool(self.p) {
                    self.sent_cand = true;
                    Action::Transmit {
                        channel: ch,
                        msg: DominateMsg::Cand(self.me),
                    }
                } else {
                    Action::Listen { channel: ch }
                }
            }
            (1, DomStatus::Active) => {
                if let Some(c) = self.cand_heard {
                    if rng.gen_bool(self.p.max(self.cfg.p_dom).min(1.0)) {
                        return Action::Transmit {
                            channel: ch,
                            msg: DominateMsg::Join { to: c },
                        };
                    }
                }
                Action::Listen { channel: ch }
            }
            (2, DomStatus::Dominator { announced, .. }) => {
                if !announced || rng.gen_bool(self.cfg.p_dom) {
                    self.status = DomStatus::Dominator {
                        announced: true,
                        by_timeout: self.timed_out(),
                    };
                    Action::Transmit {
                        channel: ch,
                        msg: DominateMsg::Dom(self.me),
                    }
                } else {
                    Action::Idle
                }
            }
            (2, DomStatus::Active) => Action::Listen { channel: ch },
            _ => Action::Idle,
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<DominateMsg>, _rng: &mut SmallRng) {
        let tdma = Tdma::trivial(SLOTS_PER_ROUND);
        let ts = tdma.decompose(slot);
        match ts.slot_in_round {
            0 => match &obs {
                Observation::Received(r) => {
                    if r.sensed_interference() >= self.cfg.busy_threshold {
                        self.busy = true;
                    }
                    if let DominateMsg::Cand(from) = r.msg {
                        if self.within(r.signal) {
                            self.cand_heard = Some(from);
                        }
                    }
                }
                Observation::Noise { total_power } if *total_power >= self.cfg.busy_threshold => {
                    self.busy = true;
                }
                _ => {}
            },
            1 => {
                if self.sent_cand && matches!(self.status, DomStatus::Active) {
                    if let Observation::Received(r) = &obs {
                        if let DominateMsg::Join { to } = r.msg {
                            if to == self.me && self.within(r.signal) {
                                self.status = DomStatus::Dominator {
                                    announced: false,
                                    by_timeout: false,
                                };
                                self.decided_round = Some(self.rounds_done);
                            }
                        }
                    }
                }
            }
            2 => {
                if matches!(self.status, DomStatus::Active) {
                    if let Observation::Received(r) = &obs {
                        if let DominateMsg::Dom(from) = r.msg {
                            if self.within(r.signal) {
                                self.status = DomStatus::Dominated {
                                    by: from,
                                    dist: r.distance_estimate(&self.cfg.params),
                                };
                                self.decided_round = Some(self.rounds_done);
                            }
                        }
                    }
                }
                self.end_round();
            }
            _ => unreachable!(),
        }
    }

    fn is_done(&self) -> bool {
        // Dominated nodes halt immediately; dominators serve announce duty
        // until the schedule ends.
        matches!(self.status, DomStatus::Dominated { .. }) || self.finished
    }
}

/// Result of the dominating-set phase, per node.
#[derive(Debug, Clone, PartialEq)]
pub struct DominatingOutcome {
    /// For each node: `(dominator, rssi distance)`; dominators map to
    /// themselves at distance 0.
    pub dominator_of: Vec<Option<(NodeId, f64)>>,
    /// Dominator flags.
    pub is_dominator: Vec<bool>,
    /// Slots consumed (0 for the oracle).
    pub slots: u64,
    /// Nodes that self-declared at timeout.
    pub timeout_joins: usize,
}

impl DominatingOutcome {
    /// Ids of all dominators.
    pub fn dominators(&self) -> Vec<NodeId> {
        self.is_dominator
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Number of nodes with no dominator (coverage holes).
    pub fn uncovered(&self) -> usize {
        self.dominator_of.iter().filter(|d| d.is_none()).count()
    }
}

/// Centrally computed greedy maximal `r_c`-independent set (ablation mode):
/// scan nodes in seeded random order, keep every node not yet within
/// `radius` of a kept node, attach every node to its nearest kept neighbor.
///
/// Maximality guarantees domination within `radius`; independence bounds the
/// density by a packing constant — the exact guarantee the paper takes from
/// \[28\].
pub fn oracle(positions: &[Point], radius: f64, seed: u64) -> DominatingOutcome {
    oracle_masked(positions, radius, seed, None)
}

/// [`oracle`] restricted to a participation mask: inactive nodes neither
/// dominate nor attach (their outcome entries stay `None`/`false`). With
/// `active = None` this is exactly [`oracle`].
pub fn oracle_masked(
    positions: &[Point],
    radius: f64,
    seed: u64,
    active: Option<&[bool]>,
) -> DominatingOutcome {
    assert!(radius > 0.0);
    let n = positions.len();
    if let Some(a) = active {
        assert_eq!(a.len(), n, "one mask entry per node required");
    }
    let act = |i: usize| active.is_none_or(|a| a[i]);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = mca_radio::rng::derive_rng(seed, 0xD0D0);
    order.shuffle(&mut rng);

    let grid = SpatialGrid::build(positions, radius.max(1e-9));
    let mut is_dominator = vec![false; n];
    for &i in &order {
        if !act(i) {
            continue;
        }
        let mut blocked = false;
        grid.for_each_within(positions, positions[i], radius, |j| {
            if is_dominator[j] {
                blocked = true;
            }
        });
        if !blocked {
            is_dominator[i] = true;
        }
    }
    let mut dominator_of: Vec<Option<(NodeId, f64)>> = vec![None; n];
    for i in 0..n {
        if !act(i) {
            continue;
        }
        if is_dominator[i] {
            dominator_of[i] = Some((NodeId(i as u32), 0.0));
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        grid.for_each_within(positions, positions[i], radius, |j| {
            if is_dominator[j] {
                let d = positions[i].dist(positions[j]);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((j, d));
                }
            }
        });
        dominator_of[i] = best.map(|(j, d)| (NodeId(j as u32), d));
    }
    DominatingOutcome {
        dominator_of,
        is_dominator,
        slots: 0,
        timeout_joins: 0,
    }
}

/// Extracts a [`DominatingOutcome`] from finished protocol instances.
pub fn collect(protocols: &[DominateProtocol], slots: u64) -> DominatingOutcome {
    let dominator_of = protocols
        .iter()
        .map(|p| {
            if p.is_dominator() {
                Some((p.me, 0.0))
            } else {
                p.dominated_by()
            }
        })
        .collect();
    DominatingOutcome {
        dominator_of,
        is_dominator: protocols.iter().map(|p| p.is_dominator()).collect(),
        slots,
        timeout_joins: protocols.iter().filter(|p| p.timed_out()).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_geom::Deployment;
    use mca_radio::Engine;
    use rand::SeedableRng;

    fn run_distributed(positions: Vec<Point>, seed: u64) -> DominatingOutcome {
        let params = SinrParams::default();
        let cfg = crate::AlgoConfig::practical(4, &params, positions.len().max(2));
        let mut dc = DominateConfig::from_algo(&cfg);
        // Enlarge the radius for tests (theory r_c is tiny; see DESIGN.md).
        dc.radius = 1.0;
        dc.busy_threshold = params.received_power(2.0);
        let protocols: Vec<DominateProtocol> = (0..positions.len())
            .map(|i| DominateProtocol::new(NodeId(i as u32), dc))
            .collect();
        let mut engine = Engine::new(params, positions, protocols, seed);
        let max = dc.rounds * SLOTS_PER_ROUND as u64 + 3;
        engine.run_until_done(max);
        let slots = engine.slot();
        collect(engine.protocols(), slots)
    }

    #[test]
    fn oracle_is_independent_and_dominating() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let d = Deployment::uniform(400, 20.0, &mut rng);
        let out = oracle(d.points(), 1.5, 7);
        let doms = out.dominators();
        assert!(!doms.is_empty());
        assert_eq!(out.uncovered(), 0);
        // Independence.
        for (i, &a) in doms.iter().enumerate() {
            for &b in &doms[i + 1..] {
                assert!(
                    d.points()[a.index()].dist(d.points()[b.index()]) > 1.5,
                    "dominators {a} and {b} too close"
                );
            }
        }
        // Every node's dominator is within the radius.
        for (i, dom) in out.dominator_of.iter().enumerate() {
            let (dm, _) = dom.unwrap();
            assert!(d.points()[i].dist(d.points()[dm.index()]) <= 1.5);
        }
    }

    #[test]
    fn oracle_on_single_node() {
        let out = oracle(&[Point::ORIGIN], 1.0, 1);
        assert!(out.is_dominator[0]);
        assert_eq!(out.uncovered(), 0);
    }

    #[test]
    fn distributed_covers_a_small_cluster() {
        // 12 nodes in a 1-radius blob: expect 1..=4 dominators, full cover.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let d = Deployment::clustered(1, 12, 1.0, 0.3, &mut rng);
        let out = run_distributed(d.points().to_vec(), 11);
        let doms = out.dominators();
        assert!(!doms.is_empty(), "someone must become dominator");
        assert_eq!(out.uncovered(), 0, "all nodes must be covered");
        assert!(
            doms.len() <= 6,
            "density blow-up: {} dominators for a tight blob",
            doms.len()
        );
    }

    #[test]
    fn distributed_respects_radius() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let d = Deployment::uniform(60, 6.0, &mut rng);
        let out = run_distributed(d.points().to_vec(), 13);
        assert_eq!(out.uncovered(), 0);
        for (i, dom) in out.dominator_of.iter().enumerate() {
            let (dm, dist_est) = dom.unwrap();
            let true_dist = d.points()[i].dist(d.points()[dm.index()]);
            assert!(
                true_dist <= 1.05,
                "node {i} attached to dominator at distance {true_dist}"
            );
            assert!((dist_est - true_dist).abs() < 0.1);
        }
    }

    #[test]
    fn distributed_density_bounded() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        let d = Deployment::uniform(300, 10.0, &mut rng);
        let out = run_distributed(d.points().to_vec(), 17);
        assert_eq!(out.uncovered(), 0);
        let doms = out.dominators();
        let dom_pts: Vec<Point> = doms.iter().map(|d_| d.points()[d_.index()]).collect();
        let grid = SpatialGrid::build(&dom_pts, 1.0);
        let density = grid.max_ball_occupancy(&dom_pts, 1.0);
        assert!(
            density <= 8,
            "density {density} exceeds practical µ bound (dominators: {})",
            doms.len()
        );
    }

    #[test]
    fn far_nodes_both_dominate() {
        let out = run_distributed(vec![Point::ORIGIN, Point::new(50.0, 0.0)], 3);
        assert!(out.is_dominator.iter().all(|&d| d));
    }
}
