//! The cluster TDMA schedule (paper §5.1.2).
//!
//! After cluster coloring, protocol rounds are time-multiplexed over the `φ`
//! cluster colors: a *super-round* consists of `φ` blocks of
//! `slots_per_round` slots, and only clusters of color `i` operate during
//! block `i`. All nodes derive the same decomposition from the global slot
//! counter (synchronized start), so the schedule needs no communication.

/// Decomposition of a global slot into (round, active color, slot-in-round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TdmaSlot {
    /// Protocol round index (super-round).
    pub round: u64,
    /// Cluster color whose block this slot belongs to.
    pub active_color: u16,
    /// Slot index within the active block (`0..slots_per_round`).
    pub slot_in_round: u16,
}

/// A TDMA schedule with `phi` colors and `slots_per_round` slots per
/// protocol round.
///
/// # Examples
///
/// ```
/// use mca_core::Tdma;
/// let t = Tdma::new(3, 2); // 3 colors, 2 slots per round
/// let s = t.decompose(7);  // slot 7 = round 1, color 0, slot 1
/// assert_eq!((s.round, s.active_color, s.slot_in_round), (1, 0, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tdma {
    phi: u16,
    slots_per_round: u16,
}

impl Tdma {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `phi` or `slots_per_round` is zero.
    pub fn new(phi: u16, slots_per_round: u16) -> Self {
        assert!(phi >= 1, "phi must be at least 1");
        assert!(slots_per_round >= 1, "slots_per_round must be at least 1");
        Tdma {
            phi,
            slots_per_round,
        }
    }

    /// A trivial schedule (single color), for pre-coloring phases.
    pub fn trivial(slots_per_round: u16) -> Self {
        Tdma::new(1, slots_per_round)
    }

    /// Number of colors `φ`.
    pub fn phi(&self) -> u16 {
        self.phi
    }

    /// Slots per protocol round per color.
    pub fn slots_per_round(&self) -> u16 {
        self.slots_per_round
    }

    /// Slots in one super-round (`φ · slots_per_round`).
    pub fn slots_per_super_round(&self) -> u64 {
        self.phi as u64 * self.slots_per_round as u64
    }

    /// Decomposes a global slot index.
    pub fn decompose(&self, slot: u64) -> TdmaSlot {
        let spsr = self.slots_per_super_round();
        let round = slot / spsr;
        let rem = slot % spsr;
        TdmaSlot {
            round,
            active_color: (rem / self.slots_per_round as u64) as u16,
            slot_in_round: (rem % self.slots_per_round as u64) as u16,
        }
    }

    /// Whether a node of cluster color `color` is in its active block at
    /// `slot`; returns the decomposition if so.
    pub fn my_slot(&self, slot: u64, color: u16) -> Option<TdmaSlot> {
        let d = self.decompose(slot);
        (d.active_color == color).then_some(d)
    }

    /// Total slots needed for `rounds` protocol rounds.
    pub fn slots_for_rounds(&self, rounds: u64) -> u64 {
        rounds * self.slots_per_super_round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trivial_schedule_is_identity_on_rounds() {
        let t = Tdma::trivial(3);
        let d = t.decompose(10);
        assert_eq!(d.round, 3);
        assert_eq!(d.active_color, 0);
        assert_eq!(d.slot_in_round, 1);
    }

    #[test]
    fn decomposition_walkthrough() {
        let t = Tdma::new(2, 3); // super-round = 6 slots
        let expect = [
            (0, 0, 0),
            (0, 0, 1),
            (0, 0, 2),
            (0, 1, 0),
            (0, 1, 1),
            (0, 1, 2),
            (1, 0, 0),
        ];
        for (slot, &(r, c, s)) in expect.iter().enumerate() {
            let d = t.decompose(slot as u64);
            assert_eq!((d.round, d.active_color, d.slot_in_round), (r, c, s));
        }
    }

    #[test]
    fn my_slot_filters_by_color() {
        let t = Tdma::new(3, 1);
        assert!(t.my_slot(0, 0).is_some());
        assert!(t.my_slot(0, 1).is_none());
        assert!(t.my_slot(1, 1).is_some());
        assert!(t.my_slot(5, 2).is_some());
    }

    #[test]
    fn slots_for_rounds_roundtrip() {
        let t = Tdma::new(4, 2);
        let slots = t.slots_for_rounds(10);
        assert_eq!(slots, 80);
        assert_eq!(t.decompose(slots).round, 10);
        assert_eq!(t.decompose(slots - 1).round, 9);
    }

    #[test]
    #[should_panic(expected = "phi must be at least 1")]
    fn zero_phi_rejected() {
        Tdma::new(0, 1);
    }

    proptest! {
        #[test]
        fn each_color_gets_equal_share(phi in 1u16..8, spr in 1u16..6, rounds in 1u64..20) {
            let t = Tdma::new(phi, spr);
            let total = t.slots_for_rounds(rounds);
            let mut per_color = vec![0u64; phi as usize];
            for s in 0..total {
                per_color[t.decompose(s).active_color as usize] += 1;
            }
            for &c in &per_color {
                prop_assert_eq!(c, rounds * spr as u64);
            }
        }

        #[test]
        fn round_is_monotone(phi in 1u16..8, spr in 1u16..6, s1 in 0u64..10_000, s2 in 0u64..10_000) {
            let t = Tdma::new(phi, spr);
            if s1 <= s2 {
                prop_assert!(t.decompose(s1).round <= t.decompose(s2).round);
            }
        }
    }
}
