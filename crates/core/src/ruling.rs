//! The `(r, 2r)`-ruling set algorithm (paper §4).
//!
//! Rounds of three slots:
//!
//! 1. **HELLO** — each active node transmits `HELLO` with probability `p`;
//! 2. **ACK** — a node with a *clear reception* (Definition 4) of a HELLO
//!    from an `r`-neighbor answers `ACK` with probability `p`;
//! 3. **IN** — a node whose HELLO was acked by an `r`-neighbor joins the set
//!    `S`, announces `IN`, and halts; active nodes that hear `IN` from an
//!    `r`-neighbor halt as dominated (Lemma 5).
//!
//! Nodes still active after all rounds join `S` (Lemma 6 shows `r`-neighbors
//! survive together only with probability `n^{-3}`).
//!
//! Two probability policies are supported:
//!
//! * [`ProbPolicy::Fixed`] — the paper's `1/(2µ)` for constant-density
//!   inputs (dominator coloring) or `λ/m̂` when the caller knows the local
//!   participant count (reporter and leader elections);
//! * [`ProbPolicy::Adaptive`] — carrier-sense ramp-up used by the
//!   dominating-set substrate: start at `λ/n̂` and double per quiet round,
//!   halve per busy round (sensed total power above a threshold), capped at
//!   `p_cap`. This stands in for the Scheideler–Richa–Santi black box
//!   (substitution #1 in `DESIGN.md`).

use crate::schedule::Tdma;
use mca_radio::{Action, Channel, NodeId, Observation, Protocol};
use mca_sinr::SinrParams;
use rand::rngs::SmallRng;
use rand::Rng;

/// Messages of the ruling-set protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RulingMsg {
    /// Candidacy beacon.
    Hello {
        /// Sender.
        from: NodeId,
        /// Group (cluster) scope, if restricted.
        group: Option<NodeId>,
    },
    /// Acknowledgement of a clearly received HELLO.
    Ack {
        /// The HELLO sender being acknowledged.
        to: NodeId,
        /// Group scope.
        group: Option<NodeId>,
    },
    /// Set-membership announcement; `r`-neighbors halt on hearing it.
    In {
        /// The node that joined the set.
        from: NodeId,
        /// Group scope.
        group: Option<NodeId>,
    },
}

impl RulingMsg {
    fn group(&self) -> Option<NodeId> {
        match *self {
            RulingMsg::Hello { group, .. }
            | RulingMsg::Ack { group, .. }
            | RulingMsg::In { group, .. } => group,
        }
    }
}

/// What happens to a node still active when the rounds run out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutRule {
    /// Join the set unconditionally (the paper's §4 default — needed for
    /// maximality, safe when the round count carries the full union bound).
    Join,
    /// Never join; end as `Expired` and retry in a later phase.
    Expire,
    /// Join only if the whole run was locally silent (no clear-threshold
    /// interference sensed, no group message received): an isolated node
    /// can safely self-elect, a contended one cannot. This keeps lone
    /// nodes from starving without risking near-colliding joins.
    JoinIfQuiet,
}

/// Transmission-probability policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbPolicy {
    /// Constant probability every round.
    Fixed(f64),
    /// Carrier-sense ramp: start at `start`, double on quiet rounds, halve
    /// on rounds where sensed power exceeded `busy_threshold`, cap at the
    /// config's `p_cap`, floor at `start`.
    Adaptive {
        /// Initial (and minimum) probability.
        start: f64,
        /// Total-power level above which a listening slot counts as busy.
        busy_threshold: f64,
    },
}

/// Configuration of one ruling-set execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RulingConfig {
    /// Independence/domination radius `r`.
    pub radius: f64,
    /// Probability policy.
    pub prob: ProbPolicy,
    /// Probability cap for the adaptive policy.
    pub p_cap: f64,
    /// Number of 3-slot protocol rounds to run.
    pub rounds: u64,
    /// Channel the protocol operates on.
    pub channel: Channel,
    /// Restrict participation to one group (cluster): messages from other
    /// groups are ignored (they still count as sensed interference).
    pub group: Option<NodeId>,
    /// TDMA schedule; `slots_per_round` must be [`SLOTS_PER_ROUND`].
    pub tdma: Tdma,
    /// This node's TDMA color (clusters act only in their own block).
    pub color: u16,
    /// Conservative SINR parameters for RSSI/clear-reception checks.
    pub params: SinrParams,
    /// Behavior at the round cap (see [`TimeoutRule`]).
    pub timeout_join: TimeoutRule,
}

/// Slots per protocol round (HELLO, ACK, IN).
pub const SLOTS_PER_ROUND: u16 = 3;

/// Terminal outcome of a node in the ruling set protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RulingOutcome {
    /// Joined the set via an acked HELLO election.
    Elected,
    /// Joined the set at timeout (never dominated, never elected).
    TimedOut,
    /// Halted on hearing `IN` from `by` at estimated distance `dist`.
    Dominated {
        /// The set member that dominated this node.
        by: NodeId,
        /// RSSI distance estimate to it.
        dist: f64,
    },
    /// Did not participate.
    Passive,
    /// Ran out of rounds without joining or being dominated
    /// (only with `timeout_join = false`).
    Expired,
}

impl RulingOutcome {
    /// Whether the node ended up in the ruling set.
    pub fn in_set(&self) -> bool {
        matches!(self, RulingOutcome::Elected | RulingOutcome::TimedOut)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Passive,
    Active,
    /// Listens and acknowledges clear HELLOs but never competes (used by
    /// dominators so that lone cluster members can still be elected).
    Helper,
    Expired,
    /// Will announce IN in the next slot-2 of its block, then halt in-set.
    Joining,
    InSet {
        timed_out: bool,
    },
    Dominated {
        by: NodeId,
        dist: f64,
    },
}

/// The per-node ruling-set protocol state machine.
#[derive(Debug, Clone)]
pub struct RulingSet {
    cfg: RulingConfig,
    me: NodeId,
    status: Status,
    p: f64,
    // Per-round scratch.
    sent_hello: bool,
    clear_hello: Option<NodeId>,
    got_ack: bool,
    busy_seen: bool,
    rounds_done: u64,
    halt_round: Option<u64>,
    heard_in: bool,
    /// Whether any round sensed clear-threshold interference or a group
    /// message (quietness tracking for `TimeoutRule::JoinIfQuiet`).
    ever_disturbed: bool,
}

impl RulingSet {
    /// An active participant.
    ///
    /// # Panics
    ///
    /// Panics if the TDMA schedule's slot count differs from
    /// [`SLOTS_PER_ROUND`] or probabilities are out of `(0, 1]`.
    pub fn new(me: NodeId, cfg: RulingConfig) -> Self {
        assert_eq!(
            cfg.tdma.slots_per_round(),
            SLOTS_PER_ROUND,
            "ruling set needs 3 slots per round"
        );
        let p0 = match cfg.prob {
            ProbPolicy::Fixed(p) => p,
            ProbPolicy::Adaptive { start, .. } => start,
        };
        assert!(p0 > 0.0 && p0 <= 1.0, "probability must lie in (0,1]");
        assert!(cfg.p_cap > 0.0 && cfg.p_cap <= 1.0);
        assert!(cfg.radius > 0.0, "radius must be positive");
        RulingSet {
            cfg,
            me,
            status: Status::Active,
            p: p0,
            sent_hello: false,
            clear_hello: None,
            got_ack: false,
            busy_seen: false,
            rounds_done: 0,
            halt_round: None,
            heard_in: false,
            ever_disturbed: false,
        }
    }

    /// A non-participant (terminates immediately, stays silent).
    pub fn passive(me: NodeId, cfg: RulingConfig) -> Self {
        let mut s = RulingSet::new(me, cfg);
        s.status = Status::Passive;
        s
    }

    /// An ACK-only helper: listens and acknowledges clear HELLOs with the
    /// configured probability but never competes for membership. Dominators
    /// help this way during reporter elections, so clusters with a single
    /// member can still elect it.
    pub fn helper(me: NodeId, cfg: RulingConfig) -> Self {
        let mut s = RulingSet::new(me, cfg);
        s.status = Status::Helper;
        s
    }

    /// Terminal outcome (meaningful once [`Protocol::is_done`] is true; a
    /// still-active node reports `Passive`-like placeholder via `None`).
    pub fn outcome(&self) -> RulingOutcome {
        match self.status {
            Status::Passive => RulingOutcome::Passive,
            Status::InSet { timed_out: true } => RulingOutcome::TimedOut,
            Status::InSet { timed_out: false } => RulingOutcome::Elected,
            Status::Dominated { by, dist } => RulingOutcome::Dominated { by, dist },
            Status::Expired => RulingOutcome::Expired,
            Status::Active | Status::Joining | Status::Helper => RulingOutcome::Passive,
        }
    }

    /// Whether this node is in the ruling set.
    pub fn in_set(&self) -> bool {
        matches!(self.status, Status::InSet { .. })
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Round at which the node halted, if it has.
    pub fn halt_round(&self) -> Option<u64> {
        self.halt_round
    }

    /// Current transmission probability (for contention instrumentation).
    pub fn current_prob(&self) -> f64 {
        self.p
    }

    /// Whether an `IN` announcement from this node's group was heard on its
    /// channel within the radius (helpers use this to detect that the
    /// channel elected a member).
    pub fn heard_in(&self) -> bool {
        self.heard_in
    }

    fn group_matches(&self, msg: &RulingMsg) -> bool {
        msg.group() == self.cfg.group
    }

    fn within_radius(&self, signal: f64) -> bool {
        // Signal at distance r, with a 2% tolerance for parameter slack.
        signal >= self.cfg.params.received_power(self.cfg.radius) * 0.98
    }

    fn sense_busy(&mut self, interference: f64) {
        if let ProbPolicy::Adaptive { busy_threshold, .. } = self.cfg.prob {
            if interference >= busy_threshold {
                self.busy_seen = true;
            }
        }
    }

    fn end_round(&mut self) {
        self.rounds_done += 1;
        if matches!(self.status, Status::Helper) && self.rounds_done >= self.cfg.rounds {
            self.status = Status::Passive;
            return;
        }
        if let ProbPolicy::Adaptive { start, .. } = self.cfg.prob {
            if self.busy_seen {
                self.p = (self.p / 2.0).max(start);
            } else {
                self.p = (self.p * 2.0).min(self.cfg.p_cap);
            }
        }
        self.sent_hello = false;
        self.clear_hello = None;
        self.got_ack = false;
        self.busy_seen = false;
        if self.rounds_done >= self.cfg.rounds && matches!(self.status, Status::Active) {
            let join = match self.cfg.timeout_join {
                TimeoutRule::Join => true,
                TimeoutRule::Expire => false,
                TimeoutRule::JoinIfQuiet => !self.ever_disturbed,
            };
            self.status = if join {
                // Timeout: enter the set without announcement (paper §4).
                Status::InSet { timed_out: true }
            } else {
                Status::Expired
            };
            self.halt_round = Some(self.rounds_done);
        }
    }
}

impl Protocol for RulingSet {
    type Msg = RulingMsg;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<RulingMsg> {
        let Some(ts) = self.cfg.tdma.my_slot(slot, self.cfg.color) else {
            return Action::Idle;
        };
        let ch = self.cfg.channel;
        match (ts.slot_in_round, self.status) {
            (0, Status::Helper) => Action::Listen { channel: ch },
            (1, Status::Helper) => {
                if let Some(h) = self.clear_hello {
                    if rng.gen_bool(self.p.min(1.0)) {
                        return Action::Transmit {
                            channel: ch,
                            msg: RulingMsg::Ack {
                                to: h,
                                group: self.cfg.group,
                            },
                        };
                    }
                }
                Action::Listen { channel: ch }
            }
            (2, Status::Helper) => Action::Listen { channel: ch },
            (0, Status::Active) => {
                if rng.gen_bool(self.p.min(1.0)) {
                    self.sent_hello = true;
                    Action::Transmit {
                        channel: ch,
                        msg: RulingMsg::Hello {
                            from: self.me,
                            group: self.cfg.group,
                        },
                    }
                } else {
                    Action::Listen { channel: ch }
                }
            }
            (1, Status::Active) => {
                if let Some(h) = self.clear_hello {
                    if rng.gen_bool(self.p.min(1.0)) {
                        return Action::Transmit {
                            channel: ch,
                            msg: RulingMsg::Ack {
                                to: h,
                                group: self.cfg.group,
                            },
                        };
                    }
                }
                Action::Listen { channel: ch }
            }
            (2, Status::Joining) => Action::Transmit {
                channel: ch,
                msg: RulingMsg::In {
                    from: self.me,
                    group: self.cfg.group,
                },
            },
            (2, Status::Active) => Action::Listen { channel: ch },
            _ => Action::Idle,
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<RulingMsg>, _rng: &mut SmallRng) {
        let Some(ts) = self.cfg.tdma.my_slot(slot, self.cfg.color) else {
            return;
        };
        // Quietness tracking for JoinIfQuiet: evidence of a transmitter
        // within ~2r (a competitor that could conflict with a self-join)
        // counts as a disturbance. Far-field traffic does not — otherwise
        // isolated nodes in a busy network could never self-elect.
        let competitor_power = self.cfg.params.received_power(2.0 * self.cfg.radius);
        match &obs {
            Observation::Received(r)
                if (self.group_matches(&r.msg) || r.signal >= competitor_power) =>
            {
                self.ever_disturbed = true;
            }
            Observation::Noise { total_power } if *total_power >= competitor_power => {
                self.ever_disturbed = true;
            }
            _ => {}
        }
        match ts.slot_in_round {
            0 => {
                if let Observation::Received(r) = &obs {
                    // A decode means the channel was locally clean up to the
                    // residual interference — sense that residue, not the
                    // decoded signal itself.
                    self.sense_busy(r.sensed_interference());
                    if self.group_matches(&r.msg)
                        && matches!(r.msg, RulingMsg::Hello { .. })
                        && r.is_clear(&self.cfg.params, self.cfg.radius)
                    {
                        if let RulingMsg::Hello { from, .. } = r.msg {
                            self.clear_hello = Some(from);
                        }
                    }
                } else if let Observation::Noise { total_power } = obs {
                    self.sense_busy(total_power);
                }
            }
            1 => {
                if self.sent_hello {
                    if let Observation::Received(r) = &obs {
                        if self.group_matches(&r.msg) && self.within_radius(r.signal) {
                            if let RulingMsg::Ack { to, .. } = r.msg {
                                if to == self.me {
                                    self.got_ack = true;
                                }
                            }
                        }
                    }
                }
                // Decide whether to announce IN next slot.
                if matches!(self.status, Status::Active) && self.sent_hello && self.got_ack {
                    self.status = Status::Joining;
                }
            }
            2 => {
                match self.status {
                    Status::Joining => {
                        // IN transmitted this slot; join and halt.
                        self.status = Status::InSet { timed_out: false };
                        self.halt_round = Some(self.rounds_done);
                    }
                    Status::Active => {
                        if let Observation::Received(r) = &obs {
                            if self.group_matches(&r.msg) && self.within_radius(r.signal) {
                                if let RulingMsg::In { from, .. } = r.msg {
                                    let dist = r.distance_estimate(&self.cfg.params);
                                    self.status = Status::Dominated { by: from, dist };
                                    self.halt_round = Some(self.rounds_done);
                                    self.heard_in = true;
                                }
                            }
                        }
                    }
                    Status::Helper => {
                        if let Observation::Received(r) = &obs {
                            if self.group_matches(&r.msg)
                                && self.within_radius(r.signal)
                                && matches!(r.msg, RulingMsg::In { .. })
                            {
                                self.heard_in = true;
                            }
                        }
                    }
                    _ => {}
                }
                if !matches!(self.status, Status::Passive) {
                    self.end_round();
                }
            }
            _ => unreachable!("3 slots per round"),
        }
    }

    fn is_done(&self) -> bool {
        matches!(
            self.status,
            Status::Passive | Status::InSet { .. } | Status::Dominated { .. } | Status::Expired
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_geom::Point;
    use mca_radio::Engine;
    use mca_sinr::SinrParams;

    fn base_cfg(radius: f64, rounds: u64) -> RulingConfig {
        RulingConfig {
            radius,
            prob: ProbPolicy::Fixed(0.25),
            p_cap: 0.25,
            rounds,
            channel: Channel::FIRST,
            group: None,
            tdma: Tdma::trivial(SLOTS_PER_ROUND),
            color: 0,
            params: SinrParams::default(),
            timeout_join: TimeoutRule::Join,
        }
    }

    fn run(positions: Vec<Point>, cfg: RulingConfig, seed: u64) -> Vec<RulingSet> {
        let n = positions.len();
        let protocols: Vec<RulingSet> = (0..n)
            .map(|i| RulingSet::new(NodeId(i as u32), cfg))
            .collect();
        let max_slots = cfg.tdma.slots_for_rounds(cfg.rounds) + 3;
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, seed);
        engine.run_until_done(max_slots);
        engine.into_protocols()
    }

    #[test]
    fn isolated_node_times_out_into_set() {
        let out = run(vec![Point::ORIGIN], base_cfg(1.0, 5), 1);
        assert!(out[0].is_done());
        assert_eq!(out[0].outcome(), RulingOutcome::TimedOut);
        assert!(out[0].in_set());
    }

    #[test]
    fn passive_node_does_nothing() {
        let cfg = base_cfg(1.0, 5);
        let p = RulingSet::passive(NodeId(0), cfg);
        assert!(p.is_done());
        assert_eq!(p.outcome(), RulingOutcome::Passive);
        assert!(!p.in_set());
    }

    #[test]
    fn close_pair_elects_exactly_one() {
        // Two nodes 0.5 apart with r = 1: with enough rounds, one is elected
        // and the other dominated, w.h.p.
        let mut elected_total = 0;
        for seed in 0..10 {
            let out = run(
                vec![Point::ORIGIN, Point::new(0.5, 0.0)],
                base_cfg(1.0, 60),
                seed,
            );
            let in_set: Vec<bool> = out.iter().map(|o| o.in_set()).collect();
            let dominated = out
                .iter()
                .filter(|o| matches!(o.outcome(), RulingOutcome::Dominated { .. }))
                .count();
            let members = in_set.iter().filter(|&&b| b).count();
            assert!(members >= 1, "at least one node must join");
            if members == 1 {
                elected_total += 1;
                assert_eq!(dominated, 1);
            }
        }
        assert!(
            elected_total >= 8,
            "independence should hold in most runs, got {elected_total}/10"
        );
    }

    #[test]
    fn dominated_node_records_its_dominator() {
        for seed in 0..5 {
            let out = run(
                vec![Point::ORIGIN, Point::new(0.4, 0.0)],
                base_cfg(1.0, 60),
                seed,
            );
            for o in &out {
                if let RulingOutcome::Dominated { by, dist } = o.outcome() {
                    assert_ne!(by, o.me);
                    assert!((dist - 0.4).abs() < 0.05, "distance estimate {dist}");
                }
            }
        }
    }

    #[test]
    fn far_pair_both_join() {
        // Nodes 5 apart with r = 1 never interact at election level; both
        // should end in the set (independent since far apart).
        let out = run(
            vec![Point::ORIGIN, Point::new(5.0, 0.0)],
            base_cfg(1.0, 30),
            3,
        );
        assert!(out[0].in_set() && out[1].in_set());
    }

    #[test]
    fn ruling_set_is_independent_and_dominating_on_line() {
        // 20 nodes spaced 0.3 apart, r = 1.0. A fixed p = 1/4 would keep
        // contention far above the clear-reception threshold (the very
        // failure mode the paper's ramped probabilities avoid), so this uses
        // the adaptive carrier-sense policy of the dominating-set substrate.
        let positions: Vec<Point> = (0..20).map(|i| Point::new(0.3 * i as f64, 0.0)).collect();
        for seed in 0..5 {
            let mut cfg = base_cfg(1.0, 300);
            cfg.prob = ProbPolicy::Adaptive {
                start: 0.01,
                busy_threshold: SinrParams::default().clear_threshold(),
            };
            let out = run(positions.clone(), cfg, seed);
            let members: Vec<usize> = (0..20).filter(|&i| out[i].in_set()).collect();
            assert!(!members.is_empty());
            // Domination: everyone in set or dominated.
            for o in &out {
                assert!(o.is_done());
                assert!(o.in_set() || matches!(o.outcome(), RulingOutcome::Dominated { .. }));
            }
            // Independence (allowing rare violations from timeout joins):
            let mut violations = 0;
            for (ai, &a) in members.iter().enumerate() {
                for &b in &members[ai + 1..] {
                    if positions[a].dist(positions[b]) <= 1.0 {
                        violations += 1;
                    }
                }
            }
            assert!(
                violations <= 1,
                "seed {seed}: {violations} independence violations among {members:?}"
            );
        }
    }

    #[test]
    fn group_filter_separates_elections() {
        // Two co-located pairs in different groups, same channel: each group
        // elects its own member independently; cross-group HELLOs are noise.
        let positions = vec![
            Point::ORIGIN,
            Point::new(0.2, 0.0),
            Point::new(0.1, 0.1),
            Point::new(0.3, 0.1),
        ];
        let mut cfg_a = base_cfg(1.0, 80);
        cfg_a.group = Some(NodeId(100));
        let mut cfg_b = base_cfg(1.0, 80);
        cfg_b.group = Some(NodeId(200));
        let protocols = vec![
            RulingSet::new(NodeId(0), cfg_a),
            RulingSet::new(NodeId(1), cfg_a),
            RulingSet::new(NodeId(2), cfg_b),
            RulingSet::new(NodeId(3), cfg_b),
        ];
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, 5);
        engine.run_until_done(cfg_a.tdma.slots_for_rounds(80) + 3);
        let out = engine.into_protocols();
        let group_a_members = out[..2].iter().filter(|o| o.in_set()).count();
        let group_b_members = out[2..].iter().filter(|o| o.in_set()).count();
        assert!(group_a_members >= 1);
        assert!(group_b_members >= 1);
        // A dominated node's dominator must be in its own group.
        for (i, o) in out.iter().enumerate() {
            if let RulingOutcome::Dominated { by, .. } = o.outcome() {
                let same_group = (i < 2) == (by.index() < 2);
                assert!(same_group, "node {i} dominated by {by} across groups");
            }
        }
    }

    #[test]
    fn adaptive_policy_ramps_up_when_quiet() {
        let mut cfg = base_cfg(1.0, 10);
        cfg.prob = ProbPolicy::Adaptive {
            start: 0.01,
            busy_threshold: 1e9,
        };
        cfg.p_cap = 0.25;
        let out = run(vec![Point::ORIGIN], cfg, 2);
        // With no traffic the probability should have doubled to the cap.
        assert!((out[0].current_prob() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tdma_color_gating_keeps_node_silent_in_other_blocks() {
        let mut cfg = base_cfg(1.0, 4);
        cfg.tdma = Tdma::new(2, SLOTS_PER_ROUND);
        cfg.color = 1;
        let mut node = RulingSet::new(NodeId(0), cfg);
        let mut rng = mca_radio::rng::derive_rng(0, 0);
        // Slots 0..3 belong to color 0: node must idle.
        for s in 0..3 {
            assert!(matches!(node.act(s, &mut rng), Action::Idle));
        }
        // Slot 3 starts color 1's block: node acts (listen or transmit).
        assert!(!matches!(node.act(3, &mut rng), Action::Idle));
    }

    #[test]
    #[should_panic(expected = "3 slots per round")]
    fn wrong_tdma_rejected() {
        let mut cfg = base_cfg(1.0, 4);
        cfg.tdma = Tdma::trivial(2);
        RulingSet::new(NodeId(0), cfg);
    }
}
