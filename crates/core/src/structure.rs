//! End-to-end construction and use of the aggregation structure
//! (paper §5 + §6): the library's top-level API.
//!
//! [`build_structure`] runs the phase pipeline — dominating set, dominator
//! coloring, cluster announce, cluster-size approximation, reporter
//! election — carrying only *locally learned* per-node knowledge
//! ([`NodeRecord`]) between phases (the paper's synchronized phase
//! switching). [`aggregate`] then runs the three procedures of §6 on the
//! structure.
//!
//! Every phase reports its slot count so experiments can decompose
//! Theorem 22's `O(D + Δ/F + log n log log n)` into its terms.

use crate::aggfun::Aggregate;
use crate::aggregate::follower::{self, FollowerAgg, FollowerCfg};
use crate::aggregate::intercluster::{ExactCfg, FloodCfg, FloodCombine, TreeExact};
use crate::aggregate::treecast::{self, TreeCast, TreeCfg};
use crate::cluster::ClusterOutcome;
use crate::config::AlgoConfig;
use crate::knowledge::{NodeRecord, Role};
use crate::schedule::Tdma;
use crate::stages;
use mca_geom::{CommGraph, Deployment, Point};
use mca_radio::{Channel, Engine, NodeId};
use mca_sinr::SinrParams;

/// The simulated network: true physics plus node positions.
#[derive(Debug, Clone)]
pub struct NetworkEnv {
    /// Ground-truth physical parameters.
    pub params: SinrParams,
    /// Node positions (index = node id).
    pub positions: Vec<Point>,
}

impl NetworkEnv {
    /// Wraps a deployment.
    pub fn new(params: SinrParams, deployment: &Deployment) -> Self {
        NetworkEnv {
            params,
            positions: deployment.points().to_vec(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the network is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The communication graph `G` at radius `R_ε` (ground truth for
    /// experiments; protocols never see it).
    pub fn comm_graph(&self) -> CommGraph {
        CommGraph::build(&self.positions, self.params.r_eps())
    }
}

/// Which Cluster-Size-Approximation variant to run (paper Lemma 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CsaVariant {
    /// Pick by the paper's crossover: small iff `Δ̂ ≤ F·ln² n`.
    #[default]
    Auto,
    /// Force the large-`Δ̂` single-channel variant (§5.2.1, Lemma 12).
    Large,
    /// Force the small-`Δ̂` multi-channel variant (Appendix A, Lemma 13).
    Small,
}

/// How the dominating-set substrate is obtained (`DESIGN.md` #1, A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubstrateMode {
    /// The distributed CAND/JOIN/DOM protocol (default).
    #[default]
    Distributed,
    /// Centrally computed greedy (ablation: factors the substrate out).
    Oracle,
}

/// Configuration of structure construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureConfig {
    /// Algorithm constants and knowledge.
    pub algo: AlgoConfig,
    /// Master seed.
    pub seed: u64,
    /// Substrate mode.
    pub substrate: SubstrateMode,
    /// Dominating/cluster radius. The paper's `r_c` is extremely small once
    /// its constants are instantiated; the practical default is
    /// `ε·R_T/4` (the second term of the paper's own `r_c` definition),
    /// with cluster separation still enforced at `R_{ε/2}` by the coloring.
    pub cluster_radius: f64,
    /// Cap on cluster-coloring phases.
    pub max_phi: u16,
    /// Known upper bound `Δ̂` on cluster sizes for the CSA (defaults to
    /// `n̂`).
    pub delta_hat: Option<u64>,
    /// CSA variant selection.
    pub csa_variant: CsaVariant,
}

impl StructureConfig {
    /// Sensible defaults for `algo` and `seed`.
    pub fn new(algo: AlgoConfig, seed: u64) -> Self {
        let p = algo.node_params();
        StructureConfig {
            algo,
            seed,
            substrate: SubstrateMode::Distributed,
            cluster_radius: p.eps * p.transmission_range() / 4.0,
            max_phi: 64,
            delta_hat: None,
            csa_variant: CsaVariant::Auto,
        }
    }

    pub(crate) fn delta_hat(&self) -> u64 {
        self.delta_hat
            .unwrap_or(self.algo.know.n_bound as u64)
            .max(2)
    }
}

/// Per-phase slot accounting of the construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildReport {
    /// Dominating-set slots (0 for the oracle substrate).
    pub dominate_slots: u64,
    /// Dominator-coloring slots.
    pub coloring_slots: u64,
    /// Announce/attach slots.
    pub announce_slots: u64,
    /// Cluster-size-approximation slots.
    pub csa_slots: u64,
    /// Reporter-election slots.
    pub election_slots: u64,
    /// Number of clusters.
    pub clusters: usize,
    /// Measured TDMA color count `φ`.
    pub phi: u16,
    /// Nodes left without a cluster (coverage holes; should be 0).
    pub unclustered: usize,
    /// Dominating-set timeout self-joins (quality metric).
    pub timeout_joins: usize,
    /// Cluster members whose CSA estimate had to be back-filled from their
    /// dominator (missed notify receptions; quality metric).
    pub estimate_fills: usize,
    /// Cluster channels that elected a reporter / total cluster channels.
    pub channels_filled: usize,
    /// Total cluster channels across clusters.
    pub channels_total: usize,
}

impl BuildReport {
    /// Total construction slots.
    pub fn total_slots(&self) -> u64 {
        self.dominate_slots
            + self.coloring_slots
            + self.announce_slots
            + self.csa_slots
            + self.election_slots
    }
}

/// The constructed aggregation structure.
#[derive(Debug, Clone)]
pub struct AggregationStructure {
    /// Per-node knowledge records.
    pub records: Vec<NodeRecord>,
    /// TDMA color count.
    pub phi: u16,
    /// Construction accounting.
    pub report: BuildReport,
    /// Cluster → members index (`members[d]` lists the members of the
    /// cluster headed by node `d`, dominator included). Maintained by
    /// [`AggregationStructure::rebuild_members_index`].
    members: Vec<Vec<NodeId>>,
}

impl AggregationStructure {
    /// Assembles a structure from finished records, building the members
    /// index.
    pub fn new(records: Vec<NodeRecord>, phi: u16, report: BuildReport) -> Self {
        let mut s = AggregationStructure {
            records,
            phi,
            report,
            members: Vec::new(),
        };
        s.rebuild_members_index();
        s
    }

    /// Ids of all dominators.
    pub fn dominators(&self) -> Vec<NodeId> {
        self.records
            .iter()
            .filter(|r| r.role.is_dominator())
            .map(|r| r.id)
            .collect()
    }

    /// Members (including the dominator) of `cluster` — `O(members)` via
    /// the precomputed index (previously a full-record scan per call).
    ///
    /// The index reflects `records` as of the last
    /// [`AggregationStructure::rebuild_members_index`]; mutating `records`
    /// directly leaves it stale until the next rebuild. Between a
    /// mutation and a rebuild the index is a *superset* under the
    /// maintenance layer's detach-then-rebuild discipline (entries are
    /// never missing, only possibly ex-members), which is why
    /// `StructureMaintainer` re-validates each entry's `cluster` field
    /// instead of trusting the list — do the same, or rebuild first, if
    /// you mutate `records` yourself.
    pub fn members_of(&self, cluster: NodeId) -> &[NodeId] {
        self.members
            .get(cluster.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Recomputes the cluster → members index from `records`. Call after
    /// mutating `records` directly; [`build_structure`] and the
    /// [`crate::maintain`] repair operations keep it fresh themselves.
    pub fn rebuild_members_index(&mut self) {
        let n = self.records.len();
        self.members.iter_mut().for_each(Vec::clear);
        self.members.resize_with(n, Vec::new);
        for r in &self.records {
            if let Some(c) = r.cluster {
                self.members[c.index()].push(r.id);
            }
        }
    }
}

/// Builds the aggregation structure (paper §5; Theorem 10) over the whole
/// network. Equivalent to [`build_structure_masked`] with every node live.
pub fn build_structure(env: &NetworkEnv, cfg: &StructureConfig) -> AggregationStructure {
    build_structure_masked(env, cfg, None)
}

/// Builds the aggregation structure over the live subset of the network:
/// nodes with `alive[i] = false` (crashed, or not yet joined) are absent
/// from every phase engine and end up outside the structure (blank
/// records). The construction is the stage pipeline of [`crate::stages`] —
/// dominating set, coloring + announce/attach, cluster-size approximation,
/// reporter election — which the [`crate::maintain`] layer re-invokes
/// piecewise for incremental repair.
pub fn build_structure_masked(
    env: &NetworkEnv,
    cfg: &StructureConfig,
    alive: Option<&[bool]>,
) -> AggregationStructure {
    build_structure_observed(env, cfg, alive, None)
}

/// [`build_structure_masked`] with an observability recorder: each stage
/// records a wall-clock span (`build_dominate` … `build_election` under a
/// `build` root) and a typed event carrying its slot cost, attributed to
/// the stage's slot offset within the build. Recording never influences
/// the construction — the returned structure is identical with `obs =
/// None`. Requires the `obs` cargo feature for real data; without it the
/// recorder is a no-op.
pub fn build_structure_observed(
    env: &NetworkEnv,
    cfg: &StructureConfig,
    alive: Option<&[bool]>,
    mut obs: Option<&mut mca_obs::Recorder>,
) -> AggregationStructure {
    use mca_obs::{EventKind, SpanKind, Stopwatch};
    let n = env.len();
    assert!(n > 0, "cannot build a structure over an empty network");
    if let Some(a) = alive {
        assert_eq!(a.len(), n, "one liveness flag per node required");
    }
    let timing = obs.is_some();
    let sw_build = Stopwatch::start_if(timing);
    let mut report = BuildReport::default();
    let mut records: Vec<NodeRecord> = (0..n).map(|i| NodeRecord::new(NodeId(i as u32))).collect();
    let live = |i: usize| alive.is_none_or(|a| a[i]);

    // --- Phase 1: dominating set / clustering. ---
    let sw = Stopwatch::start_if(timing);
    let active: Vec<bool> = (0..n).map(live).collect();
    let dominating = stages::dominating_stage(env, cfg, &active, cfg.seed);
    report.dominate_slots = dominating.slots;
    report.timeout_joins = dominating.timeout_joins;
    if let Some(rec) = obs.as_deref_mut() {
        rec.span(SpanKind::BuildDominate, 0, 0, 0, sw.elapsed_ns());
        rec.event(
            EventKind::StageDominate,
            0,
            0,
            dominating.slots,
            dominating.timeout_joins as u64,
        );
    }
    let mut offset = dominating.slots;

    // --- Phase 2+3: dominator coloring + announce/attach. ---
    let sw = Stopwatch::start_if(timing);
    let clusters: ClusterOutcome = stages::cluster_stage(env, cfg, &dominating, cfg.seed, alive);
    report.coloring_slots = clusters.coloring_slots;
    report.announce_slots = clusters.announce_slots;
    report.phi = clusters.phi;
    // Coverage holes are only meaningful among live nodes.
    report.unclustered = (0..n)
        .filter(|&i| live(i) && clusters.membership[i].is_none())
        .count();
    for (i, rec) in records.iter_mut().enumerate() {
        // None = coverage hole: stays out of the structure (counted).
        if let Some((dom, color, dist)) = clusters.membership[i] {
            if dom == NodeId(i as u32) {
                rec.make_dominator();
            } else {
                rec.make_member(dom, dist);
            }
            rec.cluster_color = Some(color);
        }
    }
    report.clusters = records.iter().filter(|r| r.role.is_dominator()).count();
    if let Some(rec) = obs.as_deref_mut() {
        rec.span(SpanKind::BuildCluster, offset, 0, 0, sw.elapsed_ns());
        rec.event(
            EventKind::StageColor,
            offset,
            0,
            clusters.coloring_slots,
            clusters.phi as u64,
        );
        rec.event(
            EventKind::StageAnnounce,
            offset + clusters.coloring_slots,
            0,
            clusters.announce_slots,
            report.unclustered as u64,
        );
    }
    offset += clusters.coloring_slots + clusters.announce_slots;

    // --- Phase 4: cluster-size approximation (Lemma 14 dispatch). ---
    let sw = Stopwatch::start_if(timing);
    let csa = stages::csa_stage(env, cfg, &mut records, clusters.phi, cfg.seed, alive);
    report.csa_slots = csa.slots;
    report.estimate_fills = csa.estimate_fills;
    if let Some(rec) = obs.as_deref_mut() {
        rec.span(SpanKind::BuildCsa, offset, 0, 0, sw.elapsed_ns());
        rec.event(
            EventKind::StageCsa,
            offset,
            0,
            csa.slots,
            csa.estimate_fills as u64,
        );
    }
    offset += csa.slots;

    // --- Phase 5: reporter election + implicit tree (Lemmas 15–16). ---
    let sw = Stopwatch::start_if(timing);
    report.election_slots =
        stages::election_stage(env, cfg, &mut records, clusters.phi, None, cfg.seed, alive);
    let (filled, total) = stages::channel_accounting(&records);
    report.channels_filled = filled;
    report.channels_total = total;
    if let Some(rec) = obs {
        rec.span(SpanKind::BuildElection, offset, 0, 0, sw.elapsed_ns());
        rec.event(
            EventKind::StageElection,
            offset,
            0,
            report.election_slots,
            filled as u64,
        );
        rec.span(SpanKind::Build, 0, 0, 0, sw_build.elapsed_ns());
    }

    AggregationStructure::new(records, clusters.phi, report)
}

/// How the inter-cluster procedure runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterclusterMode {
    /// Flood-and-combine (`O(D + log n)`), idempotent aggregates only.
    Flood,
    /// Exact tree upcast (duplicate-sensitive aggregates welcome).
    Exact {
        /// The node whose dominator roots the tree (the data sink).
        sink: NodeId,
    },
}

/// Outcome of a full aggregation run.
#[derive(Debug, Clone)]
pub struct AggregateOutcome<V> {
    /// Final value at each node (`None` if the node never learned it).
    pub values: Vec<Option<V>>,
    /// Slots of the follower→reporter procedure.
    pub follower_slots: u64,
    /// Slots of the reporter-tree convergecast.
    pub tree_slots: u64,
    /// Slots of the inter-cluster procedure.
    pub inter_slots: u64,
    /// Followers whose value never reached a reporter (lost inputs).
    pub undelivered: usize,
    /// Reporter-tree values that failed to reach the dominator.
    pub tree_losses: usize,
    /// Peak of `P_c(v)/f_v` observed (Lemma 19 trace; ≤ λ wanted).
    pub contention_peak: f64,
}

impl<V> AggregateOutcome<V> {
    /// Total slots across the three procedures.
    pub fn total_slots(&self) -> u64 {
        self.follower_slots + self.tree_slots + self.inter_slots
    }
}

/// Runs data aggregation (paper §6, Theorem 22) over a built structure.
///
/// `inputs[i]` is node `i`'s initial value; `d_hat` bounds the backbone hop
/// diameter (knowledge the paper's round bounds presuppose — pass the
/// communication-graph diameter plus slack).
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn aggregate<A: Aggregate>(
    env: &NetworkEnv,
    structure: &AggregationStructure,
    algo: &AlgoConfig,
    agg: A,
    inputs: &[A::Value],
    mode: InterclusterMode,
    d_hat: u32,
    seed: u64,
) -> AggregateOutcome<A::Value> {
    let n = env.len();
    assert_eq!(inputs.len(), n, "one input per node required");
    let phi = structure.phi.max(1);
    let lambda = algo.consts.lambda;

    // --- Procedure 1: followers → reporters. ---
    let fcfg = FollowerCfg {
        rounds_per_phase: algo.agg_rounds_per_phase(),
        backoff_threshold: algo.agg_backoff_threshold(),
        lambda,
        tdma: Tdma::new(phi, follower::SLOTS_PER_ROUND),
        max_phases: 24
            + 2 * (algo.know.log2_n() as u64)
            + algo.know.n_bound as u64
                / ((algo.channels as u64) * algo.agg_rounds_per_phase().max(1)),
    };
    let protocols: Vec<FollowerAgg<A>> = (0..n)
        .map(|i| {
            let r = &structure.records[i];
            let color = r.cluster_color.unwrap_or(0);
            match (r.role, r.cluster) {
                (Role::Dominator, Some(_)) => FollowerAgg::dominator(
                    agg.clone(),
                    fcfg,
                    NodeId(i as u32),
                    color,
                    r.serves_channel0,
                ),
                (Role::Reporter { heap_pos }, Some(c)) => FollowerAgg::reporter(
                    agg.clone(),
                    fcfg,
                    NodeId(i as u32),
                    c,
                    color,
                    Channel(heap_pos - 1),
                    inputs[i].clone(),
                ),
                (Role::Follower, Some(c)) => {
                    let fv = r.cluster_channels.unwrap_or(1);
                    let est = r.cluster_size_est.unwrap_or(1).max(1);
                    let pu = (lambda * fv as f64 / est as f64).clamp(1e-6, lambda / 2.0);
                    FollowerAgg::follower(
                        agg.clone(),
                        fcfg,
                        NodeId(i as u32),
                        c,
                        color,
                        fv,
                        inputs[i].clone(),
                        pu,
                    )
                }
                _ => FollowerAgg::passive(agg.clone(), fcfg, NodeId(i as u32)),
            }
        })
        .collect();
    let mut engine = Engine::new(
        env.params,
        env.positions.clone(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xF0110),
    );
    let cap = fcfg.tdma.slots_for_rounds(fcfg.total_rounds());
    // Sample the Lemma-19 contention invariant once per super-round while
    // running to (slot-accurate) completion of all deliveries.
    let sample_every = fcfg.tdma.slots_per_super_round().max(1);
    let mut contention_peak: f64 = 0.0;
    let mut since_sample = 0u64;
    let records = &structure.records;
    engine.run_until(cap, |ps: &[FollowerAgg<A>]| {
        since_sample += 1;
        if since_sample >= sample_every {
            since_sample = 0;
            let mut by_cluster: std::collections::HashMap<NodeId, f64> =
                std::collections::HashMap::new();
            for p in ps {
                if let (Some(pu), Some(c)) = (p.current_pu(), p.cluster()) {
                    *by_cluster.entry(c).or_default() += pu;
                }
            }
            for (c, total) in by_cluster {
                let fv = records[c.index()].cluster_channels.unwrap_or(1).max(1) as f64;
                contention_peak = contention_peak.max(total / fv);
            }
        }
        ps.iter().all(|p| p.is_delivered())
    });
    let follower_slots = engine.slot();
    let fprotocols = engine.into_protocols();
    let undelivered = fprotocols.iter().filter(|p| !p.is_delivered()).count();

    // --- Procedure 2: reporter-tree convergecast. ---
    let tcfg_of = |fv: u16| TreeCfg {
        fv: fv.max(1),
        tdma: Tdma::new(phi, treecast::SLOTS_PER_ROUND),
    };
    let max_fv = structure
        .records
        .iter()
        .filter_map(|r| r.cluster_channels)
        .max()
        .unwrap_or(1);
    let protocols: Vec<TreeCast<A>> = (0..n)
        .map(|i| {
            let r = &structure.records[i];
            let color = r.cluster_color.unwrap_or(0);
            match (r.role, r.cluster) {
                (Role::Dominator, Some(c)) => {
                    // Own input, plus anything collected while serving as
                    // the channel-0 reporter.
                    let mut seed = inputs[i].clone();
                    if let Some((v, _)) = fprotocols[i].reporter_state() {
                        seed = agg.combine(&seed, v);
                    }
                    TreeCast::dominator(
                        agg.clone(),
                        tcfg_of(r.cluster_channels.unwrap_or(1)),
                        c,
                        color,
                        seed,
                    )
                }
                (Role::Reporter { heap_pos }, Some(c)) => {
                    let collected = fprotocols[i]
                        .reporter_state()
                        .map(|(v, _)| v.clone())
                        .unwrap_or_else(|| inputs[i].clone());
                    TreeCast::reporter(
                        agg.clone(),
                        tcfg_of(r.cluster_channels.unwrap_or(1)),
                        c,
                        color,
                        heap_pos,
                        collected,
                    )
                }
                _ => TreeCast::passive(
                    agg.clone(),
                    tcfg_of(1),
                    r.cluster.unwrap_or(NodeId(i as u32)),
                ),
            }
        })
        .collect();
    let mut engine = Engine::new(
        env.params,
        env.positions.clone(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xF0111),
    );
    let tree_cap = tcfg_of(max_fv)
        .tdma
        .slots_for_rounds(tcfg_of(max_fv).rounds())
        + treecast::SLOTS_PER_ROUND as u64;
    engine.run_until_done(tree_cap);
    let tree_slots = engine.slot();
    let tprotocols = engine.into_protocols();
    let tree_losses = (0..n)
        .filter(|&i| {
            matches!(structure.records[i].role, Role::Reporter { .. })
                && !tprotocols[i].is_delivered()
                && tprotocols[i].position() != Some(0)
        })
        .count();
    // Cluster aggregates now sit at the dominators.
    let cluster_value: Vec<Option<A::Value>> = (0..n)
        .map(|i| {
            structure.records[i]
                .role
                .is_dominator()
                .then(|| tprotocols[i].value().clone())
        })
        .collect();

    // --- Procedure 3: inter-cluster dissemination. ---
    let (values, inter_slots): (Vec<Option<A::Value>>, u64) = match mode {
        InterclusterMode::Flood => {
            let fl = FloodCfg {
                q: algo.consts.flood_prob,
                flood_rounds: (algo.consts.c_flood * (d_hat as f64 + algo.ln_n())).ceil() as u64,
                tail_rounds: algo.announce_rounds(),
                tdma: Tdma::new(phi, 1),
                hop_channels: 0,
            };
            let protocols: Vec<FloodCombine<A>> = (0..n)
                .map(|i| {
                    let color = structure.records[i].cluster_color.unwrap_or(0);
                    match &cluster_value[i] {
                        Some(v) => FloodCombine::dominator(agg.clone(), fl, color, v.clone()),
                        None => FloodCombine::listener(agg.clone(), fl, color),
                    }
                })
                .collect();
            let mut engine = Engine::new(
                env.params,
                env.positions.clone(),
                protocols,
                mca_radio::rng::derive_seed(seed, 0xF0112),
            );
            engine.run_until_done(fl.tdma.slots_for_rounds(fl.total_rounds()) + 1);
            let slots = engine.slot();
            let out = engine.into_protocols();
            (
                out.iter()
                    .map(|p| p.heard_any().then(|| p.value().clone()))
                    .collect(),
                slots,
            )
        }
        InterclusterMode::Exact { sink } => {
            let root_cluster = structure.records[sink.index()]
                .cluster
                .unwrap_or(NodeId(sink.0));
            let ex = ExactCfg {
                q: algo.consts.flood_prob,
                level_rounds: (algo.consts.c_flood * (d_hat as f64 + algo.ln_n())).ceil() as u64,
                window: algo.announce_rounds(),
                max_levels: d_hat + 1,
                result_rounds: (algo.consts.c_flood * (d_hat as f64 + algo.ln_n())).ceil() as u64,
                tdma: Tdma::new(phi, 1),
            };
            let protocols: Vec<TreeExact<A>> = (0..n)
                .map(|i| {
                    let color = structure.records[i].cluster_color.unwrap_or(0);
                    match &cluster_value[i] {
                        Some(v) => TreeExact::dominator(
                            agg.clone(),
                            ex,
                            NodeId(i as u32),
                            color,
                            v.clone(),
                            NodeId(i as u32) == root_cluster,
                        ),
                        None => TreeExact::listener(agg.clone(), ex, NodeId(i as u32), color),
                    }
                })
                .collect();
            let mut engine = Engine::new(
                env.params,
                env.positions.clone(),
                protocols,
                mca_radio::rng::derive_seed(seed, 0xF0113),
            );
            let cap = ex.tdma.slots_for_rounds(ex.total_rounds()) + 1;
            engine.run_until(cap, |ps: &[TreeExact<A>]| {
                ps.iter().all(|p| p.result().is_some())
            });
            let slots = engine.slot();
            let out = engine.into_protocols();
            (out.iter().map(|p| p.result().cloned()).collect(), slots)
        }
    };

    AggregateOutcome {
        values,
        follower_slots,
        tree_slots,
        inter_slots,
        undelivered,
        tree_losses,
        contention_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggfun::{MaxAgg, SumAgg};
    use crate::validate::audit_structure;
    use rand::{rngs::SmallRng, SeedableRng};

    fn setup(
        n: usize,
        side: f64,
        channels: u16,
        seed: u64,
    ) -> (NetworkEnv, AggregationStructure, StructureConfig) {
        let params = SinrParams::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let env = NetworkEnv::new(params, &deploy);
        let algo = AlgoConfig::practical(channels, &params, n);
        let mut cfg = StructureConfig::new(algo, seed);
        cfg.substrate = SubstrateMode::Oracle;
        let s = build_structure(&env, &cfg);
        (env, s, cfg)
    }

    #[test]
    fn flood_aggregation_finds_global_max() {
        let (env, s, cfg) = setup(200, 14.0, 8, 21);
        audit_structure(&env, &s, cfg.cluster_radius).assert_sound();
        let inputs: Vec<i64> = (0..200).map(|i| (i as i64 * 37) % 1000).collect();
        let expect = *inputs.iter().max().unwrap();
        let d_hat = env.comm_graph().diameter_approx() + 2;
        let out = aggregate(
            &env,
            &s,
            &cfg.algo,
            MaxAgg,
            &inputs,
            InterclusterMode::Flood,
            d_hat,
            99,
        );
        assert_eq!(out.undelivered, 0, "followers failed to deliver");
        assert_eq!(out.tree_losses, 0, "tree convergecast lost values");
        let holders = out
            .values
            .iter()
            .filter(|v| v.as_ref() == Some(&expect))
            .count();
        assert!(
            holders * 10 >= 200 * 9,
            "only {holders}/200 nodes learned the max"
        );
        // Definition 17 is stated with the true |C_v|; p_u uses the CSA
        // estimate, so the peak can exceed λ by the estimate's constant
        // factor (documented; E9 reports the measured peak).
        assert!(
            out.contention_peak <= 3.0 * cfg.algo.consts.lambda,
            "contention peak {} too high",
            out.contention_peak
        );
    }

    #[test]
    fn exact_aggregation_sums_all_inputs() {
        let (env, s, cfg) = setup(150, 12.0, 4, 23);
        let inputs: Vec<i64> = vec![1; 150];
        let d_hat = env.comm_graph().diameter_approx() + 2;
        let out = aggregate(
            &env,
            &s,
            &cfg.algo,
            SumAgg,
            &inputs,
            InterclusterMode::Exact { sink: NodeId(0) },
            d_hat,
            77,
        );
        assert_eq!(out.undelivered, 0);
        assert_eq!(out.tree_losses, 0);
        // Every node should learn the exact count of nodes.
        for (i, v) in out.values.iter().enumerate() {
            assert_eq!(*v, Some(150), "node {i} got {v:?}");
        }
    }

    #[test]
    fn more_channels_speed_up_aggregation() {
        // Dense deployment: clusters well above c₁·ln n members, so the
        // Δ/F term dominates and f_v > 1 for F = 8.
        let params = SinrParams::default();
        let mut rng = SmallRng::seed_from_u64(31);
        let deploy = Deployment::uniform(300, 5.0, &mut rng);
        let env = NetworkEnv::new(params, &deploy);
        let run = |channels: u16| {
            let algo = AlgoConfig::practical(channels, &params, 300);
            let mut cfg = StructureConfig::new(algo, 31);
            cfg.substrate = SubstrateMode::Oracle;
            let s = build_structure(&env, &cfg);
            let inputs: Vec<i64> = (0..300).map(|i| i as i64).collect();
            let d_hat = env.comm_graph().diameter_approx() + 2;
            let out = aggregate(
                &env,
                &s,
                &algo,
                MaxAgg,
                &inputs,
                InterclusterMode::Flood,
                d_hat,
                55,
            );
            out.follower_slots
        };
        let f1 = run(1);
        let f8 = run(8);
        assert!(
            f8 * 3 < f1 * 2,
            "8 channels ({f8} slots) should be at least 1.5x faster than 1 ({f1} slots)"
        );
    }
}
