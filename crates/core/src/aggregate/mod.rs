//! The data aggregation algorithm (paper §6).
//!
//! Three procedures, run sequentially (DESIGN.md deviation #3):
//!
//! 1. [`follower`] — collect follower data at the per-channel reporters
//!    with backoff-controlled random access (Lemmas 18–21);
//! 2. [`treecast`] — deterministic convergecast up the reporter tree to the
//!    dominator (Lemma 16);
//! 3. [`intercluster`] — disseminate among dominators: flood-and-combine in
//!    `O(D + log n)` for idempotent aggregates, exact tree upcast for
//!    duplicate-sensitive ones (Theorem 22; DESIGN.md deviation #2).
//!
//! The end-to-end driver lives in [`crate::structure`].

pub mod follower;
pub mod intercluster;
pub mod treecast;
