//! Inter-cluster aggregation on the dominator backbone (paper §6, third
//! procedure; `DESIGN.md` substitution #2).
//!
//! Two modes:
//!
//! * [`FloodCombine`] — the paper's sketch ("flooding with continuous
//!   constant-probability transmissions"): every dominator repeatedly
//!   broadcasts its current partial aggregate with constant probability and
//!   combines everything it hears. For **idempotent** aggregates (max, min,
//!   or, FM sketches) the global value propagates at constant speed per hop,
//!   giving `O(D + log n)` rounds; a dissemination tail delivers the result
//!   to every node (dominatees listen throughout).
//! * [`TreeExact`] — exact aggregation for duplicate-sensitive functions
//!   (sum, count, average): a beacon flood from the sink's dominator builds
//!   BFS levels and parent pointers, level-windows upcast child values with
//!   per-child deduplication, and a result flood broadcasts the total —
//!   `O(D·log n + D + log n)` as documented (the paper's `O(D + log n)`
//!   exact variant relies on \[2\]'s precomputation with power control).
//!
//! Both run on the first channel under the cluster-color TDMA.

use crate::aggfun::Aggregate;
use crate::schedule::Tdma;
use mca_radio::{Action, Channel, NodeId, Observation, Protocol};
use rand::rngs::SmallRng;
use rand::Rng;

// ---------------------------------------------------------------------------
// Flood-and-combine (idempotent aggregates).
// ---------------------------------------------------------------------------

/// Message of the flood: a partial aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct FloodMsg<V>(pub V);

/// Configuration of the flood.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodCfg {
    /// Per-round broadcast probability `q`.
    pub q: f64,
    /// Flood rounds (`c_flood·(D̂ + ln n)`), after which dominators hold the
    /// global value w.h.p.
    pub flood_rounds: u64,
    /// Additional dissemination rounds for dominatees to pick the value up.
    pub tail_rounds: u64,
    /// TDMA schedule (1 slot per round).
    pub tdma: Tdma,
    /// Channel-hopping width: `0` or `1` pins the flood to the first
    /// channel (the paper's sketch); `h > 1` hops over channels
    /// `0..h` on a shared slot-keyed pseudo-random sequence. All nodes
    /// derive the same channel from the synchronized slot counter, so
    /// connectivity is unaffected — but an adversary jamming any *fixed*
    /// subset of `t < h` channels now hits only `t/h` of the slots
    /// (the jamming-resilience extension the paper cites as \[9\]).
    pub hop_channels: u16,
}

impl FloodCfg {
    /// Total rounds.
    pub fn total_rounds(&self) -> u64 {
        self.flood_rounds + self.tail_rounds
    }

    /// The flood channel for `slot` (shared hop sequence).
    pub fn channel_for(&self, slot: u64) -> Channel {
        if self.hop_channels <= 1 {
            return Channel::FIRST;
        }
        let h = mca_radio::rng::mix64(slot ^ 0x480F_F00D);
        Channel((h % self.hop_channels as u64) as u16)
    }
}

/// Flood-and-combine participant.
#[derive(Debug, Clone)]
pub struct FloodCombine<A: Aggregate> {
    agg: A,
    cfg: FloodCfg,
    color: u16,
    /// Dominators broadcast; everyone combines.
    is_dominator: bool,
    value: A::Value,
    heard_any: bool,
    finished: bool,
}

impl<A: Aggregate> FloodCombine<A> {
    /// A dominator holding its cluster aggregate.
    pub fn dominator(agg: A, cfg: FloodCfg, color: u16, value: A::Value) -> Self {
        assert!(
            agg.is_idempotent(),
            "flood-and-combine requires an idempotent aggregate"
        );
        assert!(cfg.q > 0.0 && cfg.q <= 0.5);
        FloodCombine {
            agg,
            cfg,
            color,
            is_dominator: true,
            value,
            heard_any: false,
            finished: false,
        }
    }

    /// A listener (dominatee): combines everything it hears.
    pub fn listener(agg: A, cfg: FloodCfg, color: u16) -> Self {
        let identity = agg.identity();
        FloodCombine {
            agg,
            cfg,
            color,
            is_dominator: false,
            value: identity,
            heard_any: false,
            finished: false,
        }
    }

    /// The node's current combined value.
    pub fn value(&self) -> &A::Value {
        &self.value
    }

    /// Whether the node heard at least one flood message.
    pub fn heard_any(&self) -> bool {
        self.heard_any || self.is_dominator
    }
}

impl<A: Aggregate> Protocol for FloodCombine<A> {
    type Msg = FloodMsg<A::Value>;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<Self::Msg> {
        let channel = self.cfg.channel_for(slot);
        // Listening is passive: the TDMA only gates *transmissions*, so
        // everyone (dominators of other colors included) listens outside
        // their block — otherwise differently-colored dominators could
        // never hear each other.
        let Some(ts) = self.cfg.tdma.my_slot(slot, self.color) else {
            if !self.finished {
                return Action::Listen { channel };
            }
            return Action::Idle;
        };
        if ts.round >= self.cfg.total_rounds() {
            return Action::Idle;
        }
        if self.is_dominator && rng.gen_bool(self.cfg.q) {
            Action::Transmit {
                channel,
                msg: FloodMsg(self.value.clone()),
            }
        } else {
            Action::Listen { channel }
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<Self::Msg>, _rng: &mut SmallRng) {
        if let Observation::Received(r) = &obs {
            self.value = self.agg.combine(&self.value, &r.msg.0);
            self.heard_any = true;
        }
        let d = self.cfg.tdma.decompose(slot);
        if d.round >= self.cfg.total_rounds() {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

// ---------------------------------------------------------------------------
// Exact tree upcast (duplicate-sensitive aggregates).
// ---------------------------------------------------------------------------

/// Messages of the exact mode.
#[derive(Debug, Clone, PartialEq)]
pub enum ExactMsg<V> {
    /// BFS beacon carrying the sender's level.
    Level {
        /// Sender's BFS level (sink's dominator = 0).
        level: u32,
    },
    /// A subtree aggregate for the parent.
    Up {
        /// The parent this is addressed to.
        to: NodeId,
        /// Subtree total.
        value: V,
    },
    /// The finished global aggregate, flooded to everyone.
    Result {
        /// The global value.
        value: V,
    },
}

/// Configuration of the exact mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactCfg {
    /// Per-round transmit probability `q`.
    pub q: f64,
    /// Rounds of the level-building beacon flood (`c_flood·(D̂ + ln n)`).
    pub level_rounds: u64,
    /// Upcast window per level (`c·ln n`).
    pub window: u64,
    /// Schedule bound on the number of levels (`D̂ + 1`).
    pub max_levels: u32,
    /// Rounds of the result flood.
    pub result_rounds: u64,
    /// TDMA schedule (1 slot per round).
    pub tdma: Tdma,
}

impl ExactCfg {
    /// Total rounds of the exact mode.
    pub fn total_rounds(&self) -> u64 {
        self.level_rounds + self.max_levels as u64 * self.window + self.result_rounds
    }

    /// Which stage a round falls into.
    fn stage(&self, round: u64) -> ExactStage {
        if round < self.level_rounds {
            ExactStage::Levels
        } else if round < self.level_rounds + self.max_levels as u64 * self.window {
            let w = (round - self.level_rounds) / self.window;
            // Windows serve levels deepest-first: window w hosts level
            // max_levels - w.
            ExactStage::Upcast {
                level: self.max_levels - w as u32,
            }
        } else {
            ExactStage::Result
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExactStage {
    Levels,
    Upcast { level: u32 },
    Result,
}

/// Exact-mode participant.
#[derive(Debug, Clone)]
pub struct TreeExact<A: Aggregate> {
    agg: A,
    cfg: ExactCfg,
    me: NodeId,
    color: u16,
    is_dominator: bool,
    /// BFS level (0 = the sink's dominator/root).
    level: Option<u32>,
    parent: Option<NodeId>,
    /// Own subtree value (starts as the cluster aggregate).
    value: A::Value,
    /// Children whose subtree values were already combined.
    children_heard: Vec<NodeId>,
    /// The global result once known.
    result: Option<A::Value>,
    finished: bool,
}

impl<A: Aggregate> TreeExact<A> {
    /// A dominator holding its cluster aggregate; `is_root` marks the
    /// sink's dominator.
    pub fn dominator(
        agg: A,
        cfg: ExactCfg,
        me: NodeId,
        color: u16,
        value: A::Value,
        is_root: bool,
    ) -> Self {
        TreeExact {
            agg,
            cfg,
            me,
            color,
            is_dominator: true,
            level: is_root.then_some(0),
            parent: None,
            value,
            children_heard: Vec::new(),
            result: None,
            finished: false,
        }
    }

    /// A dominatee: listens for the result flood.
    pub fn listener(agg: A, cfg: ExactCfg, me: NodeId, color: u16) -> Self {
        let identity = agg.identity();
        TreeExact {
            agg,
            cfg,
            me,
            color,
            is_dominator: false,
            level: None,
            parent: None,
            value: identity,
            children_heard: Vec::new(),
            result: None,
            finished: false,
        }
    }

    /// The global result, once adopted.
    pub fn result(&self) -> Option<&A::Value> {
        self.result.as_ref()
    }

    /// The node's BFS level (diagnostics).
    pub fn level(&self) -> Option<u32> {
        self.level
    }
}

impl<A: Aggregate> Protocol for TreeExact<A> {
    type Msg = ExactMsg<A::Value>;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<Self::Msg> {
        // As above: TDMA gates transmissions only; listening is universal.
        let Some(ts) = self.cfg.tdma.my_slot(slot, self.color) else {
            if !self.finished {
                return Action::Listen {
                    channel: Channel::FIRST,
                };
            }
            return Action::Idle;
        };
        if ts.round >= self.cfg.total_rounds() {
            return Action::Idle;
        }
        let ch = Channel::FIRST;
        if !self.is_dominator {
            return Action::Listen { channel: ch };
        }
        match self.cfg.stage(ts.round) {
            ExactStage::Levels => match self.level {
                Some(level) if rng.gen_bool(self.cfg.q) => Action::Transmit {
                    channel: ch,
                    msg: ExactMsg::Level { level },
                },
                _ => Action::Listen { channel: ch },
            },
            ExactStage::Upcast { level } => {
                if self.level == Some(level) && level > 0 {
                    if let Some(parent) = self.parent {
                        if rng.gen_bool(self.cfg.q) {
                            return Action::Transmit {
                                channel: ch,
                                msg: ExactMsg::Up {
                                    to: parent,
                                    value: self.value.clone(),
                                },
                            };
                        }
                    }
                }
                Action::Listen { channel: ch }
            }
            ExactStage::Result => {
                // The root's subtree total is the global aggregate.
                if self.level == Some(0) && self.result.is_none() {
                    self.result = Some(self.value.clone());
                }
                match &self.result {
                    Some(v) if rng.gen_bool(self.cfg.q) => Action::Transmit {
                        channel: ch,
                        msg: ExactMsg::Result { value: v.clone() },
                    },
                    _ => Action::Listen { channel: ch },
                }
            }
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<Self::Msg>, _rng: &mut SmallRng) {
        if let Observation::Received(r) = &obs {
            match &r.msg {
                ExactMsg::Level { level } => {
                    if self.is_dominator && self.level.is_none() {
                        self.level = Some(level + 1);
                        self.parent = Some(r.from);
                    }
                }
                ExactMsg::Up { to, value } => {
                    if self.is_dominator && *to == self.me && !self.children_heard.contains(&r.from)
                    {
                        self.children_heard.push(r.from);
                        self.value = self.agg.combine(&self.value, value);
                    }
                }
                ExactMsg::Result { value } => {
                    if self.result.is_none() {
                        self.result = Some(value.clone());
                    }
                }
            }
        }
        let d = self.cfg.tdma.decompose(slot);
        if d.round >= self.cfg.total_rounds() {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggfun::{MaxAgg, SumAgg};
    use mca_geom::Point;
    use mca_radio::Engine;
    use mca_sinr::SinrParams;

    /// A line of `k` dominators spaced 5 apart (R_T = 8): multi-hop backbone.
    fn dominator_line(k: usize) -> Vec<Point> {
        (0..k).map(|i| Point::new(5.0 * i as f64, 0.0)).collect()
    }

    #[test]
    fn flood_combines_max_across_hops() {
        let k = 8;
        let cfg = FloodCfg {
            q: 0.25,
            flood_rounds: 200,
            tail_rounds: 40,
            tdma: Tdma::new(1, 1),
            hop_channels: 0,
        };
        let positions = dominator_line(k);
        let protocols: Vec<FloodCombine<MaxAgg>> = (0..k)
            .map(|i| FloodCombine::dominator(MaxAgg, cfg, 0, (i as i64) * 10))
            .collect();
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, 3);
        engine.run_until_done(cfg.total_rounds() + 1);
        for (i, p) in engine.protocols().iter().enumerate() {
            assert_eq!(*p.value(), 70, "dominator {i} missed the max");
        }
    }

    #[test]
    fn flood_reaches_listeners() {
        let cfg = FloodCfg {
            q: 0.25,
            flood_rounds: 120,
            tail_rounds: 40,
            tdma: Tdma::new(1, 1),
            hop_channels: 0,
        };
        let positions = vec![Point::ORIGIN, Point::new(3.0, 0.0), Point::new(6.0, 0.0)];
        let protocols = vec![
            FloodCombine::dominator(MaxAgg, cfg, 0, 99),
            FloodCombine::listener(MaxAgg, cfg, 0),
            FloodCombine::dominator(MaxAgg, cfg, 0, 5),
        ];
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, 5);
        engine.run_until_done(cfg.total_rounds() + 1);
        assert_eq!(*engine.protocols()[1].value(), 99);
        assert!(engine.protocols()[1].heard_any());
    }

    #[test]
    #[should_panic(expected = "idempotent")]
    fn flood_rejects_duplicate_sensitive_aggregates() {
        let cfg = FloodCfg {
            q: 0.25,
            flood_rounds: 10,
            tail_rounds: 0,
            tdma: Tdma::new(1, 1),
            hop_channels: 0,
        };
        let _ = FloodCombine::dominator(SumAgg, cfg, 0, 1);
    }

    fn exact_cfg(max_levels: u32) -> ExactCfg {
        ExactCfg {
            q: 0.25,
            level_rounds: 150,
            window: 60,
            max_levels,
            result_rounds: 150,
            tdma: Tdma::new(1, 1),
        }
    }

    #[test]
    fn exact_sum_on_a_line() {
        let k = 6;
        let cfg = exact_cfg(k as u32 + 1);
        let positions = dominator_line(k);
        let protocols: Vec<TreeExact<SumAgg>> = (0..k)
            .map(|i| TreeExact::dominator(SumAgg, cfg, NodeId(i as u32), 0, 1 << i, i == 0))
            .collect();
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, 7);
        engine.run_until(cfg.total_rounds() + 1, |ps: &[TreeExact<SumAgg>]| {
            ps.iter().all(|p| p.result().is_some())
        });
        let expect: i64 = (0..k).map(|i| 1i64 << i).sum();
        for (i, p) in engine.protocols().iter().enumerate() {
            assert_eq!(p.result(), Some(&expect), "dominator {i} got wrong sum");
        }
    }

    #[test]
    fn exact_levels_follow_hops() {
        let k = 5;
        let cfg = exact_cfg(k as u32 + 1);
        let positions = dominator_line(k);
        let protocols: Vec<TreeExact<SumAgg>> = (0..k)
            .map(|i| TreeExact::dominator(SumAgg, cfg, NodeId(i as u32), 0, 1, i == 0))
            .collect();
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, 9);
        engine.run(cfg.level_rounds + 1);
        for (i, p) in engine.protocols().iter().enumerate() {
            let l = p.level().unwrap_or(u32::MAX);
            assert!(
                l as usize <= i.max(1),
                "dominator {i} has level {l}, expected at most {i}"
            );
        }
    }

    #[test]
    fn exact_result_reaches_listener() {
        let cfg = exact_cfg(3);
        let positions = vec![Point::ORIGIN, Point::new(5.0, 0.0), Point::new(2.0, 1.0)];
        let protocols = vec![
            TreeExact::dominator(SumAgg, cfg, NodeId(0), 0, 10, true),
            TreeExact::dominator(SumAgg, cfg, NodeId(1), 0, 32, false),
            TreeExact::listener(SumAgg, cfg, NodeId(2), 0),
        ];
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, 11);
        engine.run_until(cfg.total_rounds() + 1, |ps: &[TreeExact<SumAgg>]| {
            ps.iter().all(|p| p.result().is_some())
        });
        assert_eq!(engine.protocols()[2].result(), Some(&42));
    }
}
