//! Aggregation from followers to reporters (paper §6, first procedure;
//! Lemmas 18–21).
//!
//! Phases of `Γ + 1` rounds, `Γ = γ₂·ln n`. In each data round an
//! undelivered follower picks one of its cluster's `f_v` channels uniformly
//! at random, transmits its value with probability `p_u` (slot 0) and
//! listens for the reporter's acknowledgement (slot 1); once acked it
//! halts. The reporter on each channel acknowledges and accumulates. The
//! dominator eavesdrops on the first channel; in the notify round (slot 2)
//! it broadcasts `BACKOFF` iff it heard at least `Ω = ω₂·ln n` messages in
//! the phase — followers double `p_u` exactly when no backoff arrives,
//! which maintains the Bounded Contention invariant
//! (`P_c(v) ≤ λ·f_v`, Definition 17 / Lemma 19).

use crate::aggfun::Aggregate;
use crate::schedule::Tdma;
use mca_radio::{Action, Channel, NodeId, Observation, Protocol};
use rand::rngs::SmallRng;
use rand::Rng;

/// Messages of the follower-aggregation procedure.
#[derive(Debug, Clone, PartialEq)]
pub enum FollowerMsg<V> {
    /// A follower's payload.
    Data {
        /// The follower's cluster.
        cluster: NodeId,
        /// Partial aggregate (a single input at this stage).
        value: V,
    },
    /// Reporter acknowledgement.
    Ack {
        /// The follower being acknowledged.
        to: NodeId,
        /// Cluster scope.
        cluster: NodeId,
    },
    /// Dominator backoff signal (phase had enough traffic).
    Backoff {
        /// Cluster scope.
        cluster: NodeId,
    },
}

/// Slots per round: data, ack, control.
pub const SLOTS_PER_ROUND: u16 = 3;

/// Shared configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FollowerCfg {
    /// Data rounds per phase (`Γ = γ₂·ln n`).
    pub rounds_per_phase: u64,
    /// Backoff threshold (`Ω = ω₂·ln n` receptions per phase).
    pub backoff_threshold: u64,
    /// Contention target `λ`.
    pub lambda: f64,
    /// TDMA schedule (`slots_per_round` = 3).
    pub tdma: Tdma,
    /// Hard cap on phases (schedule length).
    pub max_phases: u64,
}

impl FollowerCfg {
    fn rounds_per_phase_total(&self) -> u64 {
        self.rounds_per_phase + 1
    }

    /// Total protocol rounds in the schedule.
    pub fn total_rounds(&self) -> u64 {
        self.max_phases * self.rounds_per_phase_total()
    }
}

/// Role-specific state.
#[derive(Debug, Clone)]
enum AggRole<A: Aggregate> {
    Follower {
        cluster: NodeId,
        fv: u16,
        value: A::Value,
        pu: f64,
        /// Channel used this round (slot-0 transmission), for the slot-1
        /// ack listen.
        tx_channel: Option<Channel>,
        /// Reporter that acknowledged us.
        delivered: Option<NodeId>,
        /// Backoff heard in the current notify round.
        backoff_heard: bool,
    },
    Reporter {
        cluster: NodeId,
        channel: Channel,
        collected: A::Value,
        follower_ids: Vec<NodeId>,
        /// Follower to acknowledge in slot 1.
        pending_ack: Option<NodeId>,
    },
    Dominator {
        cluster: NodeId,
        count_phase: u64,
        total_heard: u64,
        /// Serve as channel-0 reporter (set when the dominator observed no
        /// reporter election on the first channel).
        collect: bool,
        collected: A::Value,
        follower_ids: Vec<NodeId>,
        pending_ack: Option<NodeId>,
    },
    Passive,
}

/// Per-node protocol for the follower→reporter procedure.
#[derive(Debug, Clone)]
pub struct FollowerAgg<A: Aggregate> {
    agg: A,
    cfg: FollowerCfg,
    me: NodeId,
    color: u16,
    role: AggRole<A>,
    finished: bool,
}

impl<A: Aggregate> FollowerAgg<A> {
    /// A follower holding `value`, in a cluster with `fv` channels and
    /// initial probability `pu` (`λ·f_v/|Ĉ_v|`).
    #[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
    pub fn follower(
        agg: A,
        cfg: FollowerCfg,
        me: NodeId,
        cluster: NodeId,
        color: u16,
        fv: u16,
        value: A::Value,
        pu: f64,
    ) -> Self {
        assert!(fv >= 1 && pu > 0.0 && pu <= 1.0);
        FollowerAgg {
            agg,
            cfg,
            me,
            color,
            role: AggRole::Follower {
                cluster,
                fv,
                value,
                pu,
                tx_channel: None,
                delivered: None,
                backoff_heard: false,
            },
            finished: false,
        }
    }

    /// The reporter of `channel`, seeded with its own input `value`.
    pub fn reporter(
        agg: A,
        cfg: FollowerCfg,
        me: NodeId,
        cluster: NodeId,
        color: u16,
        channel: Channel,
        value: A::Value,
    ) -> Self {
        FollowerAgg {
            agg,
            cfg,
            me,
            color,
            role: AggRole::Reporter {
                cluster,
                channel,
                collected: value,
                follower_ids: Vec::new(),
                pending_ack: None,
            },
            finished: false,
        }
    }

    /// The cluster's dominator (contention monitor), seeded with its own
    /// input. With `collect`, it additionally serves as the channel-0
    /// reporter (rescue for clusters whose elections all failed).
    pub fn dominator(agg: A, cfg: FollowerCfg, me: NodeId, color: u16, collect: bool) -> Self {
        let cluster = me;
        let identity = agg.identity();
        FollowerAgg {
            agg,
            cfg,
            me,
            color,
            role: AggRole::Dominator {
                cluster,
                count_phase: 0,
                total_heard: 0,
                collect,
                collected: identity,
                follower_ids: Vec::new(),
                pending_ack: None,
            },
            finished: false,
        }
    }

    /// A node outside the procedure.
    pub fn passive(agg: A, cfg: FollowerCfg, me: NodeId) -> Self {
        FollowerAgg {
            agg,
            cfg,
            me,
            color: 0,
            role: AggRole::Passive,
            finished: true,
        }
    }

    /// Whether a follower has delivered its value (always true for other
    /// roles).
    pub fn is_delivered(&self) -> bool {
        match &self.role {
            AggRole::Follower { delivered, .. } => delivered.is_some(),
            _ => true,
        }
    }

    /// The reporter a follower delivered to.
    pub fn delivered_to(&self) -> Option<NodeId> {
        match &self.role {
            AggRole::Follower { delivered, .. } => *delivered,
            _ => None,
        }
    }

    /// A reporter's accumulated value and the followers it heard
    /// (also available for dominators serving as channel-0 reporters).
    pub fn reporter_state(&self) -> Option<(&A::Value, &[NodeId])> {
        match &self.role {
            AggRole::Reporter {
                collected,
                follower_ids,
                ..
            } => Some((collected, follower_ids)),
            AggRole::Dominator {
                collect: true,
                collected,
                follower_ids,
                ..
            } => Some((collected, follower_ids)),
            _ => None,
        }
    }

    /// A follower's current transmission probability (contention trace).
    pub fn current_pu(&self) -> Option<f64> {
        match &self.role {
            AggRole::Follower { pu, delivered, .. } if delivered.is_none() => Some(*pu),
            _ => None,
        }
    }

    /// The cluster this node participates in.
    pub fn cluster(&self) -> Option<NodeId> {
        match &self.role {
            AggRole::Follower { cluster, .. }
            | AggRole::Reporter { cluster, .. }
            | AggRole::Dominator { cluster, .. } => Some(*cluster),
            AggRole::Passive => None,
        }
    }

    fn phase_pos(&self, round: u64) -> (u64, u64) {
        let span = self.cfg.rounds_per_phase_total();
        (round / span, round % span)
    }
}

impl<A: Aggregate> Protocol for FollowerAgg<A> {
    type Msg = FollowerMsg<A::Value>;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<Self::Msg> {
        let Some(ts) = self.cfg.tdma.my_slot(slot, self.color) else {
            return Action::Idle;
        };
        if ts.round >= self.cfg.total_rounds() {
            return Action::Idle;
        }
        let (_, rip) = self.phase_pos(ts.round);
        let notify = rip == self.cfg.rounds_per_phase;
        match (&mut self.role, ts.slot_in_round) {
            (
                AggRole::Follower {
                    cluster,
                    fv,
                    value,
                    pu,
                    tx_channel,
                    delivered,
                    ..
                },
                0,
            ) => {
                *tx_channel = None;
                if notify || delivered.is_some() {
                    return Action::Idle;
                }
                if rng.gen_bool(*pu) {
                    let ch = Channel(rng.gen_range(0..*fv));
                    *tx_channel = Some(ch);
                    Action::Transmit {
                        channel: ch,
                        msg: FollowerMsg::Data {
                            cluster: *cluster,
                            value: value.clone(),
                        },
                    }
                } else {
                    Action::Idle
                }
            }
            (
                AggRole::Follower {
                    tx_channel: Some(ch),
                    ..
                },
                1,
            ) => Action::Listen { channel: *ch },
            (
                AggRole::Follower {
                    tx_channel: None, ..
                },
                1,
            ) => Action::Idle,
            (AggRole::Follower { delivered, .. }, 2) => {
                if notify && delivered.is_none() {
                    Action::Listen {
                        channel: Channel::FIRST,
                    }
                } else {
                    Action::Idle
                }
            }
            (AggRole::Reporter { channel, .. }, 0) => {
                if notify {
                    Action::Idle
                } else {
                    Action::Listen { channel: *channel }
                }
            }
            (
                AggRole::Reporter {
                    cluster,
                    channel,
                    pending_ack,
                    ..
                },
                1,
            ) => match pending_ack.take() {
                Some(to) => Action::Transmit {
                    channel: *channel,
                    msg: FollowerMsg::Ack {
                        to,
                        cluster: *cluster,
                    },
                },
                None => Action::Idle,
            },
            (AggRole::Dominator { .. }, 0) => {
                if notify {
                    Action::Idle
                } else {
                    Action::Listen {
                        channel: Channel::FIRST,
                    }
                }
            }
            (
                AggRole::Dominator {
                    cluster,
                    collect: true,
                    pending_ack,
                    ..
                },
                1,
            ) => match pending_ack.take() {
                Some(to) => Action::Transmit {
                    channel: Channel::FIRST,
                    msg: FollowerMsg::Ack {
                        to,
                        cluster: *cluster,
                    },
                },
                None => Action::Idle,
            },
            (
                AggRole::Dominator {
                    cluster,
                    count_phase,
                    ..
                },
                2,
            ) => {
                if notify {
                    let fire = *count_phase >= self.cfg.backoff_threshold;
                    *count_phase = 0;
                    if fire {
                        return Action::Transmit {
                            channel: Channel::FIRST,
                            msg: FollowerMsg::Backoff { cluster: *cluster },
                        };
                    }
                }
                Action::Idle
            }
            _ => Action::Idle,
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<Self::Msg>, _rng: &mut SmallRng) {
        let Some(ts) = self.cfg.tdma.my_slot(slot, self.color) else {
            return;
        };
        if ts.round >= self.cfg.total_rounds() {
            self.finished = true;
            return;
        }
        let (_, rip) = self.phase_pos(ts.round);
        let notify = rip == self.cfg.rounds_per_phase;
        let lambda = self.cfg.lambda;
        let me = self.me;
        match (&mut self.role, ts.slot_in_round) {
            (
                AggRole::Reporter {
                    cluster,
                    collected,
                    follower_ids,
                    pending_ack,
                    ..
                },
                0,
            ) => {
                if let Observation::Received(r) = &obs {
                    if let FollowerMsg::Data { cluster: c, value } = &r.msg {
                        if c == cluster && !follower_ids.contains(&r.from) {
                            follower_ids.push(r.from);
                            *collected = self.agg.combine(collected, value);
                            *pending_ack = Some(r.from);
                        } else if c == cluster {
                            // Duplicate (our previous ack was lost): ack
                            // again without recombining.
                            *pending_ack = Some(r.from);
                        }
                    }
                }
            }
            (
                AggRole::Follower {
                    cluster, delivered, ..
                },
                1,
            ) => {
                if let Observation::Received(r) = &obs {
                    if let FollowerMsg::Ack { to, cluster: c } = &r.msg {
                        // Several followers may have transmitted and be
                        // listening; only the addressed one is delivered.
                        if *c == *cluster && *to == me && delivered.is_none() {
                            *delivered = Some(r.from);
                        }
                    }
                }
            }
            (
                AggRole::Follower {
                    pu,
                    delivered,
                    backoff_heard,
                    cluster,
                    ..
                },
                2,
            ) if notify && delivered.is_none() => {
                if let Observation::Received(r) = &obs {
                    if matches!(&r.msg, FollowerMsg::Backoff { cluster: c } if c == cluster) {
                        *backoff_heard = true;
                    }
                }
                if !*backoff_heard {
                    *pu = (*pu * 2.0).min(lambda / 2.0);
                }
                *backoff_heard = false;
            }
            (
                AggRole::Dominator {
                    cluster,
                    count_phase,
                    total_heard,
                    collect,
                    collected,
                    follower_ids,
                    pending_ack,
                },
                0,
            ) => {
                if let Observation::Received(r) = &obs {
                    if let FollowerMsg::Data { cluster: c, value } = &r.msg {
                        if c == cluster {
                            *count_phase += 1;
                            *total_heard += 1;
                            if *collect {
                                if !follower_ids.contains(&r.from) {
                                    follower_ids.push(r.from);
                                    *collected = self.agg.combine(collected, value);
                                }
                                *pending_ack = Some(r.from);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        if ts.slot_in_round == 2 && ts.round + 1 >= self.cfg.total_rounds() {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
            || matches!(
                &self.role,
                AggRole::Follower {
                    delivered: Some(_),
                    ..
                }
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggfun::{MaxAgg, SumAgg};
    use mca_geom::Point;
    use mca_radio::Engine;
    use mca_sinr::SinrParams;

    fn cfg(phases: u64) -> FollowerCfg {
        FollowerCfg {
            rounds_per_phase: 40,
            backoff_threshold: 3,
            lambda: 0.5,
            tdma: Tdma::new(1, SLOTS_PER_ROUND),
            max_phases: phases,
        }
    }

    /// One cluster: dominator + 1 reporter per channel + m followers.
    fn run_cluster(m: usize, fv: u16, seed: u64) -> (Vec<FollowerAgg<SumAgg>>, u64) {
        let c = cfg(40);
        let mut positions = vec![Point::ORIGIN];
        let mut protocols = vec![FollowerAgg::dominator(SumAgg, c, NodeId(0), 0, false)];
        for ch in 0..fv {
            positions.push(Point::unit(ch as f64) * 0.3);
            protocols.push(FollowerAgg::reporter(
                SumAgg,
                c,
                NodeId(1 + ch as u32),
                NodeId(0),
                0,
                Channel(ch),
                0, // reporters carry no input in this test
            ));
        }
        for i in 0..m {
            let theta = i as f64 / m as f64 * std::f64::consts::TAU;
            positions.push(Point::unit(theta) * (0.5 + 0.4 * ((i % 5) as f64 / 5.0)));
            let pu = (0.5 * fv as f64 / m as f64).min(0.25);
            protocols.push(FollowerAgg::follower(
                SumAgg,
                c,
                NodeId(1 + fv as u32 + i as u32),
                NodeId(0),
                0,
                fv,
                1, // each follower contributes 1 => sum = m
                pu,
            ));
        }
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, seed);
        let max = c.tdma.slots_for_rounds(c.total_rounds());
        engine.run_until(max, |ps: &[FollowerAgg<SumAgg>]| {
            ps.iter().all(|p| p.is_delivered())
        });
        let slots = engine.slot();
        (engine.into_protocols(), slots)
    }

    #[test]
    fn all_followers_deliver_and_sum_is_exact() {
        for (m, fv, seed) in [(20usize, 2u16, 1u64), (60, 4, 2), (10, 1, 3)] {
            let (out, _slots) = run_cluster(m, fv, seed);
            assert!(
                out.iter().all(|p| p.is_delivered()),
                "m={m} fv={fv}: undelivered followers remain"
            );
            let total: i64 = out
                .iter()
                .filter_map(|p| p.reporter_state().map(|(v, _)| *v))
                .sum();
            assert_eq!(total, m as i64, "m={m} fv={fv}: wrong aggregate");
            // No follower is double-counted across reporters.
            let mut all_ids: Vec<NodeId> = out
                .iter()
                .filter_map(|p| p.reporter_state().map(|(_, ids)| ids.to_vec()))
                .flatten()
                .collect();
            let before = all_ids.len();
            all_ids.sort_unstable();
            all_ids.dedup();
            assert_eq!(before, all_ids.len(), "duplicate follower deliveries");
        }
    }

    #[test]
    fn more_channels_deliver_faster() {
        let (_, slow) = run_cluster(80, 1, 5);
        let (_, fast) = run_cluster(80, 8, 5);
        assert!(
            fast < slow,
            "8 channels ({fast} slots) should beat 1 channel ({slow} slots)"
        );
    }

    #[test]
    fn max_aggregate_reaches_reporters() {
        let c = cfg(40);
        let positions = vec![
            Point::ORIGIN,
            Point::new(0.3, 0.0),
            Point::new(0.0, 0.5),
            Point::new(0.5, 0.5),
        ];
        let protocols = vec![
            FollowerAgg::dominator(MaxAgg, c, NodeId(0), 0, false),
            FollowerAgg::reporter(MaxAgg, c, NodeId(1), NodeId(0), 0, Channel::FIRST, 5),
            FollowerAgg::follower(MaxAgg, c, NodeId(2), NodeId(0), 0, 1, 42, 0.2),
            FollowerAgg::follower(MaxAgg, c, NodeId(3), NodeId(0), 0, 1, 7, 0.2),
        ];
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, 9);
        let max = c.tdma.slots_for_rounds(c.total_rounds());
        engine.run_until(max, |ps: &[FollowerAgg<MaxAgg>]| {
            ps.iter().all(|p| p.is_delivered())
        });
        let out = engine.into_protocols();
        let (v, ids) = out[1].reporter_state().unwrap();
        assert_eq!(*v, 42);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn passive_node_is_done() {
        let p = FollowerAgg::passive(SumAgg, cfg(1), NodeId(0));
        assert!(p.is_done());
        assert!(p.is_delivered());
    }

    #[test]
    fn contention_stays_bounded() {
        // Lemma 19 check at protocol scale: followers' total probability per
        // channel never exceeds lambda (after the initial setting).
        let c = cfg(40);
        let m = 50;
        let fv = 2u16;
        let mut positions = vec![Point::ORIGIN];
        let mut protocols = vec![FollowerAgg::dominator(SumAgg, c, NodeId(0), 0, false)];
        for ch in 0..fv {
            positions.push(Point::unit(ch as f64) * 0.3);
            protocols.push(FollowerAgg::reporter(
                SumAgg,
                c,
                NodeId(1 + ch as u32),
                NodeId(0),
                0,
                Channel(ch),
                0,
            ));
        }
        for i in 0..m {
            let theta = i as f64 / m as f64 * std::f64::consts::TAU;
            positions.push(Point::unit(theta) * 0.7);
            protocols.push(FollowerAgg::follower(
                SumAgg,
                c,
                NodeId(1 + fv as u32 + i as u32),
                NodeId(0),
                0,
                fv,
                1,
                (0.5 * fv as f64 / m as f64).min(0.25),
            ));
        }
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, 11);
        let max = c.tdma.slots_for_rounds(c.total_rounds());
        let mut worst: f64 = 0.0;
        let chunk = c.tdma.slots_for_rounds(c.rounds_per_phase + 1);
        while engine.slot() < max {
            engine.run(chunk);
            let contention: f64 = engine
                .protocols()
                .iter()
                .filter_map(|p| p.current_pu())
                .sum();
            worst = worst.max(contention / fv as f64);
            if engine.protocols().iter().all(|p| p.is_delivered()) {
                break;
            }
        }
        assert!(
            worst <= 0.5 + 1e-9,
            "contention per channel exceeded lambda: {worst}"
        );
    }
}
