//! Deterministic convergecast on the reporter tree (paper §6, second
//! procedure; Lemma 16) with the Appendix-A auxiliary-node takeover.
//!
//! Rounds proceed from the deepest tree level upward; in the round for
//! depth `d`, reporters at depth `d` transmit their partial aggregate to
//! their parent on the *parent's* channel — odd heap positions in the first
//! send slot, even in the second (the paper's third/fourth slot rule), each
//! followed by an acknowledgement slot.
//!
//! If a sender receives no ack, the parent position is vacant (its channel
//! elected no reporter — possible in the Appendix-A setting). Per the
//! paper, the child then "functions as its parent": the odd child (or the
//! even child when it has no odd sibling) adopts the parent position, acks
//! its sibling in the same round, and transmits at the parent's scheduled
//! round. Under the cluster TDMA, each transmission is the only one in its
//! cluster on its channel, so Lemma 9 makes the schedule deterministic.

use crate::aggfun::Aggregate;
use crate::schedule::Tdma;
use crate::tree::HeapTree;
use mca_radio::{Action, Channel, NodeId, Observation, Protocol};
use rand::rngs::SmallRng;

/// Messages of the convergecast.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeMsg<V> {
    /// A partial aggregate travelling to the parent position.
    Up {
        /// Cluster scope.
        cluster: NodeId,
        /// Heap position of the sender.
        from_pos: u16,
        /// Partial aggregate of the sender's subtree.
        value: V,
    },
    /// Parent acknowledgement.
    Ack {
        /// Cluster scope.
        cluster: NodeId,
        /// Heap position being acknowledged.
        to_pos: u16,
    },
}

/// Slots per round: send-odd, ack-odd, send-even, ack-even.
pub const SLOTS_PER_ROUND: u16 = 4;

/// Configuration shared by a cluster's participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeCfg {
    /// Number of channel positions (`f_v`).
    pub fv: u16,
    /// TDMA schedule (`slots_per_round` = 4).
    pub tdma: Tdma,
}

impl TreeCfg {
    /// The tree geometry.
    pub fn tree(&self) -> HeapTree {
        HeapTree::new(self.fv)
    }

    /// Convergecast rounds.
    pub fn rounds(&self) -> u64 {
        self.tree().rounds() as u64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TreeRole {
    /// The dominator (heap position 0).
    Dominator,
    /// A reporter currently acting as heap position `pos ≥ 1`.
    Reporter {
        pos: u16,
        sent: bool,
    },
    Passive,
}

/// Per-node convergecast state machine.
#[derive(Debug, Clone)]
pub struct TreeCast<A: Aggregate> {
    agg: A,
    cfg: TreeCfg,
    cluster: NodeId,
    color: u16,
    role: TreeRole,
    value: A::Value,
    /// Per-child contributions, keyed by the sender's (possibly taken-over)
    /// heap position — retained for the coloring algorithm's range split.
    child_values: Vec<(u16, A::Value)>,
    /// Positions this node has occupied, in order (original first); length
    /// > 1 records takeovers of vacant parents.
    chain: Vec<u16>,
    /// Ack to send in the upcoming ack slot, if any.
    pending_ack: Option<u16>,
    /// Whether this node transmitted in the current round's send slot and
    /// is awaiting the matching ack.
    awaiting_ack: bool,
    /// Whether the value was delivered upward (acked).
    delivered: bool,
    finished: bool,
}

impl<A: Aggregate> TreeCast<A> {
    /// The dominator, seeded with its own input value.
    pub fn dominator(agg: A, cfg: TreeCfg, cluster: NodeId, color: u16, value: A::Value) -> Self {
        TreeCast {
            agg,
            cfg,
            cluster,
            color,
            role: TreeRole::Dominator,
            value,
            child_values: Vec::new(),
            chain: vec![0],
            pending_ack: None,
            awaiting_ack: false,
            delivered: false,
            finished: false,
        }
    }

    /// The reporter elected on channel `pos − 1`, seeded with the value it
    /// collected from its followers.
    pub fn reporter(
        agg: A,
        cfg: TreeCfg,
        cluster: NodeId,
        color: u16,
        pos: u16,
        value: A::Value,
    ) -> Self {
        assert!(pos >= 1 && pos <= cfg.fv, "heap position out of range");
        TreeCast {
            agg,
            cfg,
            cluster,
            color,
            role: TreeRole::Reporter { pos, sent: false },
            value,
            child_values: Vec::new(),
            chain: vec![pos],
            pending_ack: None,
            awaiting_ack: false,
            delivered: false,
            finished: false,
        }
    }

    /// A node outside the procedure.
    pub fn passive(agg: A, cfg: TreeCfg, cluster: NodeId) -> Self {
        let identity = agg.identity();
        TreeCast {
            agg,
            cfg,
            cluster,
            color: 0,
            role: TreeRole::Passive,
            value: identity,
            child_values: Vec::new(),
            chain: Vec::new(),
            pending_ack: None,
            awaiting_ack: false,
            delivered: false,
            finished: true,
        }
    }

    /// The accumulated value (the cluster aggregate, at the dominator, once
    /// the protocol finished).
    pub fn value(&self) -> &A::Value {
        &self.value
    }

    /// Whether a reporter's value reached its parent.
    pub fn is_delivered(&self) -> bool {
        self.delivered
    }

    /// Current heap position (tracks takeovers).
    pub fn position(&self) -> Option<u16> {
        match self.role {
            TreeRole::Dominator => Some(0),
            TreeRole::Reporter { pos, .. } => Some(pos),
            TreeRole::Passive => None,
        }
    }

    /// Per-child contributions received, keyed by sender position.
    pub fn child_values(&self) -> &[(u16, A::Value)] {
        &self.child_values
    }

    /// The positions this node occupied, original first (takeover chain).
    pub fn chain(&self) -> &[u16] {
        &self.chain
    }
}

impl<A: Aggregate> Protocol for TreeCast<A> {
    type Msg = TreeMsg<A::Value>;

    fn act(&mut self, slot: u64, _rng: &mut SmallRng) -> Action<Self::Msg> {
        let Some(ts) = self.cfg.tdma.my_slot(slot, self.color) else {
            return Action::Idle;
        };
        if ts.round >= self.cfg.rounds() {
            return Action::Idle;
        }
        let tree = self.cfg.tree();
        let depth_now = tree.max_depth() - ts.round as u16;
        match self.role {
            TreeRole::Dominator => {
                // Listen while depth-1 children transmit; ack in ack slots.
                if depth_now == 1 {
                    match ts.slot_in_round {
                        0 | 2 => Action::Listen {
                            channel: Channel::FIRST,
                        },
                        _ => match self.pending_ack.take() {
                            Some(p) => Action::Transmit {
                                channel: Channel::FIRST,
                                msg: TreeMsg::Ack {
                                    cluster: self.cluster,
                                    to_pos: p,
                                },
                            },
                            None => Action::Idle,
                        },
                    }
                } else {
                    Action::Idle
                }
            }
            TreeRole::Reporter { pos, sent } => {
                let my_depth = tree.depth(pos);
                let parent_ch = tree.channel_of(tree.parent(pos));
                let own_ch = tree.channel_of(pos);
                if my_depth == depth_now && !sent {
                    // My turn to transmit to the parent.
                    let first = tree.is_first_subslot(pos);
                    match (ts.slot_in_round, first) {
                        (0, true) | (2, false) => {
                            self.awaiting_ack = true;
                            Action::Transmit {
                                channel: parent_ch,
                                msg: TreeMsg::Up {
                                    cluster: self.cluster,
                                    from_pos: pos,
                                    value: self.value.clone(),
                                },
                            }
                        }
                        (1, true) | (3, false) => Action::Listen { channel: parent_ch },
                        _ => Action::Idle,
                    }
                } else if my_depth + 1 == depth_now && tree.children(pos).next().is_some() {
                    // My children transmit this round: listen + ack on my
                    // own channel.
                    match ts.slot_in_round {
                        0 | 2 => Action::Listen { channel: own_ch },
                        _ => match self.pending_ack.take() {
                            Some(p) => Action::Transmit {
                                channel: own_ch,
                                msg: TreeMsg::Ack {
                                    cluster: self.cluster,
                                    to_pos: p,
                                },
                            },
                            None => Action::Idle,
                        },
                    }
                } else {
                    Action::Idle
                }
            }
            TreeRole::Passive => Action::Idle,
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<Self::Msg>, _rng: &mut SmallRng) {
        let Some(ts) = self.cfg.tdma.my_slot(slot, self.color) else {
            return;
        };
        if ts.round >= self.cfg.rounds() {
            self.finished = true;
            return;
        }
        let tree = self.cfg.tree();
        // Parent-side: accumulate decoded Up messages.
        if let Observation::Received(r) = &obs {
            match &r.msg {
                TreeMsg::Up {
                    cluster,
                    from_pos,
                    value,
                } if *cluster == self.cluster => {
                    let my_pos = self.position().unwrap_or(u16::MAX);
                    if my_pos != u16::MAX
                        && *from_pos >= 1
                        && tree.parent(*from_pos) == my_pos
                        && !self.child_values.iter().any(|(p, _)| p == from_pos)
                    {
                        self.child_values.push((*from_pos, value.clone()));
                        self.value = self.agg.combine(&self.value, value);
                        self.pending_ack = Some(*from_pos);
                    }
                }
                TreeMsg::Ack { cluster, to_pos }
                    if *cluster == self.cluster
                        && self.awaiting_ack
                        && Some(*to_pos) == self.position() =>
                {
                    self.awaiting_ack = false;
                    self.delivered = true;
                    if let TreeRole::Reporter { pos, .. } = self.role {
                        self.role = TreeRole::Reporter { pos, sent: true };
                    }
                }
                _ => {}
            }
        }
        // Missing-ack handling at the end of an ack slot: take over the
        // vacant parent position if the rule allows.
        if self.awaiting_ack
            && matches!(ts.slot_in_round, 1 | 3)
            && matches!(obs, Observation::Received(_) | Observation::Noise { .. })
        {
            self.awaiting_ack = false;
            if let TreeRole::Reporter { pos, .. } = self.role {
                let parent = tree.parent(pos);
                // The odd child claims the vacant parent; the even child
                // only when it has no odd sibling. Position 0 (the
                // dominator) is never vacant.
                let may_take = parent >= 1 && (pos % 2 == 1 || !tree.odd_sibling_exists(pos));
                if may_take {
                    self.role = TreeRole::Reporter {
                        pos: parent,
                        sent: false,
                    };
                    self.chain.push(parent);
                } else {
                    // Undeliverable; surfaced via `is_delivered`.
                    self.role = TreeRole::Reporter { pos, sent: true };
                }
            }
        }
        if ts.slot_in_round == 3 && ts.round + 1 >= self.cfg.rounds() {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggfun::SumAgg;
    use mca_geom::Point;
    use mca_radio::Engine;
    use mca_sinr::SinrParams;

    /// Builds a cluster with the dominator at the origin and reporters on a
    /// small circle; `present[k-1]` controls whether position `k` is filled.
    fn run_tree(present: &[bool], seed: u64) -> (i64, u64) {
        let fv = present.len() as u16;
        let cfg = TreeCfg {
            fv,
            tdma: Tdma::new(1, SLOTS_PER_ROUND),
        };
        let mut positions = vec![Point::ORIGIN];
        // Dominator's own input = 1000.
        let mut protocols = vec![TreeCast::dominator(SumAgg, cfg, NodeId(0), 0, 1000)];
        for (i, &here) in present.iter().enumerate() {
            if here {
                let theta = i as f64;
                positions.push(Point::unit(theta) * 0.5);
                // Reporter at position i+1 carries value 2^(i+1).
                protocols.push(TreeCast::reporter(
                    SumAgg,
                    cfg,
                    NodeId(0),
                    0,
                    (i + 1) as u16,
                    1 << (i + 1),
                ));
            }
        }
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, seed);
        engine.run_until_done(cfg.tdma.slots_for_rounds(cfg.rounds()) + 4);
        let slots = engine.slot();
        let out = engine.into_protocols();
        (*out[0].value(), slots)
    }

    #[test]
    fn full_tree_aggregates_exactly() {
        for fv in [1usize, 2, 3, 4, 7] {
            let present = vec![true; fv];
            let (total, _) = run_tree(&present, 42);
            let expect: i64 = 1000 + (1..=fv).map(|k| 1i64 << k).sum::<i64>();
            assert_eq!(total, expect, "fv={fv}");
        }
    }

    #[test]
    fn convergecast_time_matches_lemma_16() {
        // rounds = max_depth; slots = 4·rounds (ack slots double Lemma 16's
        // 2·⌊log(fv+1)⌋ sends).
        let present = vec![true; 7];
        let (_, slots) = run_tree(&present, 1);
        let cfg = TreeCfg {
            fv: 7,
            tdma: Tdma::new(1, SLOTS_PER_ROUND),
        };
        assert_eq!(cfg.rounds(), 3);
        assert!(slots <= cfg.tdma.slots_for_rounds(3) + 4);
    }

    #[test]
    fn vacant_parent_taken_over_by_odd_child() {
        // fv=3, position 1 vacant: position 3 (odd child of 1) must take
        // over and deliver; position 2's value flows through it as well.
        let (total, _) = run_tree(&[false, true, true], 3);
        assert_eq!(total, 1000 + 4 + 8);
    }

    #[test]
    fn vacant_parent_even_child_without_sibling() {
        // fv=2, position 1 vacant: position 2 (even, no odd sibling) takes
        // over.
        let (total, _) = run_tree(&[false, true], 4);
        assert_eq!(total, 1000 + 4);
    }

    #[test]
    fn vacant_leaf_is_harmless() {
        // fv=3, position 3 vacant: 1 and 2 still aggregate.
        let (total, _) = run_tree(&[true, true, false], 5);
        assert_eq!(total, 1000 + 2 + 4);
    }

    #[test]
    fn deep_chain_of_vacancies() {
        // fv=7: only positions 7 and 5 filled. 7 (odd) climbs through the
        // vacant 3 and reaches the dominator; 5 (odd child of 2) climbs to
        // 2, where — as an even position whose odd sibling 3 is vacant at
        // its own send round — delivery depends on the interleaving.
        let (total, _) = run_tree(&[false, false, false, false, true, false, true], 6);
        // Position 7 carries 128, position 5 carries 32; 1000 is the
        // dominator's own. Never double-count; 7 must arrive.
        assert!(
            total == 1000 + 128 + 32 || total == 1000 + 128,
            "unexpected total {total}"
        );
    }

    #[test]
    fn passive_done_immediately() {
        let cfg = TreeCfg {
            fv: 2,
            tdma: Tdma::new(1, SLOTS_PER_ROUND),
        };
        let p = TreeCast::passive(SumAgg, cfg, NodeId(0));
        assert!(p.is_done());
    }

    #[test]
    #[should_panic(expected = "heap position out of range")]
    fn bad_position_rejected() {
        let cfg = TreeCfg {
            fv: 2,
            tdma: Tdma::new(1, SLOTS_PER_ROUND),
        };
        let _ = TreeCast::reporter(SumAgg, cfg, NodeId(0), 0, 5, 0);
    }
}
