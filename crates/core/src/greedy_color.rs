//! Claim-based greedy dominator coloring.
//!
//! The §5.1.2 construction colors dominators by repeated ruling sets, which
//! certifies separation through Definition 4's *clear receptions* — at
//! `r = R_{ε/2}` those require near-silence within `4r`, so elections
//! serialize globally and the measured `φ` balloons (see `DESIGN.md`
//! deviation #9). This protocol achieves the same guarantee — same-color
//! dominators separated by `R_{ε/2}` — with ordinary receptions:
//!
//! * every uncommitted dominator repeatedly *claims* the smallest color it
//!   has not heard a `R_{ε/2}`-neighbor claim or commit;
//! * hearing a conflicting claim from a neighbor forces a re-claim
//!   (ties broken by node id: the smaller id keeps the color);
//! * after transmitting its unchanged claim `STABLE_TX` times (so all
//!   neighbors heard it w.h.p.), the dominator commits and thereafter
//!   beacons `Committed` at the constant-density probability.
//!
//! Dominators have constant density, so contention is bounded and the whole
//! coloring finishes in `O(φ·log n)` rounds with `φ` close to the local
//! optimum — typically 3–6× fewer colors than the ruling-set phase loop
//! produces, which divides the TDMA overhead of every later phase.

use mca_radio::{Action, Channel, NodeId, Observation, Protocol};
use mca_sinr::SinrParams;
use rand::rngs::SmallRng;
use rand::Rng;

/// Messages of the greedy coloring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimMsg {
    /// A tentative claim on a color.
    Claim {
        /// Claimed color.
        color: u16,
        /// Claimant id (tie-breaking).
        id: NodeId,
    },
    /// A committed color announcement.
    Committed {
        /// Committed color.
        color: u16,
        /// Owner id (conflict self-healing: the larger id yields).
        id: NodeId,
    },
}

/// Configuration of the greedy coloring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClaimCfg {
    /// Separation radius (`R_{ε/2}`): colors of senders within this radius
    /// are excluded.
    pub radius: f64,
    /// Initial claim transmission probability; adapted by carrier sense
    /// (halve when interference above `busy_threshold` is sensed, double on
    /// quiet rounds, capped at 0.25) so claims actually decode.
    pub p: f64,
    /// Sensed-power level that counts as a busy round.
    pub busy_threshold: f64,
    /// Beacon probability after commitment.
    pub p_committed: f64,
    /// Transmissions of an unchanged claim required before committing.
    pub stable_tx: u32,
    /// Total rounds (1 slot each).
    pub rounds: u64,
    /// Conservative node-side parameters (RSSI distance filter).
    pub params: SinrParams,
}

/// Per-node state of the greedy coloring.
#[derive(Debug, Clone)]
pub struct GreedyColor {
    cfg: ClaimCfg,
    me: NodeId,
    /// Current adapted transmission probability.
    p: f64,
    /// Colors heard claimed-or-committed by `R_{ε/2}`-neighbors.
    used: Vec<bool>,
    claim: u16,
    tx_since_change: u32,
    committed: Option<u16>,
    committed_round: Option<u64>,
    passive: bool,
    finished: bool,
}

impl GreedyColor {
    /// An active dominator.
    pub fn new(me: NodeId, cfg: ClaimCfg) -> Self {
        assert!(cfg.radius > 0.0 && cfg.p > 0.0 && cfg.p <= 0.5);
        assert!(cfg.stable_tx >= 1 && cfg.rounds >= 1);
        GreedyColor {
            p: cfg.p,
            cfg,
            me,
            used: vec![false; 64],
            claim: 0,
            tx_since_change: 0,
            committed: None,
            committed_round: None,
            passive: false,
            finished: false,
        }
    }

    /// A non-dominator (silent).
    pub fn passive(me: NodeId, cfg: ClaimCfg) -> Self {
        let mut g = GreedyColor::new(me, cfg);
        g.passive = true;
        g.finished = true;
        g
    }

    /// An already-committed dominator: it only beacons its color so fresh
    /// claimants keep clear of the palette in force — the anchor role of a
    /// local recoloring patch during structure repair.
    pub fn committed(me: NodeId, cfg: ClaimCfg, color: u16) -> Self {
        let mut g = GreedyColor::new(me, cfg);
        g.committed = Some(color);
        g
    }

    /// The committed color, if any.
    pub fn color(&self) -> Option<u16> {
        self.committed
    }

    /// Round at which the node committed.
    pub fn committed_round(&self) -> Option<u64> {
        self.committed_round
    }

    fn mark_used(&mut self, c: u16) {
        if self.used.len() <= c as usize {
            self.used.resize(c as usize + 1, false);
        }
        self.used[c as usize] = true;
    }

    fn smallest_free(&self) -> u16 {
        self.used
            .iter()
            .position(|&u| !u)
            .unwrap_or(self.used.len()) as u16
    }

    fn within_radius(&self, signal: f64) -> bool {
        signal >= self.cfg.params.received_power(self.cfg.radius) * 0.98
    }
}

impl Protocol for GreedyColor {
    type Msg = ClaimMsg;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<ClaimMsg> {
        if self.passive || slot >= self.cfg.rounds {
            return Action::Idle;
        }
        match self.committed {
            Some(color) => {
                // Beacons stay under MIMD control so steady-state beacon
                // traffic cannot drown late deciders.
                if rng.gen_bool(self.p.min(2.0 * self.cfg.p_committed)) {
                    Action::Transmit {
                        channel: Channel::FIRST,
                        msg: ClaimMsg::Committed { color, id: self.me },
                    }
                } else {
                    Action::Listen {
                        channel: Channel::FIRST,
                    }
                }
            }
            None => {
                if rng.gen_bool(self.p) {
                    self.tx_since_change += 1;
                    Action::Transmit {
                        channel: Channel::FIRST,
                        msg: ClaimMsg::Claim {
                            color: self.claim,
                            id: self.me,
                        },
                    }
                } else {
                    Action::Listen {
                        channel: Channel::FIRST,
                    }
                }
            }
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<ClaimMsg>, _rng: &mut SmallRng) {
        // Carrier-sense MIMD keeps local contention at decodable levels
        // (committed nodes keep adapting: their beacons share the channel).
        if !self.passive {
            let busy = match &obs {
                Observation::Received(r) => r.sensed_interference() >= self.cfg.busy_threshold,
                Observation::Noise { total_power } => *total_power >= self.cfg.busy_threshold,
                _ => false,
            };
            if busy {
                self.p = (self.p / 2.0).max(self.cfg.p / 8.0);
            } else if matches!(obs, Observation::Noise { .. } | Observation::Received(_)) {
                self.p = (self.p * 2.0).min(0.25);
            }
        }
        if let Observation::Received(r) = &obs {
            if self.within_radius(r.signal) {
                match r.msg {
                    ClaimMsg::Committed { color, id } => {
                        self.mark_used(color);
                        match self.committed {
                            // Conflict self-healing: two committed owners of
                            // one color within R_{ε/2} — the larger id
                            // returns to claiming a fresh color.
                            Some(mine) if mine == color && id < self.me => {
                                self.committed = None;
                                self.claim = self.smallest_free();
                                self.tx_since_change = 0;
                            }
                            None if color == self.claim => {
                                self.claim = self.smallest_free();
                                self.tx_since_change = 0;
                            }
                            _ => {}
                        }
                    }
                    ClaimMsg::Claim { color, id } => {
                        if self.committed.is_none() && color == self.claim {
                            // Tie-break: the smaller id keeps the color.
                            if id < self.me {
                                self.mark_used(color);
                                self.claim = self.smallest_free();
                                self.tx_since_change = 0;
                            }
                        } else if self.committed.is_none() {
                            // A neighbor is converging on that color; avoid
                            // it unless it is ours by tie-break.
                            if id < self.me || color != self.claim {
                                self.mark_used(color);
                            }
                        }
                    }
                }
            }
        }
        if self.committed.is_none() && self.tx_since_change >= self.cfg.stable_tx {
            self.committed = Some(self.claim);
            self.committed_round = Some(slot);
        }
        if slot + 1 >= self.cfg.rounds {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        // Committed nodes keep beaconing until the schedule ends so that
        // late deciders avoid their color.
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_geom::{Deployment, Point};
    use mca_radio::Engine;
    use rand::SeedableRng;

    fn cfg(rounds: u64) -> ClaimCfg {
        ClaimCfg {
            radius: 6.0,
            p: 1.0 / 12.0,
            busy_threshold: SinrParams::default().received_power(9.0),
            p_committed: 1.0 / 24.0,
            stable_tx: 6,
            rounds,
            params: SinrParams::default(),
        }
    }

    fn run(positions: Vec<Point>, rounds: u64, seed: u64) -> Vec<GreedyColor> {
        let protocols: Vec<GreedyColor> = (0..positions.len())
            .map(|i| GreedyColor::new(NodeId(i as u32), cfg(rounds)))
            .collect();
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, seed);
        engine.run_until_done(rounds + 1);
        engine.into_protocols()
    }

    #[test]
    fn lone_node_takes_color_zero() {
        let out = run(vec![Point::ORIGIN], 200, 1);
        assert_eq!(out[0].color(), Some(0));
    }

    #[test]
    fn nearby_pair_gets_distinct_colors() {
        for seed in 0..10 {
            let out = run(vec![Point::ORIGIN, Point::new(3.0, 0.0)], 400, seed);
            let (a, b) = (out[0].color(), out[1].color());
            assert!(a.is_some() && b.is_some(), "seed {seed}: uncommitted");
            assert_ne!(a, b, "seed {seed}: conflict");
        }
    }

    #[test]
    fn separation_holds_on_random_dominator_sets() {
        // Constant-density dominator-like sets: separation >= 1.5.
        let mut total_conflicts = 0;
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let d = Deployment::uniform(400, 30.0, &mut rng);
            let dom = crate::dominate::oracle(d.points(), 1.5, seed);
            let positions: Vec<Point> = dom
                .dominators()
                .iter()
                .map(|n| d.points()[n.index()])
                .collect();
            let out = run(positions.clone(), 4000, seed);
            for (i, a) in out.iter().enumerate() {
                assert!(a.color().is_some(), "node {i} uncommitted");
                for (j, b) in out.iter().enumerate().skip(i + 1) {
                    if positions[i].dist(positions[j]) <= 6.0 && a.color() == b.color() {
                        total_conflicts += 1;
                    }
                }
            }
        }
        assert_eq!(total_conflicts, 0, "same-color neighbors within R_eps/2");
    }

    #[test]
    fn palette_is_near_local_density() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = Deployment::uniform(300, 24.0, &mut rng);
        let dom = crate::dominate::oracle(d.points(), 1.5, 3);
        let positions: Vec<Point> = dom
            .dominators()
            .iter()
            .map(|n| d.points()[n.index()])
            .collect();
        let k = positions.len();
        let out = run(positions.clone(), 4000, 3);
        let phi = out
            .iter()
            .filter_map(|g| g.color())
            .max()
            .map_or(0, |c| c + 1);
        // Local density bound: dominators within any 6-ball.
        let grid = mca_geom::SpatialGrid::build(&positions, 6.0);
        let dens = grid.max_ball_occupancy(&positions, 6.0);
        assert!(
            (phi as usize) <= 2 * dens + 2,
            "palette {phi} vs local density {dens} ({k} dominators)"
        );
    }

    #[test]
    fn passive_is_done() {
        let p = GreedyColor::passive(NodeId(0), cfg(10));
        assert!(p.is_done());
        assert_eq!(p.color(), None);
    }
}
