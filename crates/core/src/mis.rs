//! Network-wide ruling sets and maximal independent sets (paper §4).
//!
//! The §4 algorithm is **two-phase**: first a constant-density
//! `r`-dominating set (Scheideler et al. \[28\], Lemma 7), then the
//! HELLO/ACK/IN ruling-set protocol *among the dominators* — the constant
//! density is what makes the paper's `1/(2µ)` transmission probability and
//! `γ·ln n` round budget sufficient (Lemma 6). The result is an
//! `(r, 2r)`-ruling set of all nodes: members are `r`-independent and
//! every node has a member within `2r`.
//!
//! Two entry points:
//!
//! * [`ruling_set`] — the faithful two-phase pipeline; works at **any**
//!   input density (the first phase normalizes it), `O(log n)` rounds.
//! * [`maximal_independent_set`] — phase two alone over all nodes, which
//!   yields a *maximal* `r`-independent set (`r`-dominating, i.e. a true
//!   MIS of the `r`-disk graph). Lemma 6's analysis presumes
//!   constant-density participants; at high density the unconditional
//!   timeout join can violate independence — measured in `EXPERIMENTS.md`
//!   E15, and exactly why the paper runs phase one first.
//!
//! The paper's related work compares against MIS in multichannel radio
//! networks (reference \[4\], Daum et al., PODC 2013); this module is the
//! SINR-model counterpart built from the paper's own toolbox.

use crate::config::AlgoConfig;
use crate::dominate::{self, DominateConfig, DominateProtocol};
use crate::ruling::{self, ProbPolicy, RulingConfig, RulingOutcome, RulingSet, TimeoutRule};
use crate::schedule::Tdma;
use crate::structure::{NetworkEnv, SubstrateMode};
use mca_radio::{Channel, Engine, NodeId};

/// Configuration of a ruling-set / MIS computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MisConfig {
    /// Independence radius `r` (must be `≤ R_T/2`, the §4 clear-reception
    /// precondition).
    pub radius: f64,
    /// Ruling-phase rounds; `None` uses a calibrated default.
    pub rounds: Option<u64>,
    /// Behavior for nodes still active at the round cap. The paper's rule
    /// is [`TimeoutRule::Join`] (required for maximality).
    pub timeout: TimeoutRule,
    /// How the phase-one dominating set is obtained ([`ruling_set`] only).
    pub substrate: SubstrateMode,
}

impl MisConfig {
    /// The paper's §4 settings at radius `r`.
    pub fn new(radius: f64) -> Self {
        MisConfig {
            radius,
            rounds: None,
            timeout: TimeoutRule::Join,
            substrate: SubstrateMode::Distributed,
        }
    }
}

/// Result of a ruling-set / MIS computation.
#[derive(Debug, Clone)]
pub struct MisOutcome {
    /// Independence radius `r`.
    pub radius: f64,
    /// Domination radius the construction guarantees (`r` for the direct
    /// MIS, `2r` for the two-phase ruling set).
    pub domination_radius: f64,
    /// Per-node membership.
    pub in_set: Vec<bool>,
    /// Per-node terminal outcome of the ruling phase (participants only;
    /// phase-one dominatees report `Dominated`).
    pub outcomes: Vec<RulingOutcome>,
    /// Ruling-phase round in which each participant halted.
    pub halt_round: Vec<Option<u64>>,
    /// Phase-one (dominating set) slots; 0 for the direct MIS.
    pub dominate_slots: u64,
    /// Phase-two (ruling set) slots.
    pub ruling_slots: u64,
}

impl MisOutcome {
    /// Total slots across phases.
    pub fn total_slots(&self) -> u64 {
        self.dominate_slots + self.ruling_slots
    }

    /// Ids of the set members.
    pub fn members(&self) -> Vec<NodeId> {
        self.in_set
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(NodeId(i as u32)))
            .collect()
    }

    /// Number of `r`-independence violations (member pairs within `r`),
    /// given the ground-truth positions. Zero w.h.p. per Lemma 6.
    pub fn independence_violations(&self, positions: &[mca_geom::Point]) -> usize {
        let members = self.members();
        let mut v = 0;
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                if positions[i.index()].dist(positions[j.index()]) <= self.radius {
                    v += 1;
                }
            }
        }
        v
    }

    /// Number of nodes with no member within [`MisOutcome::domination_radius`]
    /// (coverage holes), given the ground-truth positions.
    pub fn domination_holes(&self, positions: &[mca_geom::Point]) -> usize {
        let members = self.members();
        positions
            .iter()
            .enumerate()
            .filter(|&(i, p)| {
                !self.in_set[i]
                    && !members
                        .iter()
                        .any(|m| positions[m.index()].dist(*p) <= self.domination_radius)
            })
            .count()
    }
}

fn check_radius(algo: &AlgoConfig, radius: f64) -> f64 {
    let r_max = algo.node_params().transmission_range() / 2.0;
    assert!(
        radius > 0.0 && radius <= r_max,
        "radius {radius} outside (0, R_T/2 = {r_max}]"
    );
    r_max
}

/// Runs the ruling phase over `participants` (phase two of §4).
fn run_ruling_phase(
    env: &NetworkEnv,
    algo: &AlgoConfig,
    cfg: &MisConfig,
    participants: &[bool],
    seed: u64,
) -> (Vec<RulingSet>, u64) {
    let n = env.len();
    let params = algo.node_params();
    // The paper's fixed `1/(2µ)` policy is theory-faithful but its success
    // constant `κ` is astronomically small whenever many participants
    // share a `4r`-ball (clear receptions need near-global silence), so at
    // simulable scales elections starve. The carrier-sense ramp — already
    // standing in for the [28] black box elsewhere (`DESIGN.md` #1) —
    // self-normalizes to the local contention instead; the round budget
    // carries a ramp-up allowance (cf. E5/E15 calibration).
    let policy = ProbPolicy::Adaptive {
        start: (algo.consts.lambda / algo.know.n_bound as f64).max(1e-9),
        busy_threshold: params.clear_threshold_for(cfg.radius),
    };
    let rounds = cfg
        .rounds
        .unwrap_or_else(|| algo.ruling_rounds().max(48 * algo.know.log2_n() as u64));
    let rcfg = RulingConfig {
        radius: cfg.radius,
        prob: policy,
        p_cap: algo.consts.p_cap,
        rounds,
        channel: Channel::FIRST,
        group: None,
        tdma: Tdma::trivial(ruling::SLOTS_PER_ROUND),
        color: 0,
        params,
        timeout_join: cfg.timeout,
    };
    let protocols: Vec<RulingSet> = (0..n)
        .map(|i| {
            if participants[i] {
                RulingSet::new(NodeId(i as u32), rcfg)
            } else {
                RulingSet::passive(NodeId(i as u32), rcfg)
            }
        })
        .collect();
    let mut engine = Engine::new(
        env.params,
        env.positions.clone(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0x3315),
    );
    engine.run_until_done(rcfg.tdma.slots_for_rounds(rounds) + ruling::SLOTS_PER_ROUND as u64);
    let slots = engine.slot();
    (engine.into_protocols(), slots)
}

/// Computes an `(r, 2r)`-ruling set with the paper's full two-phase §4
/// algorithm: a constant-density `r`-dominating set, then the ruling
/// protocol among the dominators. `O(log n)` rounds at any input density.
///
/// # Examples
///
/// ```no_run
/// use mca_core::mis::{ruling_set, MisConfig};
/// use mca_core::{AlgoConfig, NetworkEnv};
/// use mca_geom::Deployment;
/// use mca_sinr::SinrParams;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let params = SinrParams::default();
/// let mut rng = SmallRng::seed_from_u64(1);
/// let deploy = Deployment::uniform(400, 15.0, &mut rng);
/// let env = NetworkEnv::new(params, &deploy);
/// let algo = AlgoConfig::practical(4, &params, 400);
/// let r = params.transmission_range() / 4.0;
/// let out = ruling_set(&env, &algo, MisConfig::new(r), 7);
/// assert_eq!(out.independence_violations(&env.positions), 0);
/// ```
///
/// # Panics
///
/// Panics if the network is empty or `cfg.radius` exceeds `R_T/2`.
pub fn ruling_set(env: &NetworkEnv, algo: &AlgoConfig, cfg: MisConfig, seed: u64) -> MisOutcome {
    let n = env.len();
    assert!(n > 0, "cannot compute a ruling set over an empty network");
    check_radius(algo, cfg.radius);

    // --- Phase 1: constant-density r-dominating set (Lemma 7). ---
    let (dominators, dominate_slots): (Vec<bool>, u64) = match cfg.substrate {
        SubstrateMode::Oracle => {
            let out = dominate::oracle(&env.positions, cfg.radius, seed);
            let mut is_dom = vec![false; n];
            for d in out.dominators() {
                is_dom[d.index()] = true;
            }
            (is_dom, 0)
        }
        SubstrateMode::Distributed => {
            let mut dc = DominateConfig::from_algo(algo);
            dc.radius = cfg.radius;
            dc.busy_threshold = algo.node_params().received_power(2.0 * cfg.radius);
            let protocols: Vec<DominateProtocol> = (0..n)
                .map(|i| DominateProtocol::new(NodeId(i as u32), dc))
                .collect();
            let mut engine = Engine::new(
                env.params,
                env.positions.clone(),
                protocols,
                mca_radio::rng::derive_seed(seed, 0x3314),
            );
            engine.run_until_done(dc.rounds * dominate::SLOTS_PER_ROUND as u64 + 3);
            let slots = engine.slot();
            let is_dom: Vec<bool> = engine
                .protocols()
                .iter()
                .map(|p| p.is_dominator())
                .collect();
            (is_dom, slots)
        }
    };

    // --- Phase 2: ruling set among the (constant-density) dominators. ---
    let (out, ruling_slots) = run_ruling_phase(env, algo, &cfg, &dominators, seed);

    MisOutcome {
        radius: cfg.radius,
        domination_radius: 2.0 * cfg.radius,
        in_set: out.iter().map(|p| p.in_set()).collect(),
        outcomes: out.iter().map(|p| p.outcome()).collect(),
        halt_round: out.iter().map(|p| p.halt_round()).collect(),
        dominate_slots,
        ruling_slots,
    }
}

/// Computes a maximal `r`-independent set over **all** nodes (phase two of
/// §4 network-wide): members are `r`-independent w.h.p. and `r`-dominate
/// every node — an MIS of the `r`-disk graph.
///
/// Lemma 6's guarantee assumes constant-density participants; on dense
/// inputs prefer [`ruling_set`] (this function must ramp probabilities up
/// from `λ/n̂` and pays a longer default budget, and its timeout join can
/// still collide at very high density — see `EXPERIMENTS.md` E15).
///
/// # Panics
///
/// Panics if the network is empty or `cfg.radius` exceeds `R_T/2`.
pub fn maximal_independent_set(
    env: &NetworkEnv,
    algo: &AlgoConfig,
    cfg: MisConfig,
    seed: u64,
) -> MisOutcome {
    let n = env.len();
    assert!(n > 0, "cannot compute an MIS over an empty network");
    check_radius(algo, cfg.radius);
    let participants = vec![true; n];
    let (out, ruling_slots) = run_ruling_phase(env, algo, &cfg, &participants, seed);

    MisOutcome {
        radius: cfg.radius,
        domination_radius: cfg.radius,
        in_set: out.iter().map(|p| p.in_set()).collect(),
        outcomes: out.iter().map(|p| p.outcome()).collect(),
        halt_round: out.iter().map(|p| p.halt_round()).collect(),
        dominate_slots: 0,
        ruling_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_geom::Deployment;
    use mca_sinr::SinrParams;
    use rand::{rngs::SmallRng, SeedableRng};

    fn env_of(n: usize, side: f64, seed: u64) -> (NetworkEnv, AlgoConfig) {
        let params = SinrParams::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let env = NetworkEnv::new(params, &deploy);
        let algo = AlgoConfig::practical(4, &params, n);
        (env, algo)
    }

    #[test]
    fn mis_is_independent_and_dominating() {
        let (env, algo) = env_of(300, 15.0, 42);
        let r = env.params.transmission_range() / 4.0;
        let out = maximal_independent_set(&env, &algo, MisConfig::new(r), 8);
        assert_eq!(
            out.independence_violations(&env.positions),
            0,
            "members within r of each other"
        );
        assert_eq!(
            out.domination_holes(&env.positions),
            0,
            "node with no member within r"
        );
        assert!(!out.members().is_empty());
    }

    #[test]
    fn two_phase_ruling_set_handles_high_density() {
        // 800 nodes crowded into a small field: the direct MIS regime the
        // docs warn about; the two-phase pipeline must stay sound.
        let (env, algo) = env_of(800, 10.0, 43);
        let r = env.params.transmission_range() / 4.0;
        let out = ruling_set(&env, &algo, MisConfig::new(r), 13);
        assert_eq!(out.independence_violations(&env.positions), 0);
        assert_eq!(
            out.domination_holes(&env.positions),
            0,
            "2r-domination must cover everyone"
        );
        assert!(out.dominate_slots > 0, "phase one must have run");
    }

    #[test]
    fn oracle_substrate_skips_phase_one_slots() {
        let (env, algo) = env_of(150, 12.0, 44);
        let r = env.params.transmission_range() / 4.0;
        let mut cfg = MisConfig::new(r);
        cfg.substrate = SubstrateMode::Oracle;
        let out = ruling_set(&env, &algo, cfg, 13);
        assert_eq!(out.dominate_slots, 0);
        assert_eq!(out.independence_violations(&env.positions), 0);
        assert_eq!(out.domination_holes(&env.positions), 0);
    }

    #[test]
    fn singleton_network_elects_itself() {
        let (env, algo) = env_of(1, 1.0, 3);
        let r = env.params.transmission_range() / 4.0;
        let out = maximal_independent_set(&env, &algo, MisConfig::new(r), 1);
        assert_eq!(out.members(), vec![NodeId(0)]);
    }

    #[test]
    fn sparse_network_all_join() {
        // Nodes farther than r apart: all are independent, all must join.
        let params = SinrParams::default();
        let r = params.transmission_range() / 4.0;
        let positions: Vec<mca_geom::Point> = (0..10)
            .map(|i| mca_geom::Point::new(i as f64 * (3.0 * r), 0.0))
            .collect();
        let env = NetworkEnv { params, positions };
        let algo = AlgoConfig::practical(2, &params, 10);
        let out = maximal_independent_set(&env, &algo, MisConfig::new(r), 5);
        assert_eq!(out.members().len(), 10, "isolated nodes must all join");
        assert_eq!(out.independence_violations(&env.positions), 0);
    }

    #[test]
    #[should_panic(expected = "outside (0, R_T/2")]
    fn radius_above_half_range_rejected() {
        let (env, algo) = env_of(10, 5.0, 1);
        let r = env.params.transmission_range(); // too large
        let _ = maximal_independent_set(&env, &algo, MisConfig::new(r), 1);
    }

    #[test]
    fn expire_timeout_leaves_holes_possible_but_stays_independent() {
        let (env, algo) = env_of(200, 12.0, 11);
        let r = env.params.transmission_range() / 4.0;
        let mut cfg = MisConfig::new(r);
        cfg.timeout = TimeoutRule::Expire;
        cfg.rounds = Some(40);
        let out = maximal_independent_set(&env, &algo, cfg, 9);
        assert_eq!(out.independence_violations(&env.positions), 0);
        // Domination may have holes (Expire sacrifices maximality) — the
        // point is that independence is never traded away.
    }
}
