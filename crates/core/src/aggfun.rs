//! Aggregate functions.
//!
//! The data aggregation problem computes a *compressible* function of the
//! node inputs (paper §2). [`Aggregate`] captures the algebra the structure
//! needs: a commutative, associative combine with identity. Idempotent
//! aggregates (max, min, or, FM sketches) additionally support the
//! `O(D + log n)` flood-and-combine inter-cluster phase; duplicate-sensitive
//! ones (sum, count, average) use the exact tree upcast (see
//! `DESIGN.md`, substitution #2).

use std::fmt;

/// A commutative, associative aggregation with identity.
///
/// Implementations must satisfy (checked by property tests):
/// `combine(a, b) = combine(b, a)`,
/// `combine(a, combine(b, c)) = combine(combine(a, b), c)`,
/// `combine(a, identity()) = a`, and — when [`Aggregate::is_idempotent`] —
/// `combine(a, a) = a`.
pub trait Aggregate: Clone {
    /// The value being aggregated (also the message payload).
    type Value: Clone + PartialEq + fmt::Debug;

    /// The neutral element.
    fn identity(&self) -> Self::Value;

    /// Combines two partial aggregates.
    fn combine(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Whether `combine(a, a) = a` (enables flood-based dissemination).
    fn is_idempotent(&self) -> bool {
        false
    }
}

/// Maximum of `i64` inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaxAgg;

impl Aggregate for MaxAgg {
    type Value = i64;
    fn identity(&self) -> i64 {
        i64::MIN
    }
    fn combine(&self, a: &i64, b: &i64) -> i64 {
        *a.max(b)
    }
    fn is_idempotent(&self) -> bool {
        true
    }
}

/// Minimum of `i64` inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinAgg;

impl Aggregate for MinAgg {
    type Value = i64;
    fn identity(&self) -> i64 {
        i64::MAX
    }
    fn combine(&self, a: &i64, b: &i64) -> i64 {
        *a.min(b)
    }
    fn is_idempotent(&self) -> bool {
        true
    }
}

/// Sum of `i64` inputs (duplicate-sensitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SumAgg;

impl Aggregate for SumAgg {
    type Value = i64;
    fn identity(&self) -> i64 {
        0
    }
    fn combine(&self, a: &i64, b: &i64) -> i64 {
        a.wrapping_add(*b)
    }
}

/// Boolean disjunction (e.g. "has any sensor triggered?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OrAgg;

impl Aggregate for OrAgg {
    type Value = bool;
    fn identity(&self) -> bool {
        false
    }
    fn combine(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn is_idempotent(&self) -> bool {
        true
    }
}

/// Running `(sum, count)` pair for averages.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AvgAgg;

/// Partial state of [`AvgAgg`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AvgValue {
    /// Sum of inputs.
    pub sum: f64,
    /// Number of inputs.
    pub count: u64,
}

impl AvgValue {
    /// A single input sample.
    pub fn sample(x: f64) -> Self {
        AvgValue { sum: x, count: 1 }
    }

    /// The average, or `None` for the empty aggregate.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

impl Aggregate for AvgAgg {
    type Value = AvgValue;
    fn identity(&self) -> AvgValue {
        AvgValue::default()
    }
    fn combine(&self, a: &AvgValue, b: &AvgValue) -> AvgValue {
        AvgValue {
            sum: a.sum + b.sum,
            count: a.count + b.count,
        }
    }
}

/// Number of registers in an [`FmSketch`] value.
pub const FM_REGISTERS: usize = 16;

/// Flajolet–Martin distinct-count sketch: a *duplicate-insensitive*
/// (idempotent) approximate counter.
///
/// Each node inserts its unique id; unions are bitwise ORs, so the sketch
/// rides the `O(D + log n)` flood path while still estimating `n` — the
/// trick the paper's reference \[2\] uses for fast duplicate-sensitive
/// aggregation without exact trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FmSketch;

/// Register state of an [`FmSketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmValue {
    registers: [u64; FM_REGISTERS],
}

impl Default for FmValue {
    fn default() -> Self {
        FmValue {
            registers: [0; FM_REGISTERS],
        }
    }
}

impl FmValue {
    /// The empty sketch.
    pub fn empty() -> Self {
        FmValue::default()
    }

    /// A sketch containing exactly one item.
    pub fn of_item(item: u64) -> Self {
        let mut v = FmValue::empty();
        v.insert(item);
        v
    }

    /// Inserts an item (idempotently).
    pub fn insert(&mut self, item: u64) {
        for (r, reg) in self.registers.iter_mut().enumerate() {
            let h = mca_radio::rng::mix64(item ^ ((r as u64 + 1) << 56));
            let bit = h.trailing_zeros().min(63);
            *reg |= 1u64 << bit;
        }
    }

    /// Estimated number of distinct items inserted (Flajolet–Martin:
    /// `2^R̄ / 0.77351` where `R̄` averages the lowest unset bit position).
    pub fn estimate(&self) -> f64 {
        let mean_r: f64 = self
            .registers
            .iter()
            .map(|&reg| (!reg).trailing_zeros() as f64)
            .sum::<f64>()
            / FM_REGISTERS as f64;
        2f64.powf(mean_r) / 0.77351
    }
}

impl Aggregate for FmSketch {
    type Value = FmValue;
    fn identity(&self) -> FmValue {
        FmValue::empty()
    }
    fn combine(&self, a: &FmValue, b: &FmValue) -> FmValue {
        let mut out = *a;
        for (o, r) in out.registers.iter_mut().zip(b.registers.iter()) {
            *o |= r;
        }
        out
    }
    fn is_idempotent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_laws<A: Aggregate>(agg: &A, vals: &[A::Value]) {
        let id = agg.identity();
        for a in vals {
            assert_eq!(&agg.combine(a, &id), a, "identity law");
            if agg.is_idempotent() {
                assert_eq!(&agg.combine(a, a), a, "idempotence");
            }
            for b in vals {
                assert_eq!(agg.combine(a, b), agg.combine(b, a), "commutativity");
                for c in vals {
                    assert_eq!(
                        agg.combine(a, &agg.combine(b, c)),
                        agg.combine(&agg.combine(a, b), c),
                        "associativity"
                    );
                }
            }
        }
    }

    #[test]
    fn max_min_sum_or_laws() {
        check_laws(&MaxAgg, &[-5, 0, 3, i64::MIN, i64::MAX]);
        check_laws(&MinAgg, &[-5, 0, 3, i64::MIN, i64::MAX]);
        check_laws(&SumAgg, &[-5, 0, 3, 17]);
        check_laws(&OrAgg, &[true, false]);
    }

    #[test]
    fn avg_combines_to_true_mean() {
        let agg = AvgAgg;
        let vals = [1.0, 2.0, 3.0, 10.0];
        let total = vals
            .iter()
            .map(|&x| AvgValue::sample(x))
            .fold(agg.identity(), |acc, v| agg.combine(&acc, &v));
        assert_eq!(total.count, 4);
        assert!((total.mean().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(agg.identity().mean(), None);
    }

    #[test]
    fn fm_idempotent_and_accurate() {
        let agg = FmSketch;
        let mut v = FmValue::empty();
        for i in 0..1000u64 {
            v.insert(i);
        }
        // Re-inserting changes nothing.
        let mut v2 = v;
        for i in 0..1000u64 {
            v2.insert(i);
        }
        assert_eq!(v, v2);
        // Union with itself changes nothing.
        assert_eq!(agg.combine(&v, &v), v);
        // Estimate within a factor of 2 (16 registers).
        let est = v.estimate();
        assert!(
            est > 500.0 && est < 2000.0,
            "estimate {est} too far from 1000"
        );
    }

    #[test]
    fn fm_union_equals_insert_all() {
        let agg = FmSketch;
        let mut a = FmValue::empty();
        let mut b = FmValue::empty();
        let mut all = FmValue::empty();
        for i in 0..100u64 {
            if i % 2 == 0 {
                a.insert(i);
            } else {
                b.insert(i);
            }
            all.insert(i);
        }
        assert_eq!(agg.combine(&a, &b), all);
    }

    #[test]
    fn fm_empty_estimates_near_zero() {
        assert!(FmValue::empty().estimate() < 2.0);
    }

    proptest! {
        #[test]
        fn sum_agrees_with_iter_sum(xs in proptest::collection::vec(-1000i64..1000, 0..50)) {
            let agg = SumAgg;
            let folded = xs.iter().fold(agg.identity(), |acc, x| agg.combine(&acc, x));
            prop_assert_eq!(folded, xs.iter().sum::<i64>());
        }

        #[test]
        fn max_agrees_with_iter_max(xs in proptest::collection::vec(-1000i64..1000, 1..50)) {
            let agg = MaxAgg;
            let folded = xs.iter().fold(agg.identity(), |acc, x| agg.combine(&acc, x));
            prop_assert_eq!(folded, *xs.iter().max().unwrap());
        }

        #[test]
        fn fm_insert_order_irrelevant(mut xs in proptest::collection::vec(0u64..10_000, 1..40)) {
            let mut fwd = FmValue::empty();
            for &x in &xs { fwd.insert(x); }
            xs.reverse();
            let mut rev = FmValue::empty();
            for &x in &xs { rev.insert(x); }
            prop_assert_eq!(fwd, rev);
        }
    }
}
