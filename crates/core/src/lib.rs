//! # `mca-core` — the paper's algorithms
//!
//! Reproduction of the algorithmic contribution of Halldórsson–Wang–Yu,
//! *Leveraging Multiple Channels in Ad Hoc Networks* (PODC 2015):
//! ruling sets, the hierarchical aggregation structure, data aggregation
//! with linear channel speedup, and node coloring — all as distributed
//! protocols executed on the `mca-radio` SINR simulator.
//!
//! Top-level entry points live in [`structure`]:
//! build the aggregation structure, then run aggregation or coloring on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggfun;
pub mod aggregate;
pub mod broadcast;
pub mod cluster;
pub mod coloring;
pub mod config;
pub mod csa;
pub mod csa_small;
pub mod dominate;
pub mod greedy_color;
pub mod knowledge;
pub mod leader;
pub mod maintain;
pub mod mis;
pub mod reporter;
pub mod ruling;
pub mod schedule;
pub mod stages;
pub mod structure;
pub mod tree;
pub mod validate;

pub use aggfun::{Aggregate, AvgAgg, AvgValue, FmSketch, FmValue, MaxAgg, MinAgg, OrAgg, SumAgg};
pub use broadcast::{
    broadcast, broadcast_many, BcastAgg, BroadcastOutcome, GossipOutcome, Sourced,
};
pub use coloring::{color_nodes, ColoringOutcome};
pub use config::{AlgoConfig, Constants};
pub use knowledge::{NodeRecord, Role};
pub use leader::{elect_leader, Candidate, LeaderAgg, LeaderOutcome};
pub use maintain::{MaintainConfig, RepairKind, RepairReport, StructureMaintainer};
pub use mis::{maximal_independent_set, ruling_set, MisConfig, MisOutcome};
pub use ruling::{ProbPolicy, RulingConfig, RulingMsg, RulingOutcome, RulingSet};
pub use schedule::{Tdma, TdmaSlot};
pub use structure::{
    aggregate, build_structure, build_structure_masked, build_structure_observed, AggregateOutcome,
    AggregationStructure, BuildReport, CsaVariant, InterclusterMode, NetworkEnv, StructureConfig,
    SubstrateMode,
};
pub use validate::{audit_structure, audit_structure_masked, AuditTolerances, StructureAudit};
