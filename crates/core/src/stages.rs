//! The §5 construction pipeline, decomposed into reusable stages.
//!
//! [`build_structure`](crate::structure::build_structure) used to be a
//! monolith; these stage functions are its pieces, factored out so the
//! structure *lifecycle* layer ([`crate::maintain`]) can re-invoke them
//! locally — a dominating-set patch among orphaned nodes, a recoloring
//! patch around fresh dominators, a reporter re-election confined to the
//! clusters a repair touched — instead of rebuilding from scratch.
//!
//! Every stage accepts a liveness mask (`alive`): nodes that are not part
//! of the network (crashed, or not yet joined) are absent from the stage
//! engines — they neither transmit, listen, nor observe — exactly as the
//! engine's own [`FaultPlan`] semantics dictate. `alive = None` means
//! everyone participates, and each stage is then bit-identical to the
//! corresponding block of the original monolithic build.
//!
//! All stages report their slot count, so repair cost is measured in the
//! same currency as construction cost.

use crate::cluster::{self, ClusterOutcome};
use crate::csa::{CsaConfig, CsaProtocol, CsaRole};
use crate::csa_small::{run_csa_small, SmallSeat};
use crate::dominate::{self, DominateConfig, DominateProtocol, DominatingOutcome};
use crate::greedy_color::{ClaimCfg, GreedyColor};
use crate::knowledge::{NodeRecord, Role};
use crate::reporter::{elect_reporters, ElectionSeat};
use crate::schedule::Tdma;
use crate::structure::{CsaVariant, NetworkEnv, StructureConfig, SubstrateMode};
use mca_radio::{Channel, Engine, FaultPlan, NodeId};
use std::collections::{HashMap, HashSet};

/// A fault plan that keeps every node not marked alive out of a stage
/// engine (crash-stopped from slot 0). `alive = None` is the trivial plan.
pub fn absence_plan(alive: Option<&[bool]>) -> FaultPlan {
    let mut plan = FaultPlan::none();
    if let Some(alive) = alive {
        for (i, &a) in alive.iter().enumerate() {
            if !a {
                plan.crash_at(i as u32, 0);
            }
        }
    }
    plan
}

/// Whether node `i` is live under an optional mask.
pub(crate) fn is_live(alive: Option<&[bool]>, i: usize) -> bool {
    alive.is_none_or(|a| a[i])
}

/// Phase 1 — the dominating-set substrate over the nodes with
/// `active[i] = true` (everyone else is absent). For the full build
/// `active` is the liveness mask; for a repair patch it is the uncovered
/// orphans, which elect dominators among themselves only.
pub fn dominating_stage(
    env: &NetworkEnv,
    cfg: &StructureConfig,
    active: &[bool],
    seed: u64,
) -> DominatingOutcome {
    let n = env.len();
    assert_eq!(active.len(), n, "one participation flag per node required");
    let algo = &cfg.algo;
    match cfg.substrate {
        SubstrateMode::Oracle => {
            dominate::oracle_masked(&env.positions, cfg.cluster_radius, seed, Some(active))
        }
        SubstrateMode::Distributed => {
            let mut dc = DominateConfig::from_algo(algo);
            dc.radius = cfg.cluster_radius;
            dc.busy_threshold = algo.node_params().received_power(2.0 * cfg.cluster_radius);
            let protocols: Vec<DominateProtocol> = (0..n)
                .map(|i| DominateProtocol::new(NodeId(i as u32), dc))
                .collect();
            let mut engine = Engine::new(
                env.params,
                env.positions.clone(),
                protocols,
                mca_radio::rng::derive_seed(seed, 0xD011),
            )
            .with_faults(absence_plan(Some(active)));
            engine.run_until_done(dc.rounds * dominate::SLOTS_PER_ROUND as u64 + 3);
            let slots = engine.slot();
            dominate::collect(engine.protocols(), slots)
        }
    }
}

/// Phases 2+3 — dominator coloring and announce/attach (see
/// [`cluster::build_clusters`]), with absent nodes masked out of both
/// engines.
pub fn cluster_stage(
    env: &NetworkEnv,
    cfg: &StructureConfig,
    dominating: &DominatingOutcome,
    seed: u64,
    alive: Option<&[bool]>,
) -> ClusterOutcome {
    cluster::build_clusters(
        &env.params,
        &env.positions,
        dominating,
        &cfg.algo,
        seed,
        cfg.max_phi,
        cfg.cluster_radius,
        alive,
    )
}

/// Outcome of the cluster-size-approximation stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsaStageOutcome {
    /// Slots consumed.
    pub slots: u64,
    /// Estimates back-filled from the cluster's coordinator (missed notify
    /// receptions; quality metric).
    pub estimate_fills: usize,
}

/// Phase 4 — cluster-size approximation (Lemma 14 dispatch between the
/// large-`Δ̂` single-channel and small-`Δ̂` multi-channel variants).
/// Writes `cluster_size_est` and `cluster_channels` into `records` for
/// every live clustered node.
pub fn csa_stage(
    env: &NetworkEnv,
    cfg: &StructureConfig,
    records: &mut [NodeRecord],
    phi: u16,
    seed: u64,
    alive: Option<&[bool]>,
) -> CsaStageOutcome {
    let n = env.len();
    assert_eq!(records.len(), n);
    let algo = &cfg.algo;
    let mut out = CsaStageOutcome::default();
    let use_small = match cfg.csa_variant {
        CsaVariant::Large => false,
        CsaVariant::Small => true,
        CsaVariant::Auto => algo.channels > 1 && algo.csa_small_applies(cfg.delta_hat()),
    };
    if use_small {
        let seats: Vec<Option<SmallSeat>> = (0..n)
            .map(|i| {
                if !is_live(alive, i) {
                    return None;
                }
                match (records[i].cluster, records[i].cluster_color) {
                    (Some(c), Some(col)) => Some(SmallSeat {
                        cluster: c,
                        color: col,
                        is_dominator: records[i].role.is_dominator(),
                    }),
                    _ => None,
                }
            })
            .collect();
        let small = run_csa_small(
            &env.params,
            &env.positions,
            &seats,
            algo,
            phi,
            cfg.cluster_radius,
            cfg.delta_hat(),
            mca_radio::rng::derive_seed(seed, 0xC5B),
        );
        out.slots = small.total_slots();
        // Back-fill members that missed the broadcast from their dominator.
        for (i, rec) in records.iter_mut().enumerate() {
            if !is_live(alive, i) {
                continue;
            }
            let Some(c) = rec.cluster else {
                continue;
            };
            let est = match small.estimate[i] {
                Some(e) => e,
                None => {
                    out.estimate_fills += 1;
                    small.estimate[c.index()].unwrap_or(2)
                }
            };
            rec.cluster_size_est = Some(est.max(1));
            rec.cluster_channels = Some(algo.cluster_channels(est.max(1)));
        }
        return out;
    }
    let csa_cfg = CsaConfig {
        delta_hat: cfg.delta_hat(),
        lambda: algo.consts.lambda,
        rounds_per_phase: algo.csa_rounds_per_phase(),
        settle_threshold: algo.csa_settle_threshold(),
        channel: Channel::FIRST,
        tdma: Tdma::new(phi.max(1), 1),
        params: algo.node_params(),
    };
    let protocols: Vec<CsaProtocol> = (0..n)
        .map(|i| {
            if !is_live(alive, i) {
                return CsaProtocol::new(CsaRole::Passive, NodeId(i as u32), 0, csa_cfg);
            }
            match (records[i].role, records[i].cluster) {
                (Role::Dominator, Some(c)) => CsaProtocol::new(
                    CsaRole::Coordinator,
                    c,
                    records[i].cluster_color.unwrap_or(0),
                    csa_cfg,
                ),
                (_, Some(c)) => CsaProtocol::new(
                    CsaRole::Member,
                    c,
                    records[i].cluster_color.unwrap_or(0),
                    csa_cfg,
                ),
                _ => CsaProtocol::new(CsaRole::Passive, NodeId(i as u32), 0, csa_cfg),
            }
        })
        .collect();
    let mut engine = Engine::new(
        env.params,
        env.positions.clone(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xC5A),
    )
    .with_faults(absence_plan(alive));
    let csa_cap = csa_cfg.tdma.slots_for_rounds(csa_cfg.total_rounds()) + 1;
    engine.run_until(csa_cap, |ps: &[CsaProtocol]| {
        ps.iter().all(|p| p.is_satisfied())
    });
    out.slots = engine.slot();
    let csa_out = engine.into_protocols();
    // Coordinator estimates per cluster (for back-filling members that
    // missed the notify; counted as a quality metric).
    let mut estimates: HashMap<NodeId, u64> = HashMap::new();
    for (i, p) in csa_out.iter().enumerate() {
        if let Some(est) = p.coordinator_estimate() {
            estimates.insert(NodeId(i as u32), est);
        }
    }
    for i in 0..n {
        if !is_live(alive, i) {
            continue;
        }
        let Some(c) = records[i].cluster else {
            continue;
        };
        let est = match records[i].role {
            Role::Dominator => csa_out[i].coordinator_estimate(),
            _ => csa_out[i].member_estimate(),
        };
        let est = match est {
            Some(e) => e,
            None => {
                out.estimate_fills += 1;
                // A coordinator that never settled presides over a cluster
                // too small to clear the threshold in any phase — the
                // last-phase estimate is the right order of magnitude.
                estimates
                    .get(&c)
                    .copied()
                    .unwrap_or_else(|| csa_cfg.estimate_for_phase(csa_cfg.phases() - 1))
            }
        };
        records[i].cluster_size_est = Some(est.max(1));
        records[i].cluster_channels = Some(algo.cluster_channels(est.max(1)));
    }
    out
}

/// Phase 5 — reporter election, optionally confined to the clusters in
/// `scope` (everyone else sits the election out, keeping whatever reporter
/// state they had). In-scope clusters first have their reporter state
/// cleared, then the election outcome is applied: reporter roles, channel
/// choices, and the dominator's channel-0 rescue flag. Returns the slots
/// consumed.
pub fn election_stage(
    env: &NetworkEnv,
    cfg: &StructureConfig,
    records: &mut [NodeRecord],
    phi: u16,
    scope: Option<&HashSet<NodeId>>,
    seed: u64,
    alive: Option<&[bool]>,
) -> u64 {
    let n = env.len();
    assert_eq!(records.len(), n);
    let in_scope = |c: NodeId| scope.is_none_or(|s| s.contains(&c));
    for rec in records.iter_mut() {
        let Some(c) = rec.cluster else {
            continue;
        };
        if !in_scope(c) {
            continue;
        }
        if rec.role.is_reporter() {
            rec.role = Role::Follower;
        }
        rec.channel = None;
        rec.serves_channel0 = false;
    }
    let seats: Vec<Option<ElectionSeat>> = (0..n)
        .map(|i| {
            if !is_live(alive, i) {
                return None;
            }
            let r = &records[i];
            match (r.cluster, r.cluster_color, r.cluster_size_est) {
                (Some(c), Some(col), Some(est)) if in_scope(c) => Some(ElectionSeat {
                    cluster: c,
                    color: col,
                    size_est: est,
                    is_dominator: r.role.is_dominator(),
                }),
                _ => None,
            }
        })
        .collect();
    // A scoped election only schedules the participating clusters, so the
    // TDMA palette compresses to their colors: same-color clusters stay
    // mutually separated (that is what sharing a color certifies), distinct
    // colors stay distinct, and the round length drops from `phi` to the
    // number of colors actually electing.
    let (seats, phi) = if scope.is_some() {
        let mut dense: std::collections::BTreeMap<u16, u16> = std::collections::BTreeMap::new();
        for s in seats.iter().flatten() {
            let next = dense.len() as u16;
            dense.entry(s.color).or_insert(next);
        }
        let compressed: Vec<Option<ElectionSeat>> = seats
            .into_iter()
            .map(|s| {
                s.map(|mut seat| {
                    seat.color = dense[&seat.color];
                    seat
                })
            })
            .collect();
        let phi = (dense.len() as u16).max(1);
        (compressed, phi)
    } else {
        (seats, phi)
    };
    let election = elect_reporters(
        &env.params,
        &env.positions,
        &seats,
        &cfg.algo,
        phi.max(1),
        cfg.cluster_radius,
        seed,
    );
    for (i, rec) in records.iter_mut().enumerate() {
        if seats[i].is_none() {
            continue;
        }
        rec.channel = election.channel[i];
        if election.is_reporter[i] {
            let heap_pos = election.channel[i].map(|c| c.0 + 1).unwrap_or(1);
            rec.role = Role::Reporter { heap_pos };
        }
        if rec.role.is_dominator() && !election.dominator_heard_in[i] {
            rec.serves_channel0 = true;
        }
    }
    election.slots
}

/// A node's part in a [`color_patch_stage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorSeat {
    /// A fresh dominator that needs a color.
    Claimant,
    /// An established dominator beaconing its committed color so claimants
    /// keep clear of the palette in force.
    Committed(u16),
    /// Not part of the patch (silent).
    Out,
}

/// Outcome of a recoloring patch.
#[derive(Debug, Clone)]
pub struct ColorPatchOutcome {
    /// Committed color per claimant (`None` for non-claimants, and for the
    /// rare claimant that failed to commit within the round budget —
    /// callers assign those a fresh unique color, as the build does).
    pub colors: Vec<Option<u16>>,
    /// Slots consumed.
    pub slots: u64,
}

/// A local recoloring patch: `Claimant` seats run the claim-based greedy
/// coloring while `Committed` seats anchor the existing palette, so fresh
/// colors respect the `R_{ε/2}` separation against established dominators
/// without re-running the global coloring phase.
pub fn color_patch_stage(
    env: &NetworkEnv,
    cfg: &StructureConfig,
    seats: &[ColorSeat],
    seed: u64,
) -> ColorPatchOutcome {
    let n = env.len();
    assert_eq!(seats.len(), n, "one color seat per node required");
    let algo = &cfg.algo;
    let node_params = algo.node_params();
    let r_sep = (2.0 * cfg.cluster_radius + node_params.r_eps()).max(node_params.r_eps_half());
    let claim_cfg = ClaimCfg {
        radius: r_sep,
        p: algo.density_tx_prob(),
        busy_threshold: node_params.received_power(1.5 * r_sep),
        p_committed: algo.density_tx_prob() / 2.0,
        stable_tx: 6,
        rounds: algo.announce_rounds() * 8,
        params: node_params,
    };
    let protocols: Vec<GreedyColor> = seats
        .iter()
        .enumerate()
        .map(|(i, seat)| match *seat {
            ColorSeat::Claimant => GreedyColor::new(NodeId(i as u32), claim_cfg),
            ColorSeat::Committed(c) => GreedyColor::committed(NodeId(i as u32), claim_cfg, c),
            ColorSeat::Out => GreedyColor::passive(NodeId(i as u32), claim_cfg),
        })
        .collect();
    let mut engine = Engine::new(
        env.params,
        env.positions.clone(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xC0102),
    );
    engine.run_until(claim_cfg.rounds, |ps: &[GreedyColor]| {
        ps.iter()
            .zip(seats)
            .all(|(p, s)| *s != ColorSeat::Claimant || p.color().is_some())
    });
    let tail = (2 * algo.announce_rounds()).min(claim_cfg.rounds.saturating_sub(engine.slot()));
    engine.run(tail);
    let slots = engine.slot();
    let out = engine.into_protocols();
    let colors = out
        .iter()
        .zip(seats)
        .map(|(p, s)| match s {
            ColorSeat::Claimant => p.color(),
            _ => None,
        })
        .collect();
    ColorPatchOutcome { colors, slots }
}

/// Channel-fill accounting over finished records: `(filled, total)` where
/// `filled` counts cluster channels with an elected reporter and `total`
/// counts the electable channels (`min(f_v, members)` per cluster — a
/// channel can only be filled if the cluster has a member to elect).
pub fn channel_accounting(records: &[NodeRecord]) -> (usize, usize) {
    let mut filled: HashSet<(NodeId, u16)> = HashSet::new();
    for rec in records.iter().filter(|r| r.role.is_reporter()) {
        if let (Some(c), Some(ch)) = (rec.cluster, rec.channel) {
            filled.insert((c, ch.0));
        }
    }
    let mut member_count: HashMap<NodeId, usize> = HashMap::new();
    for r in records.iter() {
        if let (Some(c), false) = (r.cluster, r.role.is_dominator()) {
            *member_count.entry(c).or_default() += 1;
        }
    }
    let total = records
        .iter()
        .filter(|r| r.role.is_dominator())
        .map(|r| {
            let fv = r.cluster_channels.unwrap_or(1) as usize;
            let members = member_count.get(&r.id).copied().unwrap_or(0);
            fv.min(members)
        })
        .sum();
    (filled.len(), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoConfig;
    use mca_geom::{Deployment, Point};
    use mca_sinr::SinrParams;
    use rand::{rngs::SmallRng, SeedableRng};

    fn env_and_cfg(n: usize, side: f64, seed: u64) -> (NetworkEnv, StructureConfig) {
        let params = SinrParams::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let env = NetworkEnv::new(params, &deploy);
        let algo = AlgoConfig::practical(4, &params, n);
        let mut cfg = StructureConfig::new(algo, seed);
        cfg.substrate = SubstrateMode::Oracle;
        (env, cfg)
    }

    #[test]
    fn absence_plan_matches_mask() {
        let plan = absence_plan(Some(&[true, false, true]));
        assert!(!plan.is_absent(0, 100));
        assert!(plan.is_absent(1, 0));
        assert!(!plan.is_absent(2, 0));
        assert!(absence_plan(None).is_trivial());
    }

    #[test]
    fn dominating_stage_respects_participation() {
        let (env, cfg) = env_and_cfg(80, 9.0, 3);
        let mut active = vec![true; 80];
        for i in 0..40 {
            active[i] = false;
        }
        let out = dominating_stage(&env, &cfg, &active, 3);
        for i in 0..40 {
            assert!(!out.is_dominator[i], "inactive node {i} became dominator");
            assert!(out.dominator_of[i].is_none());
        }
        // Active half is fully covered.
        for i in 40..80 {
            assert!(out.dominator_of[i].is_some(), "active node {i} uncovered");
        }
    }

    #[test]
    fn color_patch_respects_committed_anchors() {
        // A claimant between two committed anchors (colors 0 and 1) within
        // r_sep must pick a third color.
        let params = SinrParams::default();
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(1.5, 0.0),
        ];
        let env = NetworkEnv { params, positions };
        let algo = AlgoConfig::practical(4, &params, 16);
        let cfg = StructureConfig::new(algo, 5);
        let seats = vec![
            ColorSeat::Committed(0),
            ColorSeat::Committed(1),
            ColorSeat::Claimant,
        ];
        let out = color_patch_stage(&env, &cfg, &seats, 9);
        assert!(out.slots > 0, "the patch must consume slots");
        assert_eq!(out.colors[0], None, "anchors report no new color");
        let c = out.colors[2].expect("claimant must commit");
        assert!(c >= 2, "claimant took an anchored color: {c}");
    }

    #[test]
    fn channel_accounting_matches_build_report() {
        let (env, cfg) = env_and_cfg(150, 10.0, 11);
        let s = crate::structure::build_structure(&env, &cfg);
        let (filled, total) = channel_accounting(&s.records);
        assert_eq!(filled, s.report.channels_filled);
        assert_eq!(total, s.report.channels_total);
    }
}
