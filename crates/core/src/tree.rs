//! The reporter tree: a complete binary tree over channel positions
//! (paper §5.2.2, Lemma 16).
//!
//! Reporters are addressed by their 1-based *heap position* `k` (the
//! reporter elected on channel `F_k` sits at position `k`); the dominator is
//! position 0, the parent of position 1. `u_{⌊k/2⌋}` is the parent of `u_k`.
//! The tree is never built explicitly — every node derives schedule, parent,
//! and channel from its position, which is why tree formation costs zero
//! communication (Lemma 16).

use mca_radio::Channel;

/// Geometry of the reporter tree for a cluster using `fv` channels.
///
/// # Examples
///
/// ```
/// use mca_core::tree::HeapTree;
/// let t = HeapTree::new(7);
/// assert_eq!(t.parent(5), 2);
/// assert_eq!(t.depth(1), 1);
/// assert_eq!(t.max_depth(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapTree {
    fv: u16,
}

impl HeapTree {
    /// Tree over positions `1..=fv` (plus the dominator at position 0).
    ///
    /// # Panics
    ///
    /// Panics if `fv == 0`.
    pub fn new(fv: u16) -> Self {
        assert!(fv >= 1, "a cluster uses at least one channel");
        HeapTree { fv }
    }

    /// Number of reporter positions.
    pub fn size(&self) -> u16 {
        self.fv
    }

    /// Parent position of `k` (position 1's parent is the dominator, 0).
    ///
    /// # Panics
    ///
    /// Panics for `k == 0` or `k > fv`.
    pub fn parent(&self, k: u16) -> u16 {
        assert!(k >= 1 && k <= self.fv, "position {k} out of range");
        k / 2
    }

    /// Children of position `k` (0 = dominator) that exist in this tree.
    pub fn children(&self, k: u16) -> impl Iterator<Item = u16> + '_ {
        let (lo, hi) = if k == 0 {
            (1u32, 1u32) // the dominator's only child is position 1
        } else {
            (2 * k as u32, 2 * k as u32 + 1)
        };
        (lo..=hi)
            .filter(move |&c| c <= self.fv as u32)
            .map(|c| c as u16)
    }

    /// Depth of position `k`: dominator 0, position 1 is 1, etc.
    pub fn depth(&self, k: u16) -> u16 {
        if k == 0 {
            0
        } else {
            assert!(k <= self.fv, "position {k} out of range");
            (u16::BITS - k.leading_zeros()) as u16
        }
    }

    /// Depth of the deepest position.
    pub fn max_depth(&self) -> u16 {
        self.depth(self.fv)
    }

    /// The channel a reporter at position `k ≥ 1` was elected on
    /// (`F_k` is `Channel(k−1)`); the dominator (0) listens on the first
    /// channel.
    pub fn channel_of(&self, k: u16) -> Channel {
        if k == 0 {
            Channel::FIRST
        } else {
            Channel(k - 1)
        }
    }

    /// Convergecast round (0-based) in which position `k ≥ 1` transmits to
    /// its parent: deepest positions go first, position 1 goes last.
    pub fn tx_round(&self, k: u16) -> u16 {
        self.max_depth() - self.depth(k)
    }

    /// Number of convergecast rounds (= max depth; every depth gets one).
    pub fn rounds(&self) -> u16 {
        self.max_depth()
    }

    /// Sub-slot parity per the paper: odd positions transmit in the first
    /// send slot, even positions in the second.
    pub fn is_first_subslot(&self, k: u16) -> bool {
        k % 2 == 1
    }

    /// Whether the *odd* sibling of `k` exists (used by the takeover rule:
    /// an even child claims a vacant parent only when it has no odd sibling
    /// to do so).
    pub fn odd_sibling_exists(&self, k: u16) -> bool {
        if k % 2 == 1 {
            true // k itself is odd
        } else {
            k < self.fv
        }
    }

    /// Lemma 16's bound: a convergecast completes within
    /// `2·⌊log₂(fv + 1)⌋` send slots.
    pub fn lemma16_slots(&self) -> u16 {
        2 * (u32::BITS - (self.fv as u32 + 1).leading_zeros() - 1) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn structure_of_seven() {
        let t = HeapTree::new(7);
        assert_eq!(t.parent(1), 0);
        assert_eq!(t.parent(2), 1);
        assert_eq!(t.parent(3), 1);
        assert_eq!(t.parent(7), 3);
        assert_eq!(t.depth(1), 1);
        assert_eq!(t.depth(3), 2);
        assert_eq!(t.depth(7), 3);
        assert_eq!(t.max_depth(), 3);
        assert_eq!(t.rounds(), 3);
        let kids: Vec<u16> = t.children(1).collect();
        assert_eq!(kids, vec![2, 3]);
        let root_kids: Vec<u16> = t.children(0).collect();
        assert_eq!(root_kids, vec![1]);
    }

    #[test]
    fn partial_last_level() {
        let t = HeapTree::new(5);
        let kids2: Vec<u16> = t.children(2).collect();
        assert_eq!(kids2, vec![4, 5]);
        let kids3: Vec<u16> = t.children(3).collect();
        assert!(kids3.is_empty());
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn singleton_tree() {
        let t = HeapTree::new(1);
        assert_eq!(t.parent(1), 0);
        assert_eq!(t.max_depth(), 1);
        assert_eq!(t.rounds(), 1);
        assert_eq!(t.tx_round(1), 0);
        assert_eq!(t.lemma16_slots(), 2);
    }

    #[test]
    fn channels_match_positions() {
        let t = HeapTree::new(4);
        assert_eq!(t.channel_of(0), Channel(0));
        assert_eq!(t.channel_of(1), Channel(0));
        assert_eq!(t.channel_of(4), Channel(3));
    }

    #[test]
    fn schedule_orders_deepest_first() {
        let t = HeapTree::new(7);
        assert_eq!(t.tx_round(7), 0);
        assert_eq!(t.tx_round(4), 0);
        assert_eq!(t.tx_round(2), 1);
        assert_eq!(t.tx_round(1), 2);
    }

    #[test]
    fn subslot_parity() {
        let t = HeapTree::new(6);
        assert!(t.is_first_subslot(1));
        assert!(t.is_first_subslot(5));
        assert!(!t.is_first_subslot(2));
    }

    #[test]
    fn odd_sibling_logic() {
        let t = HeapTree::new(4);
        assert!(t.odd_sibling_exists(3)); // odd itself
        assert!(!t.odd_sibling_exists(4)); // sibling 5 doesn't exist
        let t6 = HeapTree::new(6);
        assert!(!t6.odd_sibling_exists(6)); // 7 missing
        assert!(t6.odd_sibling_exists(2)); // 3 exists
    }

    #[test]
    fn lemma16_examples() {
        // fv = 7: 2*log2(8) = 6; fv = 1: 2*log2(2) = 2.
        assert_eq!(HeapTree::new(7).lemma16_slots(), 6);
        assert_eq!(HeapTree::new(3).lemma16_slots(), 4);
        assert_eq!(HeapTree::new(15).lemma16_slots(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_rejected() {
        HeapTree::new(0);
    }

    proptest! {
        #[test]
        fn parent_child_consistency(fv in 1u16..512, k in 1u16..512) {
            prop_assume!(k <= fv);
            let t = HeapTree::new(fv);
            if k > 1 {
                let p = t.parent(k);
                prop_assert!(t.children(p).any(|c| c == k));
                prop_assert_eq!(t.depth(k), t.depth(p) + 1);
            }
            // Every position reaches the dominator by following parents.
            let mut cur = k;
            let mut hops = 0;
            while cur != 0 {
                cur = t.parent(cur);
                hops += 1;
                prop_assert!(hops <= 17, "parent chain too long");
            }
            prop_assert_eq!(hops, t.depth(k));
        }

        #[test]
        fn depth_bounded_by_log(fv in 1u16..1024) {
            let t = HeapTree::new(fv);
            let expect = (fv as f64 + 1.0).log2().ceil() as u16;
            prop_assert!(t.max_depth() <= expect + 1);
            prop_assert!(t.max_depth() >= expect.saturating_sub(1).max(1));
        }

        #[test]
        fn tx_rounds_respect_depth_order(fv in 2u16..300, a in 1u16..300, b in 1u16..300) {
            prop_assume!(a <= fv && b <= fv);
            let t = HeapTree::new(fv);
            if t.depth(a) > t.depth(b) {
                prop_assert!(t.tx_round(a) < t.tx_round(b));
            }
        }
    }
}
