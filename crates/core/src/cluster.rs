//! Cluster coloring and the cluster announce/attach phase (paper §5.1.2).
//!
//! *Coloring*: dominators are colored so that any two within `R_{ε/2}` get
//! different colors. Phase `i` runs the §4 ruling set among still-uncolored
//! dominators with `r = R_{ε/2}`; ruling-set members take color `i`
//! (Lemma 8). The number of phases needed is the local density `φ ∈ O(1)`;
//! we run adaptively until all dominators are colored (capped), and report
//! the φ actually used — see `DESIGN.md` deviation #4.
//!
//! *Announce*: colored dominators beacon `(id, color)` with the
//! constant-density probability; every other node attaches to the nearest
//! announcing dominator within `r_c` (preferring the dominator that
//! recruited it in the dominating-set phase) and learns the cluster color.

use crate::config::AlgoConfig;
use crate::dominate::DominatingOutcome;
use crate::greedy_color::{ClaimCfg, GreedyColor};
use mca_geom::Point;
use mca_radio::{Action, Channel, Engine, NodeId, Observation, Protocol};
use mca_sinr::SinrParams;
use rand::rngs::SmallRng;
use rand::Rng;

/// Message of the announce phase. The sender's identity travels in the
/// frame header (surfaced as `Reception::from`), so the payload only needs
/// the color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnounceMsg {
    /// "I am a dominator with cluster color `color`."
    Announce {
        /// The announcing dominator's cluster color.
        color: u16,
    },
}

/// Role in the announce phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnounceRole {
    /// A colored dominator broadcasting its identity.
    Dominator {
        /// The dominator's cluster color.
        color: u16,
    },
    /// A node listening for a dominator to attach to; carries the dominator
    /// that recruited it during the dominating-set phase, if any.
    Listener {
        /// Preferred dominator (from the dominating-set phase).
        prior: Option<NodeId>,
    },
}

/// Configuration of the announce phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnounceConfig {
    /// Attach radius (`r_c`).
    pub radius: f64,
    /// Dominator broadcast probability (`1/(2µ)`).
    pub p: f64,
    /// Number of one-slot rounds.
    pub rounds: u64,
    /// Conservative node-side parameters.
    pub params: SinrParams,
}

/// The announce/attach protocol.
#[derive(Debug, Clone)]
pub struct AnnounceProtocol {
    cfg: AnnounceConfig,
    role: AnnounceRole,
    /// Best candidate so far: (dominator, color, distance estimate).
    best: Option<(NodeId, u16, f64)>,
    /// Whether `best` is the prior dominator (sticky once found).
    locked: bool,
    rounds_done: u64,
    finished: bool,
}

impl AnnounceProtocol {
    /// Creates a participant with the given role.
    pub fn new(role: AnnounceRole, cfg: AnnounceConfig) -> Self {
        assert!(cfg.radius > 0.0 && cfg.p > 0.0 && cfg.p <= 1.0 && cfg.rounds > 0);
        AnnounceProtocol {
            cfg,
            role,
            best: None,
            locked: false,
            rounds_done: 0,
            finished: false,
        }
    }

    /// The attachment this listener settled on: `(dominator, color, dist)`.
    pub fn attachment(&self) -> Option<(NodeId, u16, f64)> {
        self.best
    }
}

impl Protocol for AnnounceProtocol {
    type Msg = AnnounceMsg;

    fn act(&mut self, _slot: u64, rng: &mut SmallRng) -> Action<AnnounceMsg> {
        match self.role {
            AnnounceRole::Dominator { color } => {
                if rng.gen_bool(self.cfg.p) {
                    Action::Transmit {
                        channel: Channel::FIRST,
                        msg: AnnounceMsg::Announce { color },
                    }
                } else {
                    Action::Idle
                }
            }
            AnnounceRole::Listener { .. } => Action::Listen {
                channel: Channel::FIRST,
            },
        }
    }

    fn observe(&mut self, _slot: u64, obs: Observation<AnnounceMsg>, _rng: &mut SmallRng) {
        if let (AnnounceRole::Listener { prior }, Observation::Received(r)) = (self.role, &obs) {
            let AnnounceMsg::Announce { color, .. } = r.msg;
            let dist = r.distance_estimate(&self.cfg.params);
            if dist <= self.cfg.radius * 1.02 {
                let from = r.from;
                if Some(from) == prior {
                    self.best = Some((from, color, dist));
                    self.locked = true;
                } else if !self.locked && self.best.is_none_or(|(_, _, bd)| dist < bd) {
                    self.best = Some((from, color, dist));
                }
            }
        }
        self.rounds_done += 1;
        if self.rounds_done >= self.cfg.rounds {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

/// Result of the full clustering pipeline step.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Color per node (only dominators have one).
    pub dominator_color: Vec<Option<u16>>,
    /// Number of colors used (the measured `φ`).
    pub phi: u16,
    /// Per node: `(dominator, cluster color, distance)`; dominators map to
    /// themselves.
    pub membership: Vec<Option<(NodeId, u16, f64)>>,
    /// Slots spent coloring.
    pub coloring_slots: u64,
    /// Slots spent announcing/attaching.
    pub announce_slots: u64,
    /// Number of coloring phases run.
    pub phases: u16,
}

impl ClusterOutcome {
    /// Nodes with no cluster after the phase (coverage holes).
    pub fn unclustered(&self) -> usize {
        self.membership.iter().filter(|m| m.is_none()).count()
    }
}

/// Runs dominator coloring followed by announce/attach.
///
/// `max_phases` caps the adaptive phase loop (the paper's `φ` is a constant
/// given the density bound; we measure it). `alive` masks out nodes that are
/// not part of the network (crashed, or not yet joined): they are absent
/// from both phase engines and end the phase unclustered.
#[allow(clippy::too_many_arguments)] // the stage layer wraps this (stages::cluster_stage)
pub fn build_clusters(
    true_params: &SinrParams,
    positions: &[Point],
    dominating: &DominatingOutcome,
    cfg: &AlgoConfig,
    seed: u64,
    max_phases: u16,
    attach_radius: f64,
    alive: Option<&[bool]>,
) -> ClusterOutcome {
    assert!(attach_radius > 0.0, "attach radius must be positive");
    let _ = max_phases; // retained for API stability; the greedy coloring is single-pass
    let n = positions.len();
    assert_eq!(dominating.is_dominator.len(), n);
    let absence = crate::stages::absence_plan(alive);
    let node_params = cfg.node_params();
    // Separation that makes the final coloring proper across clusters:
    // adjacent nodes' dominators are within 2·r_c + R_ε (the paper's
    // R_{ε/2}, given its r_c = ε·R_T/4 relation). Using the general form
    // keeps correctness when the practical cluster radius differs.
    let r_sep = (2.0 * attach_radius + node_params.r_eps()).max(node_params.r_eps_half());

    // --- Dominator coloring: claim-based greedy (DESIGN.md deviation #9).
    // Same-color separation at R_{eps/2} with ordinary receptions; the
    // ruling-set phase loop of §5.1.2 serializes under Definition 4's
    // clear-reception threshold and inflates φ (and with it the TDMA
    // overhead of every later phase).
    let mut color: Vec<Option<u16>> = vec![None; n];
    let claim_cfg = ClaimCfg {
        radius: r_sep,
        p: cfg.density_tx_prob(),
        busy_threshold: node_params.received_power(1.5 * r_sep),
        p_committed: cfg.density_tx_prob() / 2.0,
        stable_tx: 6,
        rounds: cfg.announce_rounds() * 8,
        params: node_params,
    };
    let protocols: Vec<GreedyColor> = (0..n)
        .map(|i| {
            if dominating.is_dominator[i] {
                GreedyColor::new(NodeId(i as u32), claim_cfg)
            } else {
                GreedyColor::passive(NodeId(i as u32), claim_cfg)
            }
        })
        .collect();
    let mut engine = Engine::new(
        *true_params,
        positions.to_vec(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xC0100),
    )
    .with_faults(absence.clone());
    // Run until every dominator committed, then a healing tail in which
    // residual same-color conflicts resolve via the Committed beacons.
    engine.run_until(claim_cfg.rounds, |ps: &[GreedyColor]| {
        ps.iter()
            .enumerate()
            .all(|(i, p)| !dominating.is_dominator[i] || p.color().is_some())
    });
    let tail = (2 * cfg.announce_rounds()).min(claim_cfg.rounds.saturating_sub(engine.slot()));
    engine.run(tail);
    let coloring_slots = engine.slot();
    let out = engine.into_protocols();
    let mut uncolored: Vec<usize> = Vec::new();
    for i in 0..n {
        if dominating.is_dominator[i] {
            match out[i].color() {
                Some(c) => color[i] = Some(c),
                None => uncolored.push(i),
            }
        }
    }
    let phases = 1u16;

    // Any dominator still uncolored after the cap gets a fresh unique color:
    // correctness (separation) is preserved at the cost of a larger phi.
    let next_fresh = color.iter().flatten().copied().max().map_or(0, |c| c + 1);
    for (c, &i) in (next_fresh..).zip(&uncolored) {
        color[i] = Some(c);
    }
    let phi = color.iter().flatten().copied().max().map_or(1, |c| c + 1);

    // --- Announce/attach. ---
    let acfg = AnnounceConfig {
        radius: attach_radius,
        p: cfg.density_tx_prob(),
        rounds: cfg.announce_rounds(),
        params: node_params,
    };
    let protocols: Vec<AnnounceProtocol> = (0..n)
        .map(|i| match color[i] {
            Some(c) => AnnounceProtocol::new(AnnounceRole::Dominator { color: c }, acfg),
            None => AnnounceProtocol::new(
                AnnounceRole::Listener {
                    prior: dominating.dominator_of[i].map(|(d, _)| d),
                },
                acfg,
            ),
        })
        .collect();
    let mut engine = Engine::new(
        *true_params,
        positions.to_vec(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xA110),
    )
    .with_faults(absence);
    engine.run_until_done(acfg.rounds + 1);
    let announce_slots = engine.slot();
    let out = engine.into_protocols();

    let membership: Vec<Option<(NodeId, u16, f64)>> = (0..n)
        .map(|i| match color[i] {
            Some(c) => Some((NodeId(i as u32), c, 0.0)),
            None => out[i].attachment(),
        })
        .collect();

    ClusterOutcome {
        dominator_color: color,
        phi,
        membership,
        coloring_slots,
        announce_slots,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominate;
    use mca_geom::Deployment;
    use rand::SeedableRng;

    fn setup(n: usize, side: f64, seed: u64) -> (SinrParams, Vec<Point>, DominatingOutcome) {
        let params = SinrParams::default();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let d = Deployment::uniform(n, side, &mut rng);
        let dom = dominate::oracle(d.points(), 1.0, seed);
        (params, d.points().to_vec(), dom)
    }

    #[test]
    fn coloring_separates_nearby_dominators() {
        let (params, positions, dom) = setup(150, 12.0, 4);
        let cfg = AlgoConfig::practical(4, &params, 150);
        let out = build_clusters(&params, &positions, &dom, &cfg, 9, 64, 1.0, None);
        let r_sep = params.r_eps_half();
        // All dominators colored.
        for (i, &is_dom) in dom.is_dominator.iter().enumerate() {
            if is_dom {
                assert!(out.dominator_color[i].is_some(), "dominator {i} uncolored");
            }
        }
        // Same color => separated by R_{eps/2} (tolerate none; it's whp).
        let mut violations = 0;
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                if let (Some(ci), Some(cj)) = (out.dominator_color[i], out.dominator_color[j]) {
                    if ci == cj && positions[i].dist(positions[j]) <= r_sep {
                        violations += 1;
                    }
                }
            }
        }
        assert!(
            violations <= 1,
            "{violations} same-color pairs within R_eps/2"
        );
        assert!(out.phi >= 1);
    }

    #[test]
    fn attach_finds_nearby_cluster() {
        let (params, positions, dom) = setup(200, 15.0, 5);
        let cfg = AlgoConfig::practical(4, &params, 200);
        let out = build_clusters(&params, &positions, &dom, &cfg, 11, 64, 1.0, None);
        assert_eq!(out.unclustered(), 0, "every node should attach");
        for (i, m) in out.membership.iter().enumerate() {
            let (dm, color, _) = m.unwrap();
            // The dominator is a real dominator with that color.
            assert!(dom.is_dominator[dm.index()]);
            assert_eq!(out.dominator_color[dm.index()], Some(color));
            // Within the attach radius (oracle used 1.0).
            assert!(
                positions[i].dist(positions[dm.index()]) <= 1.05,
                "node {i} attached at distance {}",
                positions[i].dist(positions[dm.index()])
            );
        }
    }

    #[test]
    fn single_dominator_network() {
        let params = SinrParams::default();
        let positions = vec![Point::ORIGIN, Point::new(0.5, 0.0), Point::new(0.0, 0.5)];
        let dom = dominate::oracle(&positions, 1.0, 1);
        let cfg = AlgoConfig::practical(2, &params, 4);
        let out = build_clusters(&params, &positions, &dom, &cfg, 2, 8, 1.0, None);
        assert_eq!(out.phi, 1);
        assert_eq!(out.unclustered(), 0);
        let cluster_ids: Vec<NodeId> = out.membership.iter().map(|m| m.unwrap().0).collect();
        assert!(cluster_ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn announce_prefers_prior_dominator() {
        // Listener equidistant-ish from two dominators, prior = the farther
        // one: it must stick with the prior.
        let params = SinrParams::default();
        let positions = vec![
            Point::new(0.0, 0.0),  // dominator A
            Point::new(1.4, 0.0),  // dominator B
            Point::new(0.75, 0.0), // listener (closer to B by a hair)
        ];
        let acfg = AnnounceConfig {
            radius: 1.0,
            p: 0.3,
            rounds: 200,
            params,
        };
        let protocols = vec![
            AnnounceProtocol::new(AnnounceRole::Dominator { color: 0 }, acfg),
            AnnounceProtocol::new(AnnounceRole::Dominator { color: 1 }, acfg),
            AnnounceProtocol::new(
                AnnounceRole::Listener {
                    prior: Some(NodeId(0)),
                },
                acfg,
            ),
        ];
        let mut engine = Engine::new(params, positions, protocols, 3);
        engine.run_until_done(201);
        let (dom, color, _) = engine.protocols()[2].attachment().unwrap();
        assert_eq!(dom, NodeId(0));
        assert_eq!(color, 0);
    }
}
