//! Per-node knowledge carried between construction phases.
//!
//! The pipeline of §5 runs as a sequence of synchronized phases; what a node
//! carries from one phase to the next is exactly what it *learned locally*
//! (its role, dominator, cluster color, size estimate, channel, …). The
//! orchestrator in [`crate::structure`] moves these records between phase
//! protocols without ever injecting global information.

use mca_radio::{Channel, NodeId};

/// A node's role in the aggregation structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// Not yet determined (before the dominating-set phase completes).
    #[default]
    Undecided,
    /// Cluster head: local leader, tree root, backbone member.
    Dominator,
    /// Cluster member elected reporter on a channel; `heap_pos` is its
    /// 1-based position in the reporter tree (= channel index + 1).
    Reporter {
        /// 1-based heap position in the cluster's reporter tree.
        heap_pos: u16,
    },
    /// Ordinary cluster member.
    Follower,
}

impl Role {
    /// Whether the node heads a cluster.
    pub fn is_dominator(&self) -> bool {
        matches!(self, Role::Dominator)
    }

    /// Whether the node is a reporter.
    pub fn is_reporter(&self) -> bool {
        matches!(self, Role::Reporter { .. })
    }
}

/// Everything a node has learned during structure construction.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord {
    /// The node's own id.
    pub id: NodeId,
    /// Role in the structure.
    pub role: Role,
    /// Cluster identifier = the dominator's node id (self for dominators).
    pub cluster: Option<NodeId>,
    /// RSSI-estimated distance to the dominator (dominators: 0).
    pub dominator_dist: Option<f64>,
    /// Cluster color from §5.1.2 (same color ⇒ clusters `R_{ε/2}`-separated).
    pub cluster_color: Option<u16>,
    /// Constant-factor estimate of the cluster size (CSA output).
    pub cluster_size_est: Option<u64>,
    /// Number of channels `f_v` the cluster uses (derived from the size
    /// estimate; identical at every cluster member).
    pub cluster_channels: Option<u16>,
    /// The channel this node selected within its cluster.
    pub channel: Option<Channel>,
    /// The reporter this follower delivered its data to (aggregation phase).
    pub reporter: Option<NodeId>,
    /// Dominators only: whether this dominator observed no reporter
    /// election on the first channel and therefore serves as its cluster's
    /// channel-0 reporter during aggregation.
    pub serves_channel0: bool,
    /// Final node color (coloring algorithm of §7).
    pub color: Option<u32>,
}

impl NodeRecord {
    /// A fresh record for node `id`.
    pub fn new(id: NodeId) -> Self {
        NodeRecord {
            id,
            role: Role::Undecided,
            cluster: None,
            dominator_dist: None,
            cluster_color: None,
            cluster_size_est: None,
            cluster_channels: None,
            channel: None,
            reporter: None,
            serves_channel0: false,
            color: None,
        }
    }

    /// Marks the node a dominator (cluster = self).
    pub fn make_dominator(&mut self) {
        self.role = Role::Dominator;
        self.cluster = Some(self.id);
        self.dominator_dist = Some(0.0);
    }

    /// Marks the node a member of `dominator`'s cluster at estimated
    /// distance `dist`.
    pub fn make_member(&mut self, dominator: NodeId, dist: f64) {
        self.role = Role::Follower;
        self.cluster = Some(dominator);
        self.dominator_dist = Some(dist);
    }

    /// Whether the node completed clustering (has a cluster).
    pub fn is_clustered(&self) -> bool {
        self.cluster.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_record_is_blank() {
        let r = NodeRecord::new(NodeId(3));
        assert_eq!(r.role, Role::Undecided);
        assert!(!r.is_clustered());
        assert!(r.color.is_none());
    }

    #[test]
    fn dominator_transition() {
        let mut r = NodeRecord::new(NodeId(3));
        r.make_dominator();
        assert!(r.role.is_dominator());
        assert_eq!(r.cluster, Some(NodeId(3)));
        assert_eq!(r.dominator_dist, Some(0.0));
    }

    #[test]
    fn member_transition() {
        let mut r = NodeRecord::new(NodeId(4));
        r.make_member(NodeId(1), 0.7);
        assert_eq!(r.role, Role::Follower);
        assert_eq!(r.cluster, Some(NodeId(1)));
        assert!(r.is_clustered());
    }

    #[test]
    fn role_queries() {
        assert!(Role::Dominator.is_dominator());
        assert!(!Role::Follower.is_dominator());
        assert!(Role::Reporter { heap_pos: 2 }.is_reporter());
        assert!(!Role::Undecided.is_reporter());
    }
}
