//! Cluster-Size Approximation, small-`Δ̂` variant
//! (paper Appendix A; Lemma 13) — `O(log n · log log n)` rounds when
//! `Δ̂ ≤ F·log^c n`.
//!
//! Four procedures per cluster:
//!
//! 1. every dominatee picks one of the `F` channels uniformly at random and
//!    each channel elects a *leader* (the §4 ruling set, cluster-scoped,
//!    radius `2·r_c`);
//! 2. each channel runs the CSA of §5.2.1 with the leader as coordinator
//!    and the much smaller bound `Δ̂' = Θ(Δ̂/F)` — hence the `log log n`;
//! 3. leaders aggregate their per-channel counts to the dominator over the
//!    binary tree on channel positions, with the ack/takeover mechanism
//!    covering channels that got no nodes ("auxiliary nodes");
//! 4. the dominator broadcasts the summed estimate on the first channel.

use crate::aggfun::SumAgg;
use crate::aggregate::treecast::{self, TreeCast, TreeCfg};
use crate::config::AlgoConfig;
use crate::csa::{CsaConfig, CsaProtocol, CsaRole};
use crate::ruling::{self, ProbPolicy, RulingConfig, RulingOutcome, RulingSet};
use crate::schedule::Tdma;
use mca_geom::Point;
use mca_radio::{Action, Channel, Engine, NodeId, Observation, Protocol};
use mca_sinr::SinrParams;
use rand::rngs::SmallRng;
use rand::Rng;

/// Per-node input: cluster membership facts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallSeat {
    /// The node's cluster.
    pub cluster: NodeId,
    /// Cluster TDMA color.
    pub color: u16,
    /// Whether this node is the dominator.
    pub is_dominator: bool,
}

/// Procedure-4 broadcast message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeMsg {
    /// Cluster scope.
    pub cluster: NodeId,
    /// The cluster-size estimate.
    pub size: u64,
}

/// Procedure 4: the dominator repeatedly broadcasts the estimate on the
/// first channel; members listen until they have it.
#[derive(Debug, Clone)]
struct BroadcastSize {
    cluster: NodeId,
    color: u16,
    tdma: Tdma,
    p: f64,
    rounds: u64,
    /// `Some(size)` marks the sender (dominator).
    sending: Option<u64>,
    received: Option<u64>,
    passive: bool,
    finished: bool,
}

impl Protocol for BroadcastSize {
    type Msg = SizeMsg;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<SizeMsg> {
        if self.passive {
            return Action::Idle;
        }
        let Some(ts) = self.tdma.my_slot(slot, self.color) else {
            // Listening is passive; members may listen in any block.
            if self.sending.is_none() && self.received.is_none() {
                return Action::Listen {
                    channel: Channel::FIRST,
                };
            }
            return Action::Idle;
        };
        if ts.round >= self.rounds {
            return Action::Idle;
        }
        match self.sending {
            Some(size) if rng.gen_bool(self.p) => Action::Transmit {
                channel: Channel::FIRST,
                msg: SizeMsg {
                    cluster: self.cluster,
                    size,
                },
            },
            Some(_) => Action::Idle,
            None => {
                if self.received.is_none() {
                    Action::Listen {
                        channel: Channel::FIRST,
                    }
                } else {
                    Action::Idle
                }
            }
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<SizeMsg>, _rng: &mut SmallRng) {
        if let Observation::Received(r) = &obs {
            if r.msg.cluster == self.cluster && self.received.is_none() {
                self.received = Some(r.msg.size);
            }
        }
        if self.tdma.decompose(slot).round >= self.rounds {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished || (self.sending.is_none() && self.received.is_some() && !self.passive)
    }
}

/// Outcome of the small-`Δ̂` CSA.
#[derive(Debug, Clone)]
pub struct CsaSmallOutcome {
    /// Estimate each node ended with (`None` = missed; back-fill upstream).
    pub estimate: Vec<Option<u64>>,
    /// Leader-election slots (procedure 1).
    pub election_slots: u64,
    /// Per-channel CSA slots (procedure 2).
    pub channel_csa_slots: u64,
    /// Count-aggregation slots (procedure 3).
    pub tree_slots: u64,
    /// Broadcast slots (procedure 4).
    pub broadcast_slots: u64,
}

impl CsaSmallOutcome {
    /// Total slots over the four procedures.
    pub fn total_slots(&self) -> u64 {
        self.election_slots + self.channel_csa_slots + self.tree_slots + self.broadcast_slots
    }
}

/// Runs the small-`Δ̂` CSA (Lemma 13) over clustered nodes.
///
/// `delta_hat` is the (small) bound on cluster sizes — the caller checks
/// the `Δ̂ ≤ F·log² n` crossover via
/// [`AlgoConfig::csa_small_applies`].
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn run_csa_small(
    true_params: &SinrParams,
    positions: &[Point],
    seats: &[Option<SmallSeat>],
    algo: &AlgoConfig,
    phi: u16,
    cluster_radius: f64,
    delta_hat: u64,
    seed: u64,
) -> CsaSmallOutcome {
    let n = positions.len();
    assert_eq!(seats.len(), n);
    let node_params = algo.node_params();
    let f_total = algo.channels;
    let phi = phi.max(1);

    // --- Procedure 1: channel choice + per-channel leader election. ---
    let mut channel_of: Vec<Option<Channel>> = vec![None; n];
    let e_tdma = Tdma::new(phi, ruling::SLOTS_PER_ROUND);
    let e_rounds = algo.ruling_rounds() * 3;
    let protocols: Vec<RulingSet> = (0..n)
        .map(|i| {
            let base = |ch: Channel, color: u16, group: NodeId| RulingConfig {
                radius: 2.0 * cluster_radius,
                prob: ProbPolicy::Fixed(0.25),
                p_cap: algo.consts.p_cap,
                rounds: e_rounds,
                channel: ch,
                group: Some(group),
                tdma: e_tdma,
                color,
                params: node_params,
                timeout_join: ruling::TimeoutRule::JoinIfQuiet,
            };
            match seats[i] {
                Some(seat) if !seat.is_dominator => {
                    let ch = Channel(
                        (mca_radio::rng::mix64(
                            mca_radio::rng::derive_seed(seed, i as u64) ^ 0x5CA1,
                        ) % f_total as u64) as u16,
                    );
                    channel_of[i] = Some(ch);
                    // Expected per-channel population is Δ̂/F ≤ log² n.
                    let m_hat = delta_hat.div_ceil(f_total as u64).max(1);
                    let mut cfg = base(ch, seat.color, seat.cluster);
                    cfg.prob = ProbPolicy::Adaptive {
                        start: (algo.consts.lambda / (2.0 * m_hat as f64)).min(algo.consts.p_cap),
                        busy_threshold: node_params.clear_threshold_for(2.0 * cluster_radius),
                    };
                    RulingSet::new(NodeId(i as u32), cfg)
                }
                Some(seat) => {
                    // The dominator helps channel-0 elections with ACKs.
                    let mut cfg = base(Channel::FIRST, seat.color, seat.cluster);
                    cfg.prob = ProbPolicy::Fixed((algo.consts.lambda / 2.0).min(algo.consts.p_cap));
                    RulingSet::helper(NodeId(i as u32), cfg)
                }
                None => {
                    RulingSet::passive(NodeId(i as u32), base(Channel::FIRST, 0, NodeId(i as u32)))
                }
            }
        })
        .collect();
    let mut engine = Engine::new(
        *true_params,
        positions.to_vec(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0x5CA11),
    );
    engine.run_until_done(e_tdma.slots_for_rounds(e_rounds) + 3);
    let election_slots = engine.slot();
    let elect = engine.into_protocols();
    let is_leader: Vec<bool> = elect
        .iter()
        .map(|p| matches!(p.outcome(), RulingOutcome::Elected))
        .collect();

    // --- Procedure 2: per-channel CSA with the leader as coordinator. ---
    let delta_channel = (2 * delta_hat.div_ceil(f_total as u64)).max(4);
    let c_tdma = Tdma::new(phi, 1);
    let csa_cfg_for = |ch: Channel| CsaConfig {
        delta_hat: delta_channel,
        lambda: algo.consts.lambda,
        rounds_per_phase: algo.csa_rounds_per_phase(),
        settle_threshold: algo.csa_settle_threshold(),
        channel: ch,
        tdma: c_tdma,
        params: node_params,
    };
    let protocols: Vec<CsaProtocol> = (0..n)
        .map(|i| match (seats[i], channel_of[i]) {
            (Some(seat), Some(ch)) if !seat.is_dominator => {
                let role = if is_leader[i] {
                    CsaRole::Coordinator
                } else {
                    CsaRole::Member
                };
                CsaProtocol::new(role, seat.cluster, seat.color, csa_cfg_for(ch))
            }
            _ => CsaProtocol::new(
                CsaRole::Passive,
                NodeId(i as u32),
                0,
                csa_cfg_for(Channel::FIRST),
            ),
        })
        .collect();
    let mut engine = Engine::new(
        *true_params,
        positions.to_vec(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0x5CA12),
    );
    let ccap = c_tdma.slots_for_rounds(csa_cfg_for(Channel::FIRST).total_rounds()) + 1;
    engine.run_until(ccap, |ps: &[CsaProtocol]| {
        ps.iter().all(|p| p.is_satisfied())
    });
    let channel_csa_slots = engine.slot();
    let channel_csa = engine.into_protocols();

    // --- Procedure 3: aggregate per-channel counts over the channel tree. ---
    let t_cfg = TreeCfg {
        fv: f_total,
        tdma: Tdma::new(phi, treecast::SLOTS_PER_ROUND),
    };
    let protocols: Vec<TreeCast<SumAgg>> = (0..n)
        .map(|i| match (seats[i], channel_of[i]) {
            (Some(seat), _) if seat.is_dominator => {
                // The dominator counts itself.
                TreeCast::dominator(SumAgg, t_cfg, seat.cluster, seat.color, 1)
            }
            (Some(seat), Some(ch)) if is_leader[i] => {
                let count = channel_csa[i].coordinator_estimate().unwrap_or(1).max(1);
                TreeCast::reporter(
                    SumAgg,
                    t_cfg,
                    seat.cluster,
                    seat.color,
                    ch.0 + 1,
                    count as i64,
                )
            }
            (Some(seat), _) => TreeCast::passive(SumAgg, t_cfg, seat.cluster),
            _ => TreeCast::passive(SumAgg, t_cfg, NodeId(i as u32)),
        })
        .collect();
    let mut engine = Engine::new(
        *true_params,
        positions.to_vec(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0x5CA13),
    );
    engine.run_until_done(t_cfg.tdma.slots_for_rounds(t_cfg.rounds()) + 4);
    let tree_slots = engine.slot();
    let tree = engine.into_protocols();

    // --- Procedure 4: dominator broadcasts the summed estimate. ---
    let b_tdma = Tdma::new(phi, 1);
    let b_rounds = algo.announce_rounds();
    let protocols: Vec<BroadcastSize> = (0..n)
        .map(|i| match seats[i] {
            Some(seat) => BroadcastSize {
                cluster: seat.cluster,
                color: seat.color,
                tdma: b_tdma,
                p: algo.density_tx_prob(),
                rounds: b_rounds,
                sending: seat.is_dominator.then(|| (*tree[i].value()).max(1) as u64),
                received: None,
                passive: false,
                finished: false,
            },
            None => BroadcastSize {
                cluster: NodeId(i as u32),
                color: 0,
                tdma: b_tdma,
                p: 0.1,
                rounds: 0,
                sending: None,
                received: None,
                passive: true,
                finished: true,
            },
        })
        .collect();
    let mut engine = Engine::new(
        *true_params,
        positions.to_vec(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0x5CA14),
    );
    engine.run_until_done(b_tdma.slots_for_rounds(b_rounds) + 1);
    let broadcast_slots = engine.slot();
    let bcast = engine.into_protocols();

    let estimate: Vec<Option<u64>> = (0..n)
        .map(|i| match seats[i] {
            Some(seat) if seat.is_dominator => Some((*tree[i].value()).max(1) as u64),
            Some(_) => bcast[i].received,
            None => None,
        })
        .collect();

    CsaSmallOutcome {
        estimate,
        election_slots,
        channel_csa_slots,
        tree_slots,
        broadcast_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One cluster of `m` members packed around a dominator at the origin.
    fn run_one(m: usize, channels: u16, seed: u64) -> (CsaSmallOutcome, usize) {
        let params = SinrParams::default();
        let algo = AlgoConfig::practical(channels, &params, (m + 1).max(64));
        let mut positions = vec![Point::ORIGIN];
        let mut seats = vec![Some(SmallSeat {
            cluster: NodeId(0),
            color: 0,
            is_dominator: true,
        })];
        for i in 0..m {
            let theta = i as f64 / m as f64 * std::f64::consts::TAU;
            positions.push(Point::unit(theta) * (0.3 + 0.5 * ((i % 4) as f64 / 4.0)));
            seats.push(Some(SmallSeat {
                cluster: NodeId(0),
                color: 0,
                is_dominator: false,
            }));
        }
        let out = run_csa_small(
            &params,
            &positions,
            &seats,
            &algo,
            1,
            1.0,
            (m as u64).max(4),
            seed,
        );
        (out, m + 1)
    }

    #[test]
    fn estimate_within_constant_factor() {
        for (m, f, seed) in [(24usize, 8u16, 1u64), (48, 8, 2), (12, 4, 3)] {
            let (out, true_size) = run_one(m, f, seed);
            let est = out.estimate[0].expect("dominator must have an estimate");
            let ratio = est as f64 / true_size as f64;
            assert!(
                (0.2..=6.0).contains(&ratio),
                "m={m} F={f}: estimate {est} vs true {true_size} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn members_learn_the_estimate() {
        let (out, _) = run_one(30, 8, 5);
        let est = out.estimate[0].unwrap();
        let mut missed = 0;
        for e in &out.estimate[1..] {
            match e {
                Some(v) => assert_eq!(*v, est),
                None => missed += 1,
            }
        }
        assert!(missed <= 2, "{missed} members missed the broadcast");
    }

    #[test]
    fn slots_accounted() {
        let (out, _) = run_one(16, 4, 7);
        assert_eq!(
            out.total_slots(),
            out.election_slots + out.channel_csa_slots + out.tree_slots + out.broadcast_slots
        );
        assert!(out.election_slots > 0 && out.broadcast_slots > 0);
    }

    #[test]
    fn empty_channels_are_bridged_by_takeover() {
        // Few members, many channels: several channels stay empty, yet the
        // aggregation over the channel tree still reaches the dominator.
        let (out, true_size) = run_one(6, 16, 9);
        let est = out.estimate[0].unwrap();
        assert!(
            est >= 1 && est <= 4 * true_size as u64,
            "estimate {est} vs true {true_size}"
        );
    }
}
