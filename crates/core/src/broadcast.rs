//! Broadcast on the aggregation structure: single-source and
//! multiple-message.
//!
//! The paper's introduction motivates channels with broadcast (references
//! \[9\] and \[4\]). The structure answers both variants:
//!
//! * **Single-source broadcast** ([`broadcast`]) *is* an aggregation: the
//!   source holds `Some(message)`, everyone else `None`, and the network
//!   aggregates with [`BcastAgg`] (idempotent max over at most one real
//!   value) — one `O(D + Δ/F + log n·log log n)` run delivers the message
//!   to every node (Theorem 22).
//!
//! * **Multiple-message broadcast** ([`broadcast_many`]) disseminates `k`
//!   messages from arbitrary sources to all nodes. Messages are *not*
//!   compressible — each transmission carries exactly one message (the
//!   one-packet-per-slot constraint of the model) — so the structure is
//!   used differently: sources first *hoist* their message to their
//!   cluster's dominator over the TDMA schedule (decay contention
//!   resolution), then the dominator backbone runs randomized *gossip*
//!   (each dominator repeatedly broadcasts a uniformly random held
//!   message) while all cluster members listen in. Every node must receive
//!   `k` distinct packets, so `Ω(k)` rounds per node are unavoidable no
//!   matter how many channels exist — the same receive-bottleneck that
//!   limits the information-exchange speedup of the paper's reference
//!   \[37\]. The measured shape (`O(k + D + log n)` gossip rounds, no
//!   channel speedup on the `k` term) is exactly this fundamental limit;
//!   contrast with the linear speedup of the compressible case.

use crate::aggfun::Aggregate;
use crate::config::AlgoConfig;
use crate::schedule::Tdma;
use crate::structure::{aggregate, AggregationStructure, InterclusterMode, NetworkEnv};
use mca_radio::{Action, Channel, Engine, NodeId, Observation, Protocol};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Single-source broadcast as an aggregation.
// ---------------------------------------------------------------------------

/// A broadcast message tagged with its source.
///
/// Ordered by `(src, payload)` so that a set of sourced messages has a
/// deterministic maximum — with a single source, the maximum *is* the
/// message, which is how [`BcastAgg`] turns broadcast into an idempotent
/// aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sourced {
    /// The originating node.
    pub src: NodeId,
    /// The message payload (an opaque word; larger payloads are carried by
    /// indexing into application storage).
    pub payload: u64,
}

/// The broadcast aggregate: maximum over at most one real value.
///
/// `None` is the identity; with exactly one source the network-wide
/// maximum is that source's message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BcastAgg;

impl Aggregate for BcastAgg {
    type Value = Option<Sourced>;

    fn identity(&self) -> Option<Sourced> {
        None
    }

    fn combine(&self, a: &Option<Sourced>, b: &Option<Sourced>) -> Option<Sourced> {
        (*a).max(*b)
    }

    fn is_idempotent(&self) -> bool {
        true
    }
}

/// Result of a single-source broadcast.
#[derive(Debug, Clone)]
pub struct BroadcastOutcome {
    /// The message each node ended with (`None` = never reached).
    pub received: Vec<Option<Sourced>>,
    /// Nodes that hold the source's message.
    pub coverage: usize,
    /// Slots of the follower→reporter procedure.
    pub follower_slots: u64,
    /// Slots of the reporter-tree convergecast.
    pub tree_slots: u64,
    /// Slots of the inter-cluster flood.
    pub inter_slots: u64,
}

impl BroadcastOutcome {
    /// Total slots across the three procedures.
    pub fn total_slots(&self) -> u64 {
        self.follower_slots + self.tree_slots + self.inter_slots
    }
}

/// Broadcasts `payload` from `source` to every node (paper Theorem 22
/// applied to the [`BcastAgg`] aggregate).
///
/// # Examples
///
/// ```no_run
/// use mca_core::{broadcast, build_structure, AlgoConfig, NetworkEnv, StructureConfig};
/// use mca_geom::Deployment;
/// use mca_radio::NodeId;
/// use mca_sinr::SinrParams;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let params = SinrParams::default();
/// let mut rng = SmallRng::seed_from_u64(1);
/// let deploy = Deployment::uniform(100, 10.0, &mut rng);
/// let env = NetworkEnv::new(params, &deploy);
/// let algo = AlgoConfig::practical(4, &params, 100);
/// let structure = build_structure(&env, &StructureConfig::new(algo, 1));
/// let d_hat = env.comm_graph().diameter_approx() + 2;
/// let out = broadcast(&env, &structure, &algo, NodeId(3), 0xFEED, d_hat, 7);
/// println!("{} of 100 nodes reached", out.coverage);
/// ```
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn broadcast(
    env: &NetworkEnv,
    structure: &AggregationStructure,
    algo: &AlgoConfig,
    source: NodeId,
    payload: u64,
    d_hat: u32,
    seed: u64,
) -> BroadcastOutcome {
    let n = env.len();
    assert!(source.index() < n, "source {source} out of range");
    let msg = Sourced {
        src: source,
        payload,
    };
    let inputs: Vec<Option<Sourced>> = (0..n)
        .map(|i| (i == source.index()).then_some(msg))
        .collect();
    let out = aggregate(
        env,
        structure,
        algo,
        BcastAgg,
        &inputs,
        InterclusterMode::Flood,
        d_hat,
        seed,
    );
    let received: Vec<Option<Sourced>> = out.values.iter().map(|v| v.and_then(|x| x)).collect();
    let coverage = received.iter().filter(|v| **v == Some(msg)).count();
    BroadcastOutcome {
        received,
        coverage,
        follower_slots: out.follower_slots,
        tree_slots: out.tree_slots,
        inter_slots: out.inter_slots,
    }
}

// ---------------------------------------------------------------------------
// Multiple-message broadcast: hoist + backbone gossip.
// ---------------------------------------------------------------------------

/// Messages of the hoist/gossip protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GossipMsg {
    /// A data message (hoist slot 0, or gossip).
    Data(Sourced),
    /// Dominator acknowledgement of a hoisted message (hoist slot 1).
    Ack(Sourced),
}

/// Hoist phase: sources deliver their message to their cluster dominator.
///
/// Two slots per TDMA round on the first channel: sources transmit with a
/// decaying probability in slot 0 (a "decay" sweep — probability halves
/// each round of a sweep, then resets — resolves unknown per-cluster
/// source counts); the dominator echoes what it decoded in slot 1, and an
/// acknowledged source halts.
#[derive(Debug, Clone)]
struct HoistCast {
    cfg: HoistCfg,
    color: u16,
    role: HoistRole,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HoistCfg {
    /// Rounds per decay sweep (probability halves each round in a sweep).
    sweep_len: u32,
    /// Total TDMA rounds.
    rounds: u64,
    tdma: Tdma,
}

#[derive(Debug, Clone)]
enum HoistRole {
    /// A source still trying to deliver `msg`.
    Source { msg: Sourced, delivered: bool },
    /// The cluster head, collecting; `pending` echoes in slot 1.
    Dominator {
        collected: BTreeSet<Sourced>,
        pending: Option<Sourced>,
    },
    /// Everyone else sits the phase out.
    Bystander,
}

impl HoistCast {
    const SLOTS_PER_ROUND: u16 = 2;

    fn source(cfg: HoistCfg, color: u16, msg: Sourced) -> Self {
        HoistCast {
            cfg,
            color,
            role: HoistRole::Source {
                msg,
                delivered: false,
            },
        }
    }

    fn dominator(cfg: HoistCfg, color: u16) -> Self {
        HoistCast {
            cfg,
            color,
            role: HoistRole::Dominator {
                collected: BTreeSet::new(),
                pending: None,
            },
        }
    }

    fn bystander(cfg: HoistCfg) -> Self {
        HoistCast {
            cfg,
            color: 0,
            role: HoistRole::Bystander,
        }
    }

    fn collected(&self) -> Option<&BTreeSet<Sourced>> {
        match &self.role {
            HoistRole::Dominator { collected, .. } => Some(collected),
            _ => None,
        }
    }

    fn is_delivered(&self) -> bool {
        match &self.role {
            HoistRole::Source { delivered, .. } => *delivered,
            _ => true,
        }
    }
}

impl Protocol for HoistCast {
    type Msg = GossipMsg;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<GossipMsg> {
        let Some(d) = self.cfg.tdma.my_slot(slot, self.color) else {
            return Action::Idle;
        };
        if d.round >= self.cfg.rounds {
            return Action::Idle;
        }
        match (&mut self.role, d.slot_in_round) {
            (HoistRole::Source { msg, delivered }, 0) if !*delivered => {
                // Decay: transmit with probability 2^{-(1 + round mod sweep)}.
                let step = (d.round % self.cfg.sweep_len as u64) as i32;
                let p = 0.5f64.powi(1 + step);
                if rng.gen_bool(p) {
                    Action::Transmit {
                        channel: Channel::FIRST,
                        msg: GossipMsg::Data(*msg),
                    }
                } else {
                    Action::Idle
                }
            }
            (HoistRole::Source { delivered, .. }, 1) if !*delivered => Action::Listen {
                channel: Channel::FIRST,
            },
            (HoistRole::Dominator { .. }, 0) => Action::Listen {
                channel: Channel::FIRST,
            },
            (HoistRole::Dominator { pending, .. }, 1) => match pending.take() {
                Some(m) => Action::Transmit {
                    channel: Channel::FIRST,
                    msg: GossipMsg::Ack(m),
                },
                None => Action::Idle,
            },
            _ => Action::Idle,
        }
    }

    fn observe(&mut self, _slot: u64, obs: Observation<GossipMsg>, _rng: &mut SmallRng) {
        let Some(rec) = obs.reception() else { return };
        match (&mut self.role, &rec.msg) {
            (
                HoistRole::Dominator {
                    collected, pending, ..
                },
                GossipMsg::Data(m),
            ) => {
                collected.insert(*m);
                *pending = Some(*m);
            }
            (HoistRole::Source { msg, delivered }, GossipMsg::Ack(m)) if m == msg => {
                *delivered = true;
            }
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        matches!(
            &self.role,
            HoistRole::Source {
                delivered: true,
                ..
            }
        )
    }
}

/// Gossip phase: dominators broadcast uniformly random held messages under
/// the TDMA; every node listens on the first channel and collects.
#[derive(Debug, Clone)]
struct GossipCast {
    cfg: GossipCfg,
    color: u16,
    is_dominator: bool,
    held: BTreeSet<Sourced>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct GossipCfg {
    /// Per-round transmission probability `q`.
    q: f64,
    /// Total TDMA rounds.
    rounds: u64,
    tdma: Tdma,
}

impl GossipCast {
    fn new(cfg: GossipCfg, color: u16, is_dominator: bool, held: BTreeSet<Sourced>) -> Self {
        assert!(
            cfg.q > 0.0 && cfg.q <= 0.5,
            "gossip probability out of range"
        );
        GossipCast {
            cfg,
            color,
            is_dominator,
            held,
        }
    }

    fn held(&self) -> &BTreeSet<Sourced> {
        &self.held
    }
}

impl Protocol for GossipCast {
    type Msg = GossipMsg;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<GossipMsg> {
        let d = self.cfg.tdma.decompose(slot);
        if d.round >= self.cfg.rounds {
            return Action::Idle;
        }
        let my_block = d.active_color == self.color;
        if self.is_dominator && my_block && !self.held.is_empty() && rng.gen_bool(self.cfg.q) {
            let idx = rng.gen_range(0..self.held.len());
            let msg = *self
                .held
                .iter()
                .nth(idx)
                .expect("index drawn within set size");
            return Action::Transmit {
                channel: Channel::FIRST,
                msg: GossipMsg::Data(msg),
            };
        }
        Action::Listen {
            channel: Channel::FIRST,
        }
    }

    fn observe(&mut self, _slot: u64, obs: Observation<GossipMsg>, _rng: &mut SmallRng) {
        if let Some(rec) = obs.reception() {
            if let GossipMsg::Data(m) = &rec.msg {
                self.held.insert(*m);
            }
        }
    }
}

/// Result of a multiple-message broadcast.
#[derive(Debug, Clone)]
pub struct GossipOutcome {
    /// Number of the `k` input messages each node ended with.
    pub delivered: Vec<usize>,
    /// Nodes holding **all** `k` messages.
    pub full_coverage: usize,
    /// Sources whose message never reached their dominator (lost inputs).
    pub unhoisted: usize,
    /// Slots of the hoist phase.
    pub hoist_slots: u64,
    /// Slots of the gossip phase.
    pub gossip_slots: u64,
}

impl GossipOutcome {
    /// Total slots across both phases.
    pub fn total_slots(&self) -> u64 {
        self.hoist_slots + self.gossip_slots
    }

    /// Fraction of `(node, message)` pairs delivered.
    pub fn delivery_fraction(&self, k: usize) -> f64 {
        if k == 0 || self.delivered.is_empty() {
            return 1.0;
        }
        let total: usize = self.delivered.iter().sum();
        total as f64 / (k * self.delivered.len()) as f64
    }
}

/// Disseminates `messages` (source, payload pairs) to every node.
///
/// Sources hoist their message to their cluster dominator (decay
/// contention resolution under the TDMA), then the dominator backbone
/// gossips for `O(k + D + log n)` rounds while all members listen.
///
/// # Examples
///
/// ```no_run
/// use mca_core::{broadcast_many, build_structure, AlgoConfig, NetworkEnv, StructureConfig};
/// use mca_geom::Deployment;
/// use mca_radio::NodeId;
/// use mca_sinr::SinrParams;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let params = SinrParams::default();
/// let mut rng = SmallRng::seed_from_u64(1);
/// let deploy = Deployment::uniform(150, 10.0, &mut rng);
/// let env = NetworkEnv::new(params, &deploy);
/// let algo = AlgoConfig::practical(4, &params, 150);
/// let structure = build_structure(&env, &StructureConfig::new(algo, 1));
/// let d_hat = env.comm_graph().diameter_approx() + 2;
/// let msgs = [(NodeId(3), 30), (NodeId(70), 700)];
/// let out = broadcast_many(&env, &structure, &algo, &msgs, d_hat, 9);
/// println!("{} nodes hold both messages", out.full_coverage);
/// ```
///
/// # Panics
///
/// Panics if any source id is out of range or a source appears twice
/// (the model grants one packet per node per slot; a node with several
/// messages should send them in separate calls).
pub fn broadcast_many(
    env: &NetworkEnv,
    structure: &AggregationStructure,
    algo: &AlgoConfig,
    messages: &[(NodeId, u64)],
    d_hat: u32,
    seed: u64,
) -> GossipOutcome {
    let n = env.len();
    let k = messages.len();
    let mut by_source: std::collections::HashMap<usize, Sourced> = std::collections::HashMap::new();
    for &(src, payload) in messages {
        assert!(src.index() < n, "source {src} out of range");
        let prev = by_source.insert(src.index(), Sourced { src, payload });
        assert!(prev.is_none(), "source {src} holds two messages");
    }
    let phi = structure.phi.max(1);
    let records = &structure.records;

    // --- Phase 1: hoist sources' messages to their dominators. ---
    let sweep_len = (algo.know.log2_n() as u32 + 2).max(2);
    let hoist_cfg = HoistCfg {
        sweep_len,
        // Enough sweeps for k messages plus the w.h.p. tail: each sweep
        // delivers at least one contender per cluster with constant
        // probability.
        rounds: (sweep_len as u64) * (k as u64 + algo.ln_n().ceil() as u64 + 2),
        tdma: Tdma::new(phi, HoistCast::SLOTS_PER_ROUND),
    };
    let protocols: Vec<HoistCast> = (0..n)
        .map(|i| {
            let r = &records[i];
            let color = r.cluster_color.unwrap_or(0);
            match (by_source.get(&i), r.role.is_dominator(), r.cluster) {
                // Dominator sources collect their own message in place.
                (Some(_), true, _) | (None, true, _) => HoistCast::dominator(hoist_cfg, color),
                (Some(m), false, Some(_)) => HoistCast::source(hoist_cfg, color, *m),
                _ => HoistCast::bystander(hoist_cfg),
            }
        })
        .collect();
    let mut engine = Engine::new(
        env.params,
        env.positions.clone(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xB0A57),
    );
    let cap = hoist_cfg.tdma.slots_for_rounds(hoist_cfg.rounds) + 1;
    engine.run_until(cap, |ps: &[HoistCast]| ps.iter().all(|p| p.is_delivered()));
    let hoist_slots = engine.slot();
    let hoisted = engine.into_protocols();
    let unhoisted = hoisted.iter().filter(|p| !p.is_delivered()).count();

    // --- Phase 2: backbone gossip. ---
    let gossip_cfg = GossipCfg {
        q: algo.consts.flood_prob,
        rounds: (algo.consts.c_flood * (k as f64 + 1.0) * (d_hat as f64 + algo.ln_n())).ceil()
            as u64,
        tdma: Tdma::new(phi, 1),
    };
    let protocols: Vec<GossipCast> = (0..n)
        .map(|i| {
            let r = &records[i];
            let color = r.cluster_color.unwrap_or(0);
            let mut held: BTreeSet<Sourced> = hoisted[i].collected().cloned().unwrap_or_default();
            // A dominator that is itself a source starts with its message.
            if let Some(m) = by_source.get(&i) {
                if r.role.is_dominator() {
                    held.insert(*m);
                }
            }
            GossipCast::new(gossip_cfg, color, r.role.is_dominator(), held)
        })
        .collect();
    let mut engine = Engine::new(
        env.params,
        env.positions.clone(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xB0A58),
    );
    let want: BTreeSet<Sourced> = by_source.values().copied().collect();
    let cap = gossip_cfg.tdma.slots_for_rounds(gossip_cfg.rounds) + 1;
    engine.run_until(cap, |ps: &[GossipCast]| {
        ps.iter().all(|p| p.held().is_superset(&want))
    });
    let gossip_slots = engine.slot();
    let out = engine.into_protocols();

    let delivered: Vec<usize> = out
        .iter()
        .map(|p| p.held().intersection(&want).count())
        .collect();
    let full_coverage = delivered.iter().filter(|&&c| c == k).count();

    GossipOutcome {
        delivered,
        full_coverage,
        unhoisted,
        hoist_slots,
        gossip_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{build_structure, StructureConfig, SubstrateMode};
    use mca_geom::Deployment;
    use mca_sinr::SinrParams;
    use rand::{rngs::SmallRng, SeedableRng};

    fn setup(
        n: usize,
        side: f64,
        channels: u16,
        seed: u64,
    ) -> (NetworkEnv, AggregationStructure, AlgoConfig) {
        let params = SinrParams::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let env = NetworkEnv::new(params, &deploy);
        let algo = AlgoConfig::practical(channels, &params, n);
        let mut cfg = StructureConfig::new(algo, seed);
        cfg.substrate = SubstrateMode::Oracle;
        let s = build_structure(&env, &cfg);
        (env, s, algo)
    }

    #[test]
    fn bcast_agg_laws() {
        let agg = BcastAgg;
        let vals = [
            None,
            Some(Sourced {
                src: NodeId(1),
                payload: 10,
            }),
            Some(Sourced {
                src: NodeId(2),
                payload: 5,
            }),
        ];
        for a in &vals {
            assert_eq!(agg.combine(a, &agg.identity()), *a);
            assert_eq!(agg.combine(a, a), *a);
            for b in &vals {
                assert_eq!(agg.combine(a, b), agg.combine(b, a));
                for c in &vals {
                    assert_eq!(
                        agg.combine(a, &agg.combine(b, c)),
                        agg.combine(&agg.combine(a, b), c)
                    );
                }
            }
        }
    }

    #[test]
    fn single_source_reaches_almost_everyone() {
        let (env, s, algo) = setup(150, 12.0, 8, 201);
        let d_hat = env.comm_graph().diameter_approx() + 2;
        let out = broadcast(&env, &s, &algo, NodeId(17), 0xFEED, d_hat, 9);
        assert!(
            out.coverage * 10 >= 150 * 9,
            "coverage {}/150 too low",
            out.coverage
        );
        assert_eq!(
            out.received[42],
            Some(Sourced {
                src: NodeId(17),
                payload: 0xFEED
            })
        );
    }

    #[test]
    fn broadcast_from_dominator_works() {
        let (env, s, algo) = setup(100, 10.0, 4, 203);
        let dominator = s.dominators()[0];
        let d_hat = env.comm_graph().diameter_approx() + 2;
        let out = broadcast(&env, &s, &algo, dominator, 1, d_hat, 5);
        assert!(out.coverage * 10 >= 100 * 9);
    }

    #[test]
    fn gossip_delivers_all_messages() {
        let (env, s, algo) = setup(120, 10.0, 4, 205);
        let messages: Vec<(NodeId, u64)> =
            vec![(NodeId(3), 30), (NodeId(40), 40), (NodeId(99), 99)];
        let d_hat = env.comm_graph().diameter_approx() + 2;
        let out = broadcast_many(&env, &s, &algo, &messages, d_hat, 13);
        assert_eq!(out.unhoisted, 0, "a source failed to hoist");
        assert!(
            out.full_coverage * 10 >= 120 * 9,
            "full coverage {}/120 too low (delivery {:.2})",
            out.full_coverage,
            out.delivery_fraction(3)
        );
    }

    #[test]
    fn gossip_with_empty_message_set_is_trivial() {
        let (env, s, algo) = setup(60, 8.0, 2, 207);
        let out = broadcast_many(&env, &s, &algo, &[], 4, 1);
        assert_eq!(out.unhoisted, 0);
        assert_eq!(out.full_coverage, 60);
        assert!((out.delivery_fraction(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "holds two messages")]
    fn duplicate_source_rejected() {
        let (env, s, algo) = setup(40, 7.0, 2, 209);
        let _ = broadcast_many(&env, &s, &algo, &[(NodeId(1), 1), (NodeId(1), 2)], 4, 1);
    }
}
