//! The node coloring algorithm (paper §7, Theorem 24).
//!
//! Dominators of cluster color `i` hand out node colors from the residue
//! class `{k·φ + i : k = 0, 1, 2, …}`, so adjacent clusters (whose
//! dominators are within `R_{ε/2}` and therefore differently colored) can
//! never collide. Within a cluster, four procedures assign distinct `k`:
//!
//! 1. followers register their IDs with the reporters (the §6 follower
//!    aggregation with the ID as payload — here we reuse the follower-id
//!    lists the reporters collect anyway);
//! 2. subtree *counts* converge up the reporter tree (the §6 tree
//!    convergecast with the Sum aggregate, retaining per-child counts);
//! 3. disjoint *color ranges* cascade back down the tree ([`RangeCast`]);
//! 4. each reporter announces one follower color per round on its own
//!    channel ([`AssignColors`]).
//!
//! Procedures run sequentially (`DESIGN.md` deviation #3); the paper
//! interleaves them in four slots per round with identical asymptotics.

use crate::aggfun::SumAgg;
use crate::aggregate::follower::{self, FollowerAgg, FollowerCfg};
use crate::aggregate::treecast::{self, TreeCast, TreeCfg};
use crate::config::AlgoConfig;
use crate::knowledge::Role;
use crate::schedule::Tdma;
use crate::structure::{AggregationStructure, NetworkEnv};
use crate::tree::HeapTree;
use mca_radio::{Action, Channel, Engine, NodeId, Observation, Protocol};
use rand::rngs::SmallRng;

// ---------------------------------------------------------------------------
// Procedure 3: color ranges down the tree.
// ---------------------------------------------------------------------------

/// A range assignment for one child position: colors `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeAssign {
    /// Child heap position the range is for.
    pub pos: u16,
    /// First color index (inclusive).
    pub lo: u64,
    /// One past the last color index.
    pub hi: u64,
}

/// Message of the range downcast.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeMsg {
    /// Cluster scope.
    pub cluster: NodeId,
    /// Up to two child assignments.
    pub assigns: Vec<RangeAssign>,
}

/// The range-downcast protocol (one slot per round; round `r` lets depth-`r`
/// holders transmit to depth-`r+1` children on their own channel).
#[derive(Debug, Clone)]
pub struct RangeCast {
    fv: u16,
    tdma: Tdma,
    cluster: NodeId,
    color: u16,
    /// Positions this node represents (takeover chain from procedure 2).
    serve: Vec<u16>,
    /// Number of own followers.
    n_followers: u64,
    /// Per-child subtree counts from procedure 2.
    child_counts: Vec<(u16, u64)>,
    /// The range received for the topmost served position.
    range: Option<(u64, u64)>,
    /// Assignment plan: ranges for external children (computed on arrival).
    plan: Vec<RangeAssign>,
    /// This node's own color index.
    own_index: Option<u64>,
    passive: bool,
    finished: bool,
}

impl RangeCast {
    /// A participant serving positions `serve` (chain from procedure 2,
    /// original first), with `n_followers` own followers and the child
    /// counts recorded during the count convergecast. The dominator serves
    /// position 0 and seeds `total` as its range.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fv: u16,
        tdma: Tdma,
        cluster: NodeId,
        color: u16,
        serve: Vec<u16>,
        n_followers: u64,
        child_counts: Vec<(u16, u64)>,
        total_if_root: Option<u64>,
    ) -> Self {
        assert!(
            !serve.is_empty(),
            "a participant serves at least one position"
        );
        assert_eq!(tdma.slots_per_round(), 1, "range cast uses 1-slot rounds");
        let mut rc = RangeCast {
            fv: fv.max(1),
            tdma,
            cluster,
            color,
            serve,
            n_followers,
            child_counts,
            range: None,
            plan: Vec::new(),
            own_index: None,
            passive: false,
            finished: false,
        };
        if let Some(total) = total_if_root {
            rc.accept_range(0, total);
        }
        rc
    }

    /// A node outside the procedure.
    pub fn passive(fv: u16, tdma: Tdma, cluster: NodeId) -> Self {
        RangeCast {
            fv: fv.max(1),
            tdma,
            cluster,
            color: 0,
            serve: vec![1],
            n_followers: 0,
            child_counts: Vec::new(),
            range: None,
            plan: Vec::new(),
            own_index: None,
            passive: true,
            finished: true,
        }
    }

    fn tree(&self) -> HeapTree {
        HeapTree::new(self.fv)
    }

    /// Topmost (shallowest) served position — where the range arrives.
    fn top(&self) -> u16 {
        *self.serve.last().unwrap()
    }

    /// Consumes an incoming range: fixes the own color index, follower
    /// block, and the per-external-child plan.
    fn accept_range(&mut self, lo: u64, hi: u64) {
        if self.range.is_some() {
            return;
        }
        self.range = Some((lo, hi));
        self.own_index = Some(lo);
        let mut cursor = lo + 1 + self.n_followers;
        let mut kids = self.child_counts.clone();
        kids.sort_unstable_by_key(|&(p, _)| p);
        for (pos, count) in kids {
            let hi_child = (cursor + count).min(hi);
            self.plan.push(RangeAssign {
                pos,
                lo: cursor,
                hi: hi_child,
            });
            cursor = hi_child;
        }
    }

    /// The color index this node took for itself.
    pub fn own_index(&self) -> Option<u64> {
        self.own_index
    }

    /// Colors reserved for this node's followers: `[base, base + n)`.
    pub fn follower_base(&self) -> Option<u64> {
        self.range.map(|(lo, _)| lo + 1)
    }

    /// Total rounds of the downcast: one per depth.
    pub fn rounds(&self) -> u64 {
        self.tree().max_depth() as u64
    }
}

impl Protocol for RangeCast {
    type Msg = RangeMsg;

    fn act(&mut self, slot: u64, _rng: &mut SmallRng) -> Action<RangeMsg> {
        if self.passive {
            return Action::Idle;
        }
        let Some(ts) = self.tdma.my_slot(slot, self.color) else {
            return Action::Idle;
        };
        if ts.round >= self.rounds() {
            return Action::Idle;
        }
        let tree = self.tree();
        let depth_now = ts.round as u16; // depth-`round` holders transmit
                                         // Transmit ranges for external children of any served position at
                                         // that position's depth.
        if self.range.is_some() {
            for &q in &self.serve {
                if tree.depth(q) == depth_now {
                    let assigns: Vec<RangeAssign> = self
                        .plan
                        .iter()
                        .filter(|a| a.pos / 2 == q)
                        .copied()
                        .collect();
                    if !assigns.is_empty() {
                        return Action::Transmit {
                            channel: tree.channel_of(q),
                            msg: RangeMsg {
                                cluster: self.cluster,
                                assigns,
                            },
                        };
                    }
                }
            }
        }
        // Listen for our own range: the parent of our topmost position
        // transmits at depth(top) − 1 on its own channel.
        let top = self.top();
        if self.range.is_none() && top >= 1 && tree.depth(top) == depth_now + 1 {
            return Action::Listen {
                channel: tree.channel_of(tree.parent(top)),
            };
        }
        Action::Idle
    }

    fn observe(&mut self, slot: u64, obs: Observation<RangeMsg>, _rng: &mut SmallRng) {
        let Some(ts) = self.tdma.my_slot(slot, self.color) else {
            return;
        };
        if let Observation::Received(r) = &obs {
            if r.msg.cluster == self.cluster {
                let top = self.top();
                if let Some(a) = r.msg.assigns.iter().find(|a| a.pos == top) {
                    self.accept_range(a.lo, a.hi);
                }
            }
        }
        if ts.round + 1 >= self.rounds() {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

// ---------------------------------------------------------------------------
// Procedure 4: announce follower colors.
// ---------------------------------------------------------------------------

/// Message assigning a color index to one follower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssignMsg {
    /// Cluster scope.
    pub cluster: NodeId,
    /// The follower being colored.
    pub follower: NodeId,
    /// Its within-cluster color index.
    pub index: u64,
}

/// The color-announcement protocol: reporters (and rescue dominators) send
/// one assignment per round on their own channel, twice each for
/// robustness; followers listen on the channel of their reporter.
#[derive(Debug, Clone)]
pub struct AssignColors {
    tdma: Tdma,
    cluster: NodeId,
    color: u16,
    /// Sender state: the queue of `(follower, index)` pairs.
    queue: Vec<(NodeId, u64)>,
    channel: Channel,
    /// Listener state.
    me: NodeId,
    listening: bool,
    my_index: Option<u64>,
    rounds_cap: u64,
    finished: bool,
}

impl AssignColors {
    /// A sender (reporter or rescue dominator) on `channel`.
    #[allow(clippy::too_many_arguments)]
    pub fn sender(
        tdma: Tdma,
        cluster: NodeId,
        color: u16,
        channel: Channel,
        queue: Vec<(NodeId, u64)>,
        rounds_cap: u64,
    ) -> Self {
        AssignColors {
            tdma,
            cluster,
            color,
            queue,
            channel,
            me: NodeId(u32::MAX),
            listening: false,
            my_index: None,
            rounds_cap,
            finished: false,
        }
    }

    /// A follower listening on its reporter's `channel`.
    pub fn listener(
        tdma: Tdma,
        cluster: NodeId,
        color: u16,
        channel: Channel,
        me: NodeId,
        rounds_cap: u64,
    ) -> Self {
        AssignColors {
            tdma,
            cluster,
            color,
            queue: Vec::new(),
            channel,
            me,
            listening: true,
            my_index: None,
            rounds_cap,
            finished: false,
        }
    }

    /// A node outside the procedure.
    pub fn passive(tdma: Tdma, cluster: NodeId) -> Self {
        let mut p = AssignColors::sender(tdma, cluster, 0, Channel::FIRST, Vec::new(), 0);
        p.finished = true;
        p
    }

    /// The color index this listener received.
    pub fn my_index(&self) -> Option<u64> {
        self.my_index
    }
}

impl Protocol for AssignColors {
    type Msg = AssignMsg;

    fn act(&mut self, slot: u64, _rng: &mut SmallRng) -> Action<AssignMsg> {
        let Some(ts) = self.tdma.my_slot(slot, self.color) else {
            return Action::Idle;
        };
        if ts.round >= self.rounds_cap {
            return Action::Idle;
        }
        if self.listening {
            if self.my_index.is_none() {
                return Action::Listen {
                    channel: self.channel,
                };
            }
            return Action::Idle;
        }
        // Senders: each assignment goes out twice (even/odd repetition).
        let idx = (ts.round / 2) as usize;
        if idx < self.queue.len() {
            let (follower, index) = self.queue[idx];
            Action::Transmit {
                channel: self.channel,
                msg: AssignMsg {
                    cluster: self.cluster,
                    follower,
                    index,
                },
            }
        } else {
            Action::Idle
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<AssignMsg>, _rng: &mut SmallRng) {
        let Some(ts) = self.tdma.my_slot(slot, self.color) else {
            return;
        };
        if self.listening {
            if let Observation::Received(r) = &obs {
                if r.msg.cluster == self.cluster && r.msg.follower == self.me {
                    self.my_index = Some(r.msg.index);
                }
            }
            if self.my_index.is_some() {
                self.finished = true;
            }
        } else if (ts.round / 2) as usize >= self.queue.len() {
            self.finished = true;
        }
        if ts.round + 1 >= self.rounds_cap {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

/// Result of the coloring algorithm.
#[derive(Debug, Clone)]
pub struct ColoringOutcome {
    /// Final color per node (`k·φ + cluster_color`); `None` when the node
    /// never received one (counted in `uncolored`).
    pub colors: Vec<Option<u32>>,
    /// Slots of procedure 1 (ID registration).
    pub p1_slots: u64,
    /// Slots of procedure 2 (count convergecast).
    pub p2_slots: u64,
    /// Slots of procedure 3 (range downcast).
    pub p3_slots: u64,
    /// Slots of procedure 4 (assignments).
    pub p4_slots: u64,
    /// Nodes without a color at the end.
    pub uncolored: usize,
}

impl ColoringOutcome {
    /// Total slots over the four procedures.
    pub fn total_slots(&self) -> u64 {
        self.p1_slots + self.p2_slots + self.p3_slots + self.p4_slots
    }

    /// Number of distinct colors used.
    pub fn palette_size(&self) -> usize {
        let mut seen: Vec<u32> = self.colors.iter().flatten().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// Runs the §7 coloring over a built structure (Theorem 24).
pub fn color_nodes(
    env: &NetworkEnv,
    structure: &AggregationStructure,
    algo: &AlgoConfig,
    seed: u64,
) -> ColoringOutcome {
    let n = env.len();
    let phi = structure.phi.max(1) as u32;
    let records = &structure.records;
    let lambda = algo.consts.lambda;

    // --- Procedure 1: followers register IDs (payload irrelevant). ---
    let fcfg = FollowerCfg {
        rounds_per_phase: algo.agg_rounds_per_phase(),
        backoff_threshold: algo.agg_backoff_threshold(),
        lambda,
        tdma: Tdma::new(phi as u16, follower::SLOTS_PER_ROUND),
        max_phases: 24
            + 2 * (algo.know.log2_n() as u64)
            + algo.know.n_bound as u64
                / ((algo.channels as u64) * algo.agg_rounds_per_phase().max(1)),
    };
    let protocols: Vec<FollowerAgg<SumAgg>> = (0..n)
        .map(|i| {
            let r = &records[i];
            let color = r.cluster_color.unwrap_or(0);
            match (r.role, r.cluster) {
                (Role::Dominator, Some(_)) => {
                    FollowerAgg::dominator(SumAgg, fcfg, NodeId(i as u32), color, r.serves_channel0)
                }
                (Role::Reporter { heap_pos }, Some(c)) => FollowerAgg::reporter(
                    SumAgg,
                    fcfg,
                    NodeId(i as u32),
                    c,
                    color,
                    Channel(heap_pos - 1),
                    0,
                ),
                (Role::Follower, Some(c)) => {
                    let fv = r.cluster_channels.unwrap_or(1);
                    let est = r.cluster_size_est.unwrap_or(1).max(1);
                    let pu = (lambda * fv as f64 / est as f64).clamp(1e-6, lambda / 2.0);
                    FollowerAgg::follower(SumAgg, fcfg, NodeId(i as u32), c, color, fv, 0, pu)
                }
                _ => FollowerAgg::passive(SumAgg, fcfg, NodeId(i as u32)),
            }
        })
        .collect();
    let mut engine = Engine::new(
        env.params,
        env.positions.clone(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xC0102),
    );
    let cap = fcfg.tdma.slots_for_rounds(fcfg.total_rounds());
    engine.run_until(cap, |ps: &[FollowerAgg<SumAgg>]| {
        ps.iter().all(|p| p.is_delivered())
    });
    let p1_slots = engine.slot();
    let p1 = engine.into_protocols();

    // --- Procedure 2: subtree counts up the tree. ---
    let tcfg_of = |fv: u16| TreeCfg {
        fv: fv.max(1),
        tdma: Tdma::new(phi as u16, treecast::SLOTS_PER_ROUND),
    };
    let max_fv = records
        .iter()
        .filter_map(|r| r.cluster_channels)
        .max()
        .unwrap_or(1);
    let protocols: Vec<TreeCast<SumAgg>> = (0..n)
        .map(|i| {
            let r = &records[i];
            let color = r.cluster_color.unwrap_or(0);
            let own_followers = p1[i]
                .reporter_state()
                .map(|(_, ids)| ids.len() as i64)
                .unwrap_or(0);
            match (r.role, r.cluster) {
                (Role::Dominator, Some(c)) => TreeCast::dominator(
                    SumAgg,
                    tcfg_of(r.cluster_channels.unwrap_or(1)),
                    c,
                    color,
                    1 + own_followers,
                ),
                (Role::Reporter { heap_pos }, Some(c)) => TreeCast::reporter(
                    SumAgg,
                    tcfg_of(r.cluster_channels.unwrap_or(1)),
                    c,
                    color,
                    heap_pos,
                    1 + own_followers,
                ),
                _ => TreeCast::passive(SumAgg, tcfg_of(1), r.cluster.unwrap_or(NodeId(i as u32))),
            }
        })
        .collect();
    let mut engine = Engine::new(
        env.params,
        env.positions.clone(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xC0103),
    );
    let tcap = tcfg_of(max_fv)
        .tdma
        .slots_for_rounds(tcfg_of(max_fv).rounds())
        + treecast::SLOTS_PER_ROUND as u64;
    engine.run_until_done(tcap);
    let p2_slots = engine.slot();
    let p2 = engine.into_protocols();

    // --- Procedure 3: ranges down the tree. ---
    let rc_tdma = Tdma::new(phi as u16, 1);
    let protocols: Vec<RangeCast> = (0..n)
        .map(|i| {
            let r = &records[i];
            let color = r.cluster_color.unwrap_or(0);
            let fv = r.cluster_channels.unwrap_or(1);
            let followers = p1[i]
                .reporter_state()
                .map(|(_, ids)| ids.len() as u64)
                .unwrap_or(0);
            let child_counts: Vec<(u16, u64)> = p2[i]
                .child_values()
                .iter()
                .map(|&(p, v)| (p, v.max(0) as u64))
                .collect();
            match (r.role, r.cluster) {
                (Role::Dominator, Some(c)) => {
                    let total = (*p2[i].value()).max(1) as u64;
                    RangeCast::new(
                        fv,
                        rc_tdma,
                        c,
                        color,
                        vec![0],
                        followers,
                        child_counts,
                        Some(total),
                    )
                }
                (Role::Reporter { .. }, Some(c)) => RangeCast::new(
                    fv,
                    rc_tdma,
                    c,
                    color,
                    p2[i].chain().to_vec(),
                    followers,
                    child_counts,
                    None,
                ),
                _ => RangeCast::passive(fv, rc_tdma, r.cluster.unwrap_or(NodeId(i as u32))),
            }
        })
        .collect();
    let mut engine = Engine::new(
        env.params,
        env.positions.clone(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xC0104),
    );
    let rcap = rc_tdma.slots_for_rounds(HeapTree::new(max_fv).max_depth() as u64 + 1) + 1;
    engine.run_until_done(rcap);
    let p3_slots = engine.slot();
    let p3 = engine.into_protocols();

    // --- Procedure 4: announce follower colors. ---
    let a_tdma = Tdma::new(phi as u16, 1);
    // Senders: reporters (and rescue dominators) with their follower queues.
    let max_queue = (0..n)
        .map(|i| p1[i].reporter_state().map_or(0, |(_, ids)| ids.len()))
        .max()
        .unwrap_or(0) as u64;
    let rounds_cap = 2 * max_queue + 4;
    let protocols: Vec<AssignColors> = (0..n)
        .map(|i| {
            let r = &records[i];
            let color = r.cluster_color.unwrap_or(0);
            match (r.role, r.cluster) {
                (Role::Dominator | Role::Reporter { .. }, Some(c)) => {
                    let queue: Vec<(NodeId, u64)> =
                        match (p1[i].reporter_state(), p3[i].follower_base()) {
                            (Some((_, ids)), Some(base)) => ids
                                .iter()
                                .enumerate()
                                .map(|(k, &f)| (f, base + k as u64))
                                .collect(),
                            _ => Vec::new(),
                        };
                    let channel = match r.role {
                        Role::Reporter { heap_pos } => Channel(heap_pos - 1),
                        _ => Channel::FIRST,
                    };
                    AssignColors::sender(a_tdma, c, color, channel, queue, rounds_cap)
                }
                (Role::Follower, Some(c)) => {
                    // Listen on the channel of the reporter we delivered to.
                    let ch = p1[i]
                        .delivered_to()
                        .and_then(|rep| match records[rep.index()].role {
                            Role::Reporter { heap_pos } => Some(Channel(heap_pos - 1)),
                            Role::Dominator => Some(Channel::FIRST),
                            _ => None,
                        })
                        .unwrap_or(Channel::FIRST);
                    AssignColors::listener(a_tdma, c, color, ch, NodeId(i as u32), rounds_cap)
                }
                _ => AssignColors::passive(a_tdma, NodeId(i as u32)),
            }
        })
        .collect();
    let mut engine = Engine::new(
        env.params,
        env.positions.clone(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xC0105),
    );
    engine.run_until_done(a_tdma.slots_for_rounds(rounds_cap) + 1);
    let p4_slots = engine.slot();
    let p4 = engine.into_protocols();

    // --- Assemble final colors: k·φ + cluster_color. ---
    let mut colors: Vec<Option<u32>> = vec![None; n];
    for i in 0..n {
        let r = &records[i];
        let Some(ccolor) = r.cluster_color else {
            continue;
        };
        let k = match r.role {
            Role::Dominator | Role::Reporter { .. } => p3[i].own_index(),
            Role::Follower => p4[i].my_index(),
            Role::Undecided => None,
        };
        colors[i] = k.map(|k| (k as u32) * phi + ccolor as u32);
    }
    let uncolored = colors.iter().filter(|c| c.is_none()).count();

    ColoringOutcome {
        colors,
        p1_slots,
        p2_slots,
        p3_slots,
        p4_slots,
        uncolored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{build_structure, StructureConfig, SubstrateMode};
    use mca_geom::Deployment;
    use mca_sinr::SinrParams;
    use rand::{rngs::SmallRng, SeedableRng};

    fn run_coloring(
        n: usize,
        side: f64,
        channels: u16,
        seed: u64,
    ) -> (NetworkEnv, ColoringOutcome) {
        let params = SinrParams::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let env = NetworkEnv::new(params, &deploy);
        let algo = AlgoConfig::practical(channels, &params, n);
        let mut cfg = StructureConfig::new(algo, seed);
        cfg.substrate = SubstrateMode::Oracle;
        let s = build_structure(&env, &cfg);
        let out = color_nodes(&env, &s, &algo, seed);
        (env, out)
    }

    #[test]
    fn coloring_is_proper_on_comm_graph() {
        let (env, out) = run_coloring(200, 14.0, 8, 41);
        assert_eq!(out.uncolored, 0, "uncolored nodes remain");
        let g = env.comm_graph();
        let colors: Vec<u32> = out.colors.iter().map(|c| c.unwrap()).collect();
        assert_eq!(
            g.coloring_violation(&colors),
            None,
            "adjacent nodes share a color"
        );
    }

    #[test]
    fn palette_is_linear_in_max_degree() {
        let (env, out) = run_coloring(250, 12.0, 8, 43);
        assert_eq!(out.uncolored, 0);
        let delta = env.comm_graph().max_degree();
        let palette = out.palette_size();
        assert!(
            palette <= 12 * (delta + 1),
            "palette {palette} vs Δ = {delta}"
        );
    }

    #[test]
    fn all_colors_distinct_within_cluster_range() {
        // Colors are distinct across any adjacent pair; globally the count
        // of nodes per color stays small on a dense instance.
        let (_, out) = run_coloring(120, 6.0, 4, 47);
        assert_eq!(out.uncolored, 0);
        let mut counts = std::collections::HashMap::new();
        for c in out.colors.iter().flatten() {
            *counts.entry(*c).or_insert(0usize) += 1;
        }
        // On a 6x6 field with R_eps = 4 most nodes are mutually adjacent;
        // no color should repeat more than a handful of times.
        let max_reuse = counts.values().max().copied().unwrap_or(0);
        assert!(max_reuse <= 4, "color reused {max_reuse} times");
    }

    #[test]
    fn range_cast_plan_partitions() {
        // Unit check: a node with 3 followers and children of sizes 5 and 2
        // splits [10, 21) into itself=10, followers 11..14, kids [14,19),[19,21).
        let tdma = Tdma::new(1, 1);
        let rc = RangeCast::new(
            3,
            tdma,
            NodeId(0),
            0,
            vec![1],
            3,
            vec![(3, 2), (2, 5)],
            Some(11),
        );
        // total_if_root treats this as the root with range [0, 11).
        assert_eq!(rc.own_index(), Some(0));
        assert_eq!(rc.follower_base(), Some(1));
        let plan = rc.plan.clone();
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan[0],
            RangeAssign {
                pos: 2,
                lo: 4,
                hi: 9
            }
        );
        assert_eq!(
            plan[1],
            RangeAssign {
                pos: 3,
                lo: 9,
                hi: 11
            }
        );
    }

    #[test]
    fn coloring_slot_accounting() {
        let (_, out) = run_coloring(80, 8.0, 4, 53);
        assert_eq!(
            out.total_slots(),
            out.p1_slots + out.p2_slots + out.p3_slots + out.p4_slots
        );
        assert!(out.p1_slots > 0 && out.p4_slots > 0);
    }
}
