//! Cluster-Size Approximation, large-`Δ̂` variant (paper §5.2.1, Lemma 12).
//!
//! The stage is divided into `⌈log₂ Δ̂⌉` phases of `γ₁·ln n + 1` one-slot
//! rounds. In data rounds of phase `j` (0-based) every unsettled member
//! transmits with probability `p_j = (λ/Δ̂)·2^j` — the probability doubles
//! each phase. The coordinator (the cluster's dominator; a channel leader in
//! the Appendix-A variant) counts receptions from its own group; when a
//! phase delivers at least `ω₁·ln n` of them it settles the estimate
//! `|Ĉ| = ⌈Δ̂/2^j⌉` and announces it in every subsequent notify round
//! (the last round of each phase). Members adopt the estimate and halt.
//!
//! The protocol is parameterized by group id and channel so the small-`Δ̂`
//! variant (`csa_small`) can run one instance per channel with the elected
//! leader as coordinator.

use crate::schedule::Tdma;
use mca_radio::{Action, Channel, NodeId, Observation, Protocol};
use mca_sinr::SinrParams;
use rand::rngs::SmallRng;
use rand::Rng;

/// Messages of the CSA protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsaMsg {
    /// A member's presence beacon, tagged with its group.
    Data {
        /// Group (cluster / channel-group) id.
        group: NodeId,
    },
    /// The coordinator's settled estimate.
    Estimate {
        /// Group id the estimate belongs to.
        group: NodeId,
        /// The size estimate.
        size: u64,
    },
}

/// CSA configuration (shared by all participants of a group).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsaConfig {
    /// Known upper bound `Δ̂` on the group size.
    pub delta_hat: u64,
    /// Contention target `λ`.
    pub lambda: f64,
    /// Data rounds per phase (`γ₁·ln n`).
    pub rounds_per_phase: u64,
    /// Settle threshold (`ω₁·ln n` receptions in one phase).
    pub settle_threshold: u64,
    /// Channel the group operates on.
    pub channel: Channel,
    /// TDMA schedule (1 slot per round).
    pub tdma: Tdma,
    /// Conservative node-side parameters (unused today; kept for parity with
    /// the other phases and future distance filtering).
    pub params: SinrParams,
}

impl CsaConfig {
    /// Number of phases: `max(1, ⌈log₂ Δ̂⌉)`.
    pub fn phases(&self) -> u64 {
        let d = self.delta_hat.max(2);
        (64 - (d - 1).leading_zeros()) as u64
    }

    /// Total protocol rounds.
    pub fn total_rounds(&self) -> u64 {
        self.phases() * (self.rounds_per_phase + 1)
    }

    /// Transmission probability in (0-based) phase `j`, capped at `λ/2`.
    pub fn prob(&self, phase: u64) -> f64 {
        let p = self.lambda / self.delta_hat.max(1) as f64 * 2f64.powi(phase.min(62) as i32);
        p.min(self.lambda / 2.0)
    }

    /// The estimate settled in (0-based) phase `j`: `⌈Δ̂/2^j⌉`.
    pub fn estimate_for_phase(&self, phase: u64) -> u64 {
        let div = 1u64 << phase.min(63);
        self.delta_hat.div_ceil(div).max(1)
    }
}

/// Role of a participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsaRole {
    /// Counts receptions and announces the estimate (dominator / leader).
    Coordinator,
    /// Beacons presence, adopts the announced estimate.
    Member,
    /// Does not participate.
    Passive,
}

/// Per-node CSA state machine.
#[derive(Debug, Clone)]
pub struct CsaProtocol {
    cfg: CsaConfig,
    role: CsaRole,
    group: NodeId,
    color: u16,
    count_this_phase: u64,
    settled: Option<u64>,
    settle_phase: Option<u64>,
    member_estimate: Option<u64>,
    rounds_done: u64,
    finished: bool,
}

impl CsaProtocol {
    /// Creates a participant of `group` with TDMA color `color`.
    pub fn new(role: CsaRole, group: NodeId, color: u16, cfg: CsaConfig) -> Self {
        assert_eq!(cfg.tdma.slots_per_round(), 1, "CSA uses 1-slot rounds");
        assert!(cfg.lambda > 0.0 && cfg.lambda <= 0.5);
        assert!(cfg.rounds_per_phase >= 1 && cfg.settle_threshold >= 1);
        CsaProtocol {
            cfg,
            role,
            group,
            color,
            count_this_phase: 0,
            settled: None,
            settle_phase: None,
            member_estimate: None,
            rounds_done: 0,
            finished: matches!(role, CsaRole::Passive),
        }
    }

    /// Phase (0-based) and whether the round is the notify round.
    fn phase_of(&self, round: u64) -> (u64, bool) {
        let span = self.cfg.rounds_per_phase + 1;
        (round / span, round % span == self.cfg.rounds_per_phase)
    }

    /// The coordinator's settled estimate.
    pub fn coordinator_estimate(&self) -> Option<u64> {
        self.settled
    }

    /// The phase in which the coordinator settled.
    pub fn settle_phase(&self) -> Option<u64> {
        self.settle_phase
    }

    /// The estimate a member received.
    pub fn member_estimate(&self) -> Option<u64> {
        self.member_estimate
    }

    /// Whether this participant has what it came for (coordinator settled /
    /// member informed). Used for early termination measurements.
    pub fn is_satisfied(&self) -> bool {
        match self.role {
            CsaRole::Coordinator => self.settled.is_some(),
            CsaRole::Member => self.member_estimate.is_some(),
            CsaRole::Passive => true,
        }
    }
}

impl Protocol for CsaProtocol {
    type Msg = CsaMsg;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<CsaMsg> {
        let Some(ts) = self.cfg.tdma.my_slot(slot, self.color) else {
            return Action::Idle;
        };
        if ts.round >= self.cfg.total_rounds() {
            return Action::Idle;
        }
        let (phase, notify) = self.phase_of(ts.round);
        let ch = self.cfg.channel;
        match self.role {
            CsaRole::Coordinator => {
                if notify {
                    if let Some(size) = self.settled {
                        return Action::Transmit {
                            channel: ch,
                            msg: CsaMsg::Estimate {
                                group: self.group,
                                size,
                            },
                        };
                    }
                    Action::Listen { channel: ch }
                } else {
                    Action::Listen { channel: ch }
                }
            }
            CsaRole::Member => {
                if notify {
                    Action::Listen { channel: ch }
                } else if self.member_estimate.is_none() && rng.gen_bool(self.cfg.prob(phase)) {
                    Action::Transmit {
                        channel: ch,
                        msg: CsaMsg::Data { group: self.group },
                    }
                } else {
                    Action::Listen { channel: ch }
                }
            }
            CsaRole::Passive => Action::Idle,
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<CsaMsg>, _rng: &mut SmallRng) {
        let Some(ts) = self.cfg.tdma.my_slot(slot, self.color) else {
            return;
        };
        if ts.round >= self.cfg.total_rounds() {
            self.finished = true;
            return;
        }
        let (phase, notify) = self.phase_of(ts.round);
        match self.role {
            CsaRole::Coordinator => {
                if notify {
                    // Phase boundary: settle or reset.
                    if self.settled.is_none() && self.count_this_phase >= self.cfg.settle_threshold
                    {
                        self.settled = Some(self.cfg.estimate_for_phase(phase));
                        self.settle_phase = Some(phase);
                    }
                    self.count_this_phase = 0;
                } else if let Observation::Received(r) = &obs {
                    if matches!(r.msg, CsaMsg::Data { group } if group == self.group) {
                        self.count_this_phase += 1;
                    }
                }
            }
            CsaRole::Member => {
                if notify {
                    if let Observation::Received(r) = &obs {
                        if let CsaMsg::Estimate { group, size } = r.msg {
                            if group == self.group {
                                self.member_estimate = Some(size);
                            }
                        }
                    }
                }
            }
            CsaRole::Passive => {}
        }
        self.rounds_done = ts.round + 1;
        if self.rounds_done >= self.cfg.total_rounds() {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_geom::Point;
    use mca_radio::Engine;
    use mca_sinr::SinrParams;

    fn cfg(delta_hat: u64, phi: u16) -> CsaConfig {
        CsaConfig {
            delta_hat,
            lambda: 0.5,
            rounds_per_phase: 40,
            settle_threshold: 10,
            channel: Channel::FIRST,
            tdma: Tdma::new(phi, 1),
            params: SinrParams::default(),
        }
    }

    #[test]
    fn config_arithmetic() {
        let c = cfg(1024, 1);
        assert_eq!(c.phases(), 10);
        assert_eq!(c.total_rounds(), 10 * 41);
        assert!((c.prob(0) - 0.5 / 1024.0).abs() < 1e-12);
        assert!((c.prob(9) - 0.25).abs() < 1e-12);
        // Cap at lambda/2.
        assert!((c.prob(40) - 0.25).abs() < 1e-12);
        assert_eq!(c.estimate_for_phase(0), 1024);
        assert_eq!(c.estimate_for_phase(9), 2);
    }

    #[test]
    fn phases_of_small_delta() {
        assert_eq!(cfg(1, 1).phases(), 1);
        assert_eq!(cfg(2, 1).phases(), 1);
        assert_eq!(cfg(3, 1).phases(), 2);
        assert_eq!(cfg(4, 1).phases(), 2);
        assert_eq!(cfg(5, 1).phases(), 3);
    }

    /// One cluster: dominator at origin, `m` members packed around it.
    fn run_single_cluster(m: usize, delta_hat: u64, seed: u64) -> (Option<u64>, Vec<Option<u64>>) {
        let c = cfg(delta_hat, 1);
        let mut positions = vec![Point::ORIGIN];
        let mut protocols = vec![CsaProtocol::new(CsaRole::Coordinator, NodeId(0), 0, c)];
        for i in 0..m {
            let theta = i as f64 / m as f64 * std::f64::consts::TAU;
            positions.push(Point::unit(theta) * 0.8);
            protocols.push(CsaProtocol::new(CsaRole::Member, NodeId(0), 0, c));
        }
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, seed);
        let max = c.tdma.slots_for_rounds(c.total_rounds()) + 1;
        engine.run_until(max, |ps| ps.iter().all(|p| p.is_satisfied()));
        let out = engine.into_protocols();
        (
            out[0].coordinator_estimate(),
            out[1..].iter().map(|p| p.member_estimate()).collect(),
        )
    }

    #[test]
    fn estimates_within_constant_factor() {
        for (m, seed) in [(8usize, 1u64), (32, 2), (100, 3)] {
            let (est, members) = run_single_cluster(m, 512, seed);
            let est = est.unwrap_or_else(|| panic!("m={m}: coordinator never settled"));
            let ratio = est as f64 / m as f64;
            assert!(
                (0.2..=8.0).contains(&ratio),
                "m={m}: estimate {est} off by {ratio}"
            );
            // Every member learned the estimate.
            for (i, me) in members.iter().enumerate() {
                assert_eq!(*me, Some(est), "member {i} missed the estimate");
            }
        }
    }

    #[test]
    fn larger_clusters_settle_earlier() {
        // Bigger clusters reach the contention window in earlier phases.
        let run_phase = |m: usize| {
            let c = cfg(512, 1);
            let mut positions = vec![Point::ORIGIN];
            let mut protocols = vec![CsaProtocol::new(CsaRole::Coordinator, NodeId(0), 0, c)];
            for i in 0..m {
                let theta = i as f64 / m as f64 * std::f64::consts::TAU;
                positions.push(Point::unit(theta) * 0.5);
                protocols.push(CsaProtocol::new(CsaRole::Member, NodeId(0), 0, c));
            }
            let mut engine = Engine::new(SinrParams::default(), positions, protocols, 5);
            let max = c.tdma.slots_for_rounds(c.total_rounds()) + 1;
            engine.run_until(max, |ps| ps.iter().all(|p| p.is_satisfied()));
            engine.protocols()[0].settle_phase().expect("must settle")
        };
        let big = run_phase(128);
        let small = run_phase(8);
        assert!(
            big < small,
            "big cluster settled at phase {big}, small at {small}"
        );
    }

    #[test]
    fn passive_is_done_immediately() {
        let p = CsaProtocol::new(CsaRole::Passive, NodeId(0), 0, cfg(16, 1));
        assert!(p.is_done());
        assert!(p.is_satisfied());
    }

    #[test]
    fn group_filter_blocks_foreign_estimates() {
        // Two co-located groups on the same channel and color: members must
        // only adopt their own coordinator's estimate. Group 1 has 3 members,
        // group 2 has 24; estimates should differ.
        let c = cfg(64, 1);
        let mut positions = vec![Point::ORIGIN, Point::new(0.1, 0.0)];
        let mut protocols = vec![
            CsaProtocol::new(CsaRole::Coordinator, NodeId(0), 0, c),
            CsaProtocol::new(CsaRole::Coordinator, NodeId(1), 0, c),
        ];
        for i in 0..3 {
            positions.push(Point::new(0.0, 0.2 + 0.1 * i as f64));
            protocols.push(CsaProtocol::new(CsaRole::Member, NodeId(0), 0, c));
        }
        for i in 0..24 {
            positions.push(Point::new(0.5 + 0.01 * i as f64, -0.3));
            protocols.push(CsaProtocol::new(CsaRole::Member, NodeId(1), 0, c));
        }
        let mut engine = Engine::new(SinrParams::default(), positions, protocols, 7);
        let max = c.tdma.slots_for_rounds(c.total_rounds()) + 1;
        engine.run_until(max, |ps| ps.iter().all(|p| p.is_satisfied()));
        let out = engine.into_protocols();
        let est0 = out[0].coordinator_estimate();
        let est1 = out[1].coordinator_estimate();
        if let (Some(e0), Some(e1)) = (est0, est1) {
            for p in &out[2..5] {
                assert!(p.member_estimate().is_none() || p.member_estimate() == Some(e0));
            }
            for p in &out[5..] {
                assert!(p.member_estimate().is_none() || p.member_estimate() == Some(e1));
            }
        }
    }

    #[test]
    fn tdma_color_respected() {
        // Color-1 node in a phi=2 schedule must idle during color-0 blocks.
        let c = cfg(16, 2);
        let mut p = CsaProtocol::new(CsaRole::Member, NodeId(0), 1, c);
        let mut rng = mca_radio::rng::derive_rng(0, 0);
        assert!(matches!(p.act(0, &mut rng), Action::Idle)); // color 0 block
        assert!(!matches!(p.act(1, &mut rng), Action::Idle)); // color 1 block
    }
}
