//! Reporter election (paper §5.2.2, Lemma 15).
//!
//! Every cluster member knows the CSA size estimate `|Ĉ_v|`, hence computes
//! the same channel count `f_v = min{⌈|Ĉ_v|/(c₁·ln n)⌉, F}`, picks one of
//! the first `f_v` channels uniformly at random, and runs the §4 ruling set
//! *within its cluster on its channel* with radius `2·r_c` (any two cluster
//! members are within `2·r_c`, so the set has at most one member per
//! channel — the *reporter*). Elections across clusters run simultaneously
//! under the cluster-color TDMA; elections across channels of one cluster
//! run in parallel on their channels.
//!
//! The transmission probability is `λ/(2·m̂)` with `m̂ = ⌈|Ĉ_v|/f_v⌉`, the
//! expected per-channel population — the contention-correct instantiation
//! of the paper's `1/(2µ)` (which presumes constant density; see
//! `DESIGN.md` deviation #8).

use crate::config::AlgoConfig;
use crate::ruling::{self, ProbPolicy, RulingConfig, RulingOutcome, RulingSet};
use crate::schedule::Tdma;
use mca_geom::Point;
use mca_radio::{Channel, Engine, NodeId};
use mca_sinr::SinrParams;

/// Per-node input to the election: what the node learned so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectionSeat {
    /// The node's cluster (dominator id).
    pub cluster: NodeId,
    /// The cluster's TDMA color.
    pub color: u16,
    /// CSA size estimate shared by the cluster.
    pub size_est: u64,
    /// Whether this node is the cluster's dominator (doesn't run).
    pub is_dominator: bool,
}

/// Result of the reporter-election phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ElectionOutcome {
    /// Per node: the channel it selected (members only).
    pub channel: Vec<Option<Channel>>,
    /// Per node: elected reporter on its channel?
    pub is_reporter: Vec<bool>,
    /// Per node (meaningful for dominators): whether an `IN` announcement
    /// was heard on the first channel — i.e. the dominator observed that
    /// channel 0 elected a reporter. Dominators that heard none serve as
    /// channel-0 reporters during aggregation (rescue for clusters whose
    /// elections all failed).
    pub dominator_heard_in: Vec<bool>,
    /// Slots consumed.
    pub slots: u64,
}

impl ElectionOutcome {
    /// Reporters of `cluster`, as `(channel, node)` pairs.
    pub fn reporters_of(
        &self,
        cluster: NodeId,
        seats: &[Option<ElectionSeat>],
    ) -> Vec<(Channel, NodeId)> {
        (0..self.is_reporter.len())
            .filter(|&i| self.is_reporter[i] && seats[i].is_some_and(|s| s.cluster == cluster))
            .map(|i| (self.channel[i].unwrap(), NodeId(i as u32)))
            .collect()
    }
}

/// Runs the election. `seats[i] = None` for nodes outside any cluster
/// (they stay silent). `phi` is the TDMA color count; `cluster_radius` the
/// dominating radius actually used (the election radius is twice it).
pub fn elect_reporters(
    true_params: &SinrParams,
    positions: &[Point],
    seats: &[Option<ElectionSeat>],
    cfg: &AlgoConfig,
    phi: u16,
    cluster_radius: f64,
    seed: u64,
) -> ElectionOutcome {
    let n = positions.len();
    assert_eq!(seats.len(), n);
    assert!(cluster_radius > 0.0);
    let node_params = cfg.node_params();
    let tdma = Tdma::new(phi.max(1), ruling::SLOTS_PER_ROUND);
    // Elections need both a lone HELLO *and* a lone ACK on the channel, so
    // the per-round success rate is ~λ²·e^{-2λ}; three γ·ln n batches push
    // the per-channel failure probability into the noise.
    let rounds = cfg.ruling_rounds() * 3;
    let mut rng = mca_radio::rng::derive_rng(seed, 0xE1EC7);

    let mut channel: Vec<Option<Channel>> = vec![None; n];
    let protocols: Vec<RulingSet> = (0..n)
        .map(|i| {
            let make_passive = |ch: Channel, color: u16, group: NodeId| RulingConfig {
                radius: 2.0 * cluster_radius,
                prob: ProbPolicy::Fixed(0.25),
                p_cap: cfg.consts.p_cap,
                rounds,
                channel: ch,
                group: Some(group),
                tdma,
                color,
                params: node_params,
                timeout_join: ruling::TimeoutRule::JoinIfQuiet,
            };
            match seats[i] {
                Some(seat) if seat.is_dominator => {
                    // The dominator helps elections on the first channel by
                    // acknowledging clear HELLOs (it never competes); this
                    // lets single-member clusters elect their reporter.
                    let mut rcfg = make_passive(Channel::FIRST, seat.color, seat.cluster);
                    rcfg.prob = ProbPolicy::Fixed((cfg.consts.lambda / 2.0).min(cfg.consts.p_cap));
                    RulingSet::helper(NodeId(i as u32), rcfg)
                }
                Some(seat) if !seat.is_dominator => {
                    let fv = cfg.cluster_channels(seat.size_est);
                    let ch = Channel(
                        (mca_radio::rng::mix64(mca_radio::rng::derive_seed(seed, i as u64) ^ 0xC4A)
                            % fv as u64) as u16,
                    );
                    channel[i] = Some(ch);
                    let m_hat = (seat.size_est.div_ceil(fv as u64)).max(1);
                    let p = (cfg.consts.lambda / (2.0 * m_hat as f64)).min(cfg.consts.p_cap);
                    let mut rcfg = make_passive(ch, seat.color, seat.cluster);
                    // CSA estimates are only constant-factor accurate, so a
                    // fixed probability can undershoot badly on small
                    // clusters; the carrier-sense ramp self-corrects.
                    rcfg.prob = ProbPolicy::Adaptive {
                        start: p,
                        busy_threshold: node_params.clear_threshold_for(2.0 * cluster_radius),
                    };
                    RulingSet::new(NodeId(i as u32), rcfg)
                }
                _ => {
                    // Dominators and unclustered nodes sit out.
                    let rcfg = make_passive(Channel::FIRST, 0, NodeId(i as u32));
                    RulingSet::passive(NodeId(i as u32), rcfg)
                }
            }
        })
        .collect();
    // Consume rng so the borrow checker sees it used (channel choice uses
    // hashing to stay independent of construction order).
    let _ = rand::Rng::gen::<u64>(&mut rng);

    let mut engine = Engine::new(
        *true_params,
        positions.to_vec(),
        protocols,
        mca_radio::rng::derive_seed(seed, 0xE1EC8),
    );
    let max_slots = tdma.slots_for_rounds(rounds) + ruling::SLOTS_PER_ROUND as u64;
    engine.run_until_done(max_slots);
    let slots = engine.slot();
    let out = engine.into_protocols();

    ElectionOutcome {
        channel,
        is_reporter: out
            .iter()
            .map(|p| matches!(p.outcome(), RulingOutcome::Elected))
            .collect(),
        dominator_heard_in: out.iter().map(|p| p.heard_in()).collect(),
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// One tight cluster of `m` members around a dominator, `size_est = m`.
    fn one_cluster(
        m: usize,
        est: u64,
        channels: u16,
        seed: u64,
    ) -> (ElectionOutcome, Vec<Option<ElectionSeat>>, AlgoConfig) {
        let params = SinrParams::default();
        let cfg = AlgoConfig::practical(channels, &params, (m + 1).max(64));
        let mut positions = vec![Point::ORIGIN];
        let mut seats = vec![Some(ElectionSeat {
            cluster: NodeId(0),
            color: 0,
            size_est: est,
            is_dominator: true,
        })];
        for i in 0..m {
            let theta = i as f64 / m as f64 * std::f64::consts::TAU;
            positions.push(Point::unit(theta) * (0.2 + 0.7 * (i % 7) as f64 / 7.0));
            seats.push(Some(ElectionSeat {
                cluster: NodeId(0),
                color: 0,
                size_est: est,
                is_dominator: false,
            }));
        }
        let out = elect_reporters(&params, &positions, &seats, &cfg, 1, 1.0, seed);
        (out, seats, cfg)
    }

    #[test]
    fn at_most_one_reporter_per_channel() {
        for seed in 0..5 {
            let (out, seats, _) = one_cluster(60, 60, 8, seed);
            let mut per_channel: HashMap<Channel, usize> = HashMap::new();
            for i in 0..seats.len() {
                if out.is_reporter[i] {
                    *per_channel.entry(out.channel[i].unwrap()).or_default() += 1;
                }
            }
            for (ch, count) in &per_channel {
                assert!(
                    *count <= 1,
                    "seed {seed}: channel {ch} has {count} reporters"
                );
            }
        }
    }

    #[test]
    fn most_channels_get_a_reporter() {
        let mut elected = 0usize;
        let mut total = 0usize;
        for seed in 0..5 {
            let (out, seats, cfg) = one_cluster(60, 60, 8, seed);
            let fv = cfg.cluster_channels(60);
            total += fv as usize;
            let mut seen = std::collections::HashSet::new();
            for i in 0..seats.len() {
                if out.is_reporter[i] {
                    seen.insert(out.channel[i].unwrap());
                }
            }
            elected += seen.len();
        }
        assert!(
            elected * 10 >= total * 7,
            "only {elected}/{total} channels got reporters"
        );
    }

    #[test]
    fn dominator_never_reporter() {
        let (out, _, _) = one_cluster(30, 30, 4, 1);
        assert!(!out.is_reporter[0]);
        assert!(out.channel[0].is_none());
    }

    #[test]
    fn channels_respect_fv() {
        let (out, seats, cfg) = one_cluster(50, 50, 16, 2);
        let fv = cfg.cluster_channels(50);
        for i in 1..seats.len() {
            let ch = out.channel[i].unwrap();
            assert!(ch.0 < fv, "channel {ch} out of f_v = {fv}");
        }
    }

    #[test]
    fn single_channel_cluster() {
        // Tiny cluster: f_v = 1, everyone on channel 0, one reporter.
        let (out, seats, _) = one_cluster(6, 6, 8, 3);
        for i in 1..seats.len() {
            assert_eq!(out.channel[i], Some(Channel::FIRST));
        }
        let reporters = out.is_reporter.iter().filter(|&&r| r).count();
        assert!(reporters <= 1);
    }

    #[test]
    fn reporters_of_lists_cluster_reporters() {
        let (out, seats, _) = one_cluster(40, 40, 8, 4);
        let reps = out.reporters_of(NodeId(0), &seats);
        for (ch, node) in &reps {
            assert!(out.is_reporter[node.index()]);
            assert_eq!(out.channel[node.index()], Some(*ch));
        }
    }
}
