//! Algorithm constants and configuration.
//!
//! The paper fixes many constants for its union-bound analyses
//! (`ω₁ = 36`, `γ₁ = 4ω₁/(κλ)`, `γ = 12µ²/κ²`, `ω₂ = 96/κ₁`,
//! `γ₂ = 8ω₂/κ₁`, `c₁ = 24`, `λ = 1/2`). Those values make even toy
//! networks run for ~10⁵ rounds of warm-up, so — as is standard when
//! reproducing theory papers — we keep two presets:
//!
//! * [`Constants::theory`] — the paper's values (with the implicit
//!   `κ`, `κ₁`, `µ` instantiated conservatively), used to *document* and
//!   sanity-check the formulas;
//! * [`Constants::practical`] — scaled-down multipliers that preserve every
//!   structural property (validated by `validate` on every experiment) while
//!   letting `n ≤ 4000` simulations finish on a laptop. All experiments use
//!   this preset; `EXPERIMENTS.md` reports shapes, not absolute constants.

use mca_sinr::{NodeKnowledge, SinrParams};

/// The tunable constants of the construction (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constants {
    /// Density bound `µ` for dominator sets (max dominators per `r_c`-ball).
    pub mu: f64,
    /// Ruling-set round multiplier `γ`: the ruling set runs `γ·ln n` rounds.
    pub gamma_ruling: f64,
    /// CSA settle threshold multiplier `ω₁`: a dominator settles its estimate
    /// on receiving `ω₁·ln n` messages in a phase.
    pub omega1: f64,
    /// CSA phase-length multiplier `γ₁`: each CSA phase has `γ₁·ln n` rounds.
    pub gamma1: f64,
    /// Aggregation backoff threshold multiplier `ω₂` (`Ω = ω₂·ln n`).
    pub omega2: f64,
    /// Aggregation phase-length multiplier `γ₂` (`Γ = γ₂·ln n`).
    pub gamma2: f64,
    /// Channel-count divisor `c₁`: `f_v = min{⌈|C_v|/(c₁·ln n)⌉, F}`.
    pub c1: f64,
    /// Contention target `λ` (the paper's `λ = 1/2`).
    pub lambda: f64,
    /// Transmission probability for backbone flooding among dominators.
    pub flood_prob: f64,
    /// Flood window multiplier: the flood runs `c_flood·(D̂ + ln n)` rounds.
    pub c_flood: f64,
    /// Announce-phase round multiplier (dominator broadcasts of color,
    /// estimates, results).
    pub gamma_announce: f64,
    /// Per-node probability cap during adaptive ramp-up (`p` never exceeds
    /// this).
    pub p_cap: f64,
}

impl Constants {
    /// The paper's constants, with the analysis-implicit values
    /// (`κ = κ₁ = 0.1`, `µ = 12`) instantiated conservatively.
    ///
    /// Round counts under this preset are astronomically large; it exists
    /// for documentation and formula tests, not for running experiments.
    pub fn theory() -> Self {
        let kappa: f64 = 0.1;
        let kappa1: f64 = 0.1;
        let mu: f64 = 12.0;
        let lambda = 0.5;
        let omega1 = 36.0;
        let omega2 = 96.0 / kappa1;
        Constants {
            mu,
            gamma_ruling: 12.0 * mu * mu / (kappa * kappa),
            omega1,
            gamma1: 2.0 * omega1 * 2.0 / (kappa * lambda),
            omega2,
            gamma2: 8.0 * omega2 / kappa1,
            c1: 24.0,
            lambda,
            flood_prob: 1.0 / (2.0 * mu),
            c_flood: 8.0,
            gamma_announce: 12.0 * mu * mu / (kappa * kappa),
            p_cap: 1.0 / (2.0 * mu),
        }
    }

    /// Scaled-down constants for experiments (see module docs). Validated by
    /// the structure audit on every experiment run.
    pub fn practical() -> Self {
        Constants {
            mu: 6.0,
            gamma_ruling: 3.0,
            omega1: 3.0,
            gamma1: 6.0,
            // The backoff trigger must fire reliably while per-channel
            // contention is still at λ/2, i.e. ω₂ ≲ (λ/2)·e^{-λ/2}·γ₂/2;
            // with γ₂ = 8 that means ω₂ well below 1.
            omega2: 0.5,
            gamma2: 8.0,
            // f_v = min{⌈|C|/(c₁·ln n)⌉, F}: c₁ only needs every channel
            // populated w.h.p. (≥ ~ln n nodes per channel); the paper's 24
            // would push the multi-channel regime out of laptop-size
            // simulations.
            c1: 1.5,
            lambda: 0.5,
            flood_prob: 0.2,
            c_flood: 6.0,
            gamma_announce: 3.0,
            p_cap: 0.25,
        }
    }

    fn validate(&self) {
        assert!(self.mu >= 1.0, "mu must be at least 1");
        assert!(
            self.lambda > 0.0 && self.lambda <= 0.5,
            "lambda in (0, 1/2]"
        );
        assert!(self.p_cap > 0.0 && self.p_cap <= 0.5, "p_cap in (0, 1/2]");
        assert!(
            self.gamma_ruling > 0.0
                && self.gamma1 > 0.0
                && self.gamma2 > 0.0
                && self.gamma_announce > 0.0
                && self.c_flood > 0.0,
            "round multipliers must be positive"
        );
        assert!(self.omega1 >= 1.0 && self.omega2 > 0.0 && self.c1 >= 1.0);
        assert!(self.flood_prob > 0.0 && self.flood_prob <= 0.5);
    }
}

/// Full configuration shared by all protocol phases of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoConfig {
    /// Number of channels `F ≥ 1`.
    pub channels: u16,
    /// What nodes know about the physical layer and `n`.
    pub know: NodeKnowledge,
    /// Constant preset.
    pub consts: Constants,
}

impl AlgoConfig {
    /// Builds a configuration; validates invariants.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or the constants are inconsistent.
    pub fn new(channels: u16, know: NodeKnowledge, consts: Constants) -> Self {
        assert!(channels >= 1, "at least one channel required");
        consts.validate();
        AlgoConfig {
            channels,
            know,
            consts,
        }
    }

    /// Convenience: exact knowledge of `params`, `n̂ = n_bound`, practical
    /// constants.
    pub fn practical(channels: u16, params: &SinrParams, n_bound: usize) -> Self {
        AlgoConfig::new(
            channels,
            NodeKnowledge::exact(params, n_bound),
            Constants::practical(),
        )
    }

    /// The conservative SINR parameters nodes compute with.
    pub fn node_params(&self) -> SinrParams {
        self.know.conservative()
    }

    /// `ln n̂`.
    pub fn ln_n(&self) -> f64 {
        self.know.ln_n()
    }

    /// Ruling-set round count `⌈γ·ln n⌉` (floored at 12 so tiny test
    /// networks still get enough election rounds).
    pub fn ruling_rounds(&self) -> u64 {
        (self.consts.gamma_ruling * self.ln_n()).ceil().max(12.0) as u64
    }

    /// Announce-phase round count. Dominators broadcast with probability
    /// `1/(2µ)`, so covering every cluster w.h.p. needs `Θ(µ·ln n)` rounds —
    /// the `2µ` factor the paper folds into its `γ`.
    pub fn announce_rounds(&self) -> u64 {
        (self.consts.gamma_announce * self.ln_n() * 2.0 * self.consts.mu)
            .ceil()
            .max(24.0) as u64
    }

    /// CSA per-phase round count `⌈γ₁·ln n⌉`.
    pub fn csa_rounds_per_phase(&self) -> u64 {
        (self.consts.gamma1 * self.ln_n()).ceil().max(1.0) as u64
    }

    /// CSA settle threshold `⌈ω₁·ln n⌉` receptions.
    pub fn csa_settle_threshold(&self) -> u64 {
        (self.consts.omega1 * self.ln_n()).ceil().max(1.0) as u64
    }

    /// Aggregation phase length `Γ = ⌈γ₂·ln n⌉` rounds.
    pub fn agg_rounds_per_phase(&self) -> u64 {
        (self.consts.gamma2 * self.ln_n()).ceil().max(1.0) as u64
    }

    /// Aggregation backoff threshold `Ω = ⌈ω₂·ln n⌉` receptions (floored at
    /// 3 so the trigger is meaningful on tiny test networks).
    pub fn agg_backoff_threshold(&self) -> u64 {
        (self.consts.omega2 * self.ln_n()).ceil().max(3.0) as u64
    }

    /// The channel count `f_v` a cluster of (estimated) size `size` uses:
    /// `min{⌈size/(c₁·ln n)⌉, F}`, at least 1 (paper §5.2.2).
    pub fn cluster_channels(&self, size: u64) -> u16 {
        let denom = (self.consts.c1 * self.ln_n()).max(1.0);
        let f = (size as f64 / denom).ceil().max(1.0) as u64;
        f.min(self.channels as u64) as u16
    }

    /// Fixed ruling-set transmission probability for constant-density sets:
    /// `1/(2µ)`.
    pub fn density_tx_prob(&self) -> f64 {
        (1.0 / (2.0 * self.consts.mu)).min(self.consts.p_cap)
    }

    /// Whether the *small* CSA variant applies: `Δ̂ ≤ F·(ln n)^c` with
    /// `c = 2` (the paper's crossover, Lemma 13/14 with `ĉ = 0`).
    pub fn csa_small_applies(&self, delta_hat: u64) -> bool {
        (delta_hat as f64) <= self.channels as f64 * self.ln_n().powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(channels: u16, n: usize) -> AlgoConfig {
        AlgoConfig::practical(channels, &SinrParams::default(), n)
    }

    #[test]
    fn presets_validate() {
        Constants::theory().validate();
        Constants::practical().validate();
    }

    #[test]
    fn theory_matches_paper_formulas() {
        let t = Constants::theory();
        assert_eq!(t.omega1, 36.0);
        assert_eq!(t.c1, 24.0);
        assert_eq!(t.lambda, 0.5);
        // gamma1 = 2*omega1*2/(kappa*lambda) with kappa=0.1, lambda=0.5.
        assert!((t.gamma1 - 2.0 * 36.0 * 2.0 / (0.1 * 0.5)).abs() < 1e-9);
        // omega2 = 96/kappa1.
        assert!((t.omega2 - 960.0).abs() < 1e-9);
        // gamma2 = 8*omega2/kappa1.
        assert!((t.gamma2 - 8.0 * 960.0 / 0.1).abs() < 1e-9);
    }

    #[test]
    fn round_counts_scale_with_ln_n() {
        let small = cfg(4, 100);
        let big = cfg(4, 10_000);
        assert!(big.ruling_rounds() > small.ruling_rounds());
        assert!(big.csa_rounds_per_phase() > small.csa_rounds_per_phase());
        assert!(big.agg_rounds_per_phase() > small.agg_rounds_per_phase());
        assert!(small.ruling_rounds() >= 1);
    }

    #[test]
    fn cluster_channels_formula() {
        let c = cfg(16, 1000); // ln 1000 ≈ 6.9, c1 = 1.5 → denom ≈ 10.4
        assert_eq!(c.cluster_channels(1), 1);
        assert_eq!(c.cluster_channels(28), 3);
        // Cap at F.
        assert_eq!(c.cluster_channels(1_000_000), 16);
        // Single channel network: always 1.
        let c1 = cfg(1, 1000);
        assert_eq!(c1.cluster_channels(1_000_000), 1);
    }

    #[test]
    fn csa_small_crossover() {
        let c = cfg(16, 1000); // F (ln n)^2 ≈ 16 * 47.7 ≈ 763
        assert!(c.csa_small_applies(500));
        assert!(!c.csa_small_applies(5000));
    }

    #[test]
    fn density_prob_capped() {
        let c = cfg(4, 100);
        assert!(c.density_tx_prob() <= c.consts.p_cap);
        assert!(c.density_tx_prob() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let p = SinrParams::default();
        AlgoConfig::new(0, NodeKnowledge::exact(&p, 10), Constants::practical());
    }
}
