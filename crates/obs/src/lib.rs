//! Determinism-preserving observability for the multichannel workspace.
//!
//! The engine, the §5 structure pipeline, and the maintenance layer are
//! instrumented with *spans* (wall-clock timings of a phase), *typed
//! events* (protocol actions with slot/epoch attribution), *per-channel
//! outcome records* (a tx/rx/busy/env-drop stream, one record per active
//! channel per slot), and str-keyed *counters*. All of it funnels into a
//! [`Recorder`] that the caller attaches explicitly — nothing records by
//! default.
//!
//! Two properties define the layer:
//!
//! * **Compiled out by default.** Unless this crate's `enabled` cargo
//!   feature is on (consumer crates forward it as their own `obs`
//!   feature), [`Recorder`] is a zero-sized type whose methods are inlined
//!   empty bodies and [`Stopwatch`] never reads the clock. Instrumented
//!   code is written once, with no `#[cfg]` scattering, and costs nothing
//!   in ordinary builds.
//! * **Determinism-preserving.** Recording only ever *observes*: wall
//!   times never feed back into simulation state, and parallel resolve
//!   units report their timings through the engine's existing
//!   deterministic channel-major/shard-minor merge. Trial outcomes are
//!   bit-identical with observability on, off, and under `MCA_FORCE_PAR=1`
//!   (pinned by the workspace's golden-trial tests).
//!
//! Sinks: [`Recorder::report`] (in-memory aggregate with per-kind
//! wall/self time and percentiles), [`Recorder::to_jsonl`] (one record per
//! line, versioned `"v": 1` schema, see `docs/OBSERVABILITY.md`), and
//! [`Report::to_folded`] (folded-stack text for flamegraph tooling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod jsonl;
mod kind;
mod record;
mod report;

pub use jsonl::{trace_line, trial_line, validate_jsonl_line, SCHEMA_VERSION};
pub use kind::{EventKind, SpanKind, EVENT_KINDS, SPAN_KINDS};
pub use record::{ChannelSlotRecord, EventRecord, SpanRecord, TrialRecord};
pub use report::{KindStats, Report};

/// Whether the observability layer is compiled in (the `enabled` cargo
/// feature). When `false`, [`Recorder`] is a no-op and profiling
/// harnesses should refuse to run rather than report empty data.
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Default retention cap for spans (records beyond it are counted in
/// [`Recorder::dropped`] and discarded).
pub const DEFAULT_SPAN_CAP: usize = 1 << 21;
/// Default retention cap for typed events.
pub const DEFAULT_EVENT_CAP: usize = 1 << 16;
/// Default retention cap for per-channel outcome records.
pub const DEFAULT_CHAN_CAP: usize = 1 << 20;

#[cfg(feature = "enabled")]
mod real {
    use super::*;
    use std::collections::BTreeMap;
    use std::time::Instant;

    /// Collects spans, events, channel records, and counters.
    ///
    /// Bounded: each record class has a retention cap; overflow is
    /// discarded and counted in [`Recorder::dropped`] rather than growing
    /// without bound.
    #[derive(Debug, Clone)]
    pub struct Recorder {
        spans: Vec<SpanRecord>,
        events: Vec<EventRecord>,
        chans: Vec<ChannelSlotRecord>,
        counters: BTreeMap<&'static str, u64>,
        span_cap: usize,
        event_cap: usize,
        chan_cap: usize,
        dropped: u64,
        channel_stream: bool,
    }

    impl Default for Recorder {
        fn default() -> Self {
            Recorder::new()
        }
    }

    impl Recorder {
        /// A recorder with the default retention caps.
        pub fn new() -> Self {
            Recorder::with_caps(DEFAULT_SPAN_CAP, DEFAULT_EVENT_CAP, DEFAULT_CHAN_CAP)
        }

        /// A recorder with explicit retention caps (records past a cap are
        /// dropped and counted, oldest kept).
        pub fn with_caps(span_cap: usize, event_cap: usize, chan_cap: usize) -> Self {
            Recorder {
                spans: Vec::new(),
                events: Vec::new(),
                chans: Vec::new(),
                counters: BTreeMap::new(),
                span_cap,
                event_cap,
                chan_cap,
                dropped: 0,
                channel_stream: true,
            }
        }

        /// Enables or disables the per-channel outcome stream
        /// (builder-style). Spans, events, and counters still record.
        pub fn with_channel_stream(mut self, on: bool) -> Self {
            self.channel_stream = on;
            self
        }

        /// Whether the per-channel outcome stream is recorded.
        pub fn channel_stream(&self) -> bool {
            self.channel_stream
        }

        /// Records a completed span of `ns` wall nanoseconds.
        ///
        /// `a` and `b` are kind-specific attributes (e.g. channel and unit
        /// index for [`SpanKind::Unit`]); kinds that carry none pass 0.
        pub fn span(&mut self, kind: SpanKind, slot: u64, a: u32, b: u32, ns: u64) {
            if self.spans.len() >= self.span_cap {
                self.dropped += 1;
                return;
            }
            self.spans.push(SpanRecord {
                kind,
                slot,
                a,
                b,
                ns,
            });
        }

        /// Records a typed protocol event with slot/epoch attribution.
        pub fn event(&mut self, kind: EventKind, slot: u64, epoch: u64, slots: u64, count: u64) {
            if self.events.len() >= self.event_cap {
                self.dropped += 1;
                return;
            }
            self.events.push(EventRecord {
                kind,
                slot,
                epoch,
                slots,
                count,
            });
        }

        /// Records one channel's per-slot outcome tallies.
        pub fn chan(&mut self, rec: ChannelSlotRecord) {
            if !self.channel_stream {
                return;
            }
            if self.chans.len() >= self.chan_cap {
                self.dropped += 1;
                return;
            }
            self.chans.push(rec);
        }

        /// Adds `delta` to the named counter.
        pub fn add(&mut self, counter: &'static str, delta: u64) {
            *self.counters.entry(counter).or_insert(0) += delta;
        }

        /// Appends every record of `other`, in `other`'s order, and sums
        /// its counters. Merging recorders in a fixed order (shard-major /
        /// channel-major, like the engine's resolve merge) yields a
        /// deterministic combined stream.
        pub fn merge(&mut self, other: &Recorder) {
            for s in &other.spans {
                self.span(s.kind, s.slot, s.a, s.b, s.ns);
            }
            for e in &other.events {
                self.event(e.kind, e.slot, e.epoch, e.slots, e.count);
            }
            for c in &other.chans {
                self.chan(*c);
            }
            for (&k, &v) in &other.counters {
                self.add(k, v);
            }
            self.dropped += other.dropped;
        }

        /// Spans recorded so far, in recording order.
        pub fn spans(&self) -> &[SpanRecord] {
            &self.spans
        }

        /// Typed events recorded so far, in recording order.
        pub fn events(&self) -> &[EventRecord] {
            &self.events
        }

        /// Per-channel outcome records, in recording order (slot-major,
        /// ascending channel within a slot — the engine's delivery order).
        pub fn channel_records(&self) -> &[ChannelSlotRecord] {
            &self.chans
        }

        /// Counter values, sorted by name.
        pub fn counters(&self) -> Vec<(&'static str, u64)> {
            self.counters.iter().map(|(&k, &v)| (k, v)).collect()
        }

        /// Records discarded because a retention cap was hit.
        pub fn dropped(&self) -> u64 {
            self.dropped
        }

        /// Whether nothing has been recorded.
        pub fn is_empty(&self) -> bool {
            self.spans.is_empty()
                && self.events.is_empty()
                && self.chans.is_empty()
                && self.counters.is_empty()
        }

        /// Aggregates the recorded spans into a per-kind [`Report`].
        pub fn report(&self) -> Report {
            Report::from_recorder(self)
        }
    }

    /// Wall-clock stopwatch; reads the monotonic clock only when started
    /// with `active = true`, so detached recorders cost one branch.
    #[derive(Debug, Clone, Copy)]
    pub struct Stopwatch(Option<Instant>);

    impl Stopwatch {
        /// Starts a running stopwatch.
        #[inline]
        pub fn start() -> Self {
            Stopwatch(Some(Instant::now()))
        }

        /// Starts a stopwatch only if `active`; otherwise
        /// [`Stopwatch::elapsed_ns`] reports 0 without touching the clock.
        #[inline]
        pub fn start_if(active: bool) -> Self {
            if active {
                Stopwatch(Some(Instant::now()))
            } else {
                Stopwatch(None)
            }
        }

        /// Nanoseconds since start (0 for an inactive stopwatch).
        #[inline]
        pub fn elapsed_ns(&self) -> u64 {
            self.0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod noop {
    use super::*;

    /// The compiled-out recorder: a zero-sized type whose methods are
    /// inlined empty bodies. See the crate docs; the real implementation
    /// is behind the `enabled` feature.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Recorder;

    impl Recorder {
        /// A recorder with the default retention caps (no-op).
        #[inline(always)]
        pub fn new() -> Self {
            Recorder
        }

        /// A recorder with explicit retention caps (no-op).
        #[inline(always)]
        pub fn with_caps(_span_cap: usize, _event_cap: usize, _chan_cap: usize) -> Self {
            Recorder
        }

        /// Enables or disables the per-channel outcome stream (no-op).
        #[inline(always)]
        pub fn with_channel_stream(self, _on: bool) -> Self {
            self
        }

        /// Whether the per-channel outcome stream is recorded (always
        /// `false` when compiled out).
        #[inline(always)]
        pub fn channel_stream(&self) -> bool {
            false
        }

        /// Records a completed span (no-op).
        #[inline(always)]
        pub fn span(&mut self, _kind: SpanKind, _slot: u64, _a: u32, _b: u32, _ns: u64) {}

        /// Records a typed protocol event (no-op).
        #[inline(always)]
        pub fn event(
            &mut self,
            _kind: EventKind,
            _slot: u64,
            _epoch: u64,
            _slots: u64,
            _count: u64,
        ) {
        }

        /// Records one channel's per-slot outcome tallies (no-op).
        #[inline(always)]
        pub fn chan(&mut self, _rec: ChannelSlotRecord) {}

        /// Adds to the named counter (no-op).
        #[inline(always)]
        pub fn add(&mut self, _counter: &'static str, _delta: u64) {}

        /// Merges another recorder (no-op).
        #[inline(always)]
        pub fn merge(&mut self, _other: &Recorder) {}

        /// Spans recorded so far (always empty when compiled out).
        #[inline(always)]
        pub fn spans(&self) -> &[SpanRecord] {
            &[]
        }

        /// Typed events recorded so far (always empty when compiled out).
        #[inline(always)]
        pub fn events(&self) -> &[EventRecord] {
            &[]
        }

        /// Per-channel outcome records (always empty when compiled out).
        #[inline(always)]
        pub fn channel_records(&self) -> &[ChannelSlotRecord] {
            &[]
        }

        /// Counter values (always empty when compiled out).
        #[inline(always)]
        pub fn counters(&self) -> Vec<(&'static str, u64)> {
            Vec::new()
        }

        /// Records discarded (always 0 when compiled out).
        #[inline(always)]
        pub fn dropped(&self) -> u64 {
            0
        }

        /// Whether nothing has been recorded (always `true` when compiled
        /// out).
        #[inline(always)]
        pub fn is_empty(&self) -> bool {
            true
        }

        /// Aggregates into a [`Report`] (always empty when compiled out).
        #[inline(always)]
        pub fn report(&self) -> Report {
            Report::default()
        }
    }

    /// The compiled-out stopwatch: never reads the clock, always reports
    /// 0 ns.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Stopwatch;

    impl Stopwatch {
        /// Starts a stopwatch (no-op).
        #[inline(always)]
        pub fn start() -> Self {
            Stopwatch
        }

        /// Starts a stopwatch only if active (no-op).
        #[inline(always)]
        pub fn start_if(_active: bool) -> Self {
            Stopwatch
        }

        /// Nanoseconds since start (always 0 when compiled out).
        #[inline(always)]
        pub fn elapsed_ns(&self) -> u64 {
            0
        }
    }
}

#[cfg(feature = "enabled")]
pub use real::{Recorder, Stopwatch};

#[cfg(not(feature = "enabled"))]
pub use noop::{Recorder, Stopwatch};

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::super::*;

        #[test]
        fn records_and_reports() {
            let mut r = Recorder::new();
            r.span(SpanKind::Slot, 0, 0, 0, 100);
            r.span(SpanKind::Gather, 0, 0, 0, 30);
            r.span(SpanKind::Resolve, 0, 1, 0, 60);
            r.event(EventKind::RepairRehome, 5, 1, 4, 2);
            r.add("cache_builds", 3);
            r.add("cache_builds", 2);
            assert_eq!(r.spans().len(), 3);
            assert_eq!(r.counters(), vec![("cache_builds", 5)]);
            let rep = r.report();
            let slot = rep.kind(SpanKind::Slot).unwrap();
            assert_eq!(slot.count, 1);
            assert_eq!(slot.total_ns, 100);
            // Self time: 100 − (30 + 60) children.
            assert_eq!(slot.self_ns, 10);
            assert!((rep.slot_coverage().unwrap() - 0.9).abs() < 1e-12);
        }

        #[test]
        fn caps_drop_and_count() {
            let mut r = Recorder::with_caps(2, 1, 1);
            for i in 0..4 {
                r.span(SpanKind::Unit, i, 0, 0, 1);
            }
            r.event(EventKind::RepairClean, 0, 0, 0, 1);
            r.event(EventKind::RepairClean, 1, 1, 0, 1);
            assert_eq!(r.spans().len(), 2);
            assert_eq!(r.events().len(), 1);
            assert_eq!(r.dropped(), 3);
        }

        #[test]
        fn merge_appends_in_order_and_sums_counters() {
            let mut a = Recorder::new();
            a.span(SpanKind::Unit, 0, 0, 0, 1);
            a.add("x", 1);
            let mut b = Recorder::new();
            b.span(SpanKind::Unit, 0, 1, 0, 2);
            b.add("x", 2);
            b.chan(ChannelSlotRecord {
                slot: 0,
                channel: 1,
                tx: 2,
                listens: 3,
                rx: 1,
                busy: 2,
                env: 0,
            });
            a.merge(&b);
            assert_eq!(a.spans().len(), 2);
            assert_eq!(a.spans()[1].a, 1);
            assert_eq!(a.channel_records().len(), 1);
            assert_eq!(a.counters(), vec![("x", 3)]);
        }

        #[test]
        fn channel_stream_toggle() {
            let mut r = Recorder::new().with_channel_stream(false);
            r.chan(ChannelSlotRecord {
                slot: 0,
                channel: 0,
                tx: 0,
                listens: 0,
                rx: 0,
                busy: 0,
                env: 0,
            });
            assert!(r.channel_records().is_empty());
            assert_eq!(r.dropped(), 0);
        }

        #[test]
        fn stopwatch_inactive_reads_zero() {
            let sw = Stopwatch::start_if(false);
            assert_eq!(sw.elapsed_ns(), 0);
        }
    }

    #[cfg(not(feature = "enabled"))]
    mod disabled {
        use super::super::*;

        #[test]
        fn everything_is_a_noop() {
            let mut r = Recorder::new();
            r.span(SpanKind::Slot, 0, 0, 0, 100);
            r.event(EventKind::RepairClean, 0, 0, 0, 1);
            r.add("x", 1);
            assert!(r.is_empty());
            assert!(r.spans().is_empty());
            assert_eq!(r.dropped(), 0);
            assert_eq!(Stopwatch::start().elapsed_ns(), 0);
            assert!(r.report().kinds.is_empty());
            assert!(!enabled());
        }

        #[test]
        fn recorder_is_zero_sized() {
            assert_eq!(std::mem::size_of::<Recorder>(), 0);
            assert_eq!(std::mem::size_of::<Stopwatch>(), 0);
        }
    }

    #[test]
    fn enabled_matches_feature() {
        assert_eq!(enabled(), cfg!(feature = "enabled"));
    }
}
