//! Span and event taxonomies: a closed set of kinds with a static parent
//! tree, so self time and coverage can be computed without runtime stack
//! tracking.

/// What a span measures. The taxonomy is closed and carries a static
/// parent tree ([`SpanKind::parent`]): engine phases nest under
/// [`SpanKind::Slot`], resolve units under [`SpanKind::Resolve`], build
/// stages under [`SpanKind::Build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One whole engine slot ([`crate::Recorder::span`] attrs: none).
    Slot,
    /// Lifecycle watch, shard maintenance, and scratch clearing at the
    /// top of a slot.
    EventDrain,
    /// Phase 1: protocol `act` gather plus the active-channel sort.
    Gather,
    /// Phase 2a: staging transmitter/listener positions per channel.
    Stage,
    /// Phase 2b: resolving all (channel × shard) units (attrs: `a` =
    /// active channel count).
    Resolve,
    /// One (channel × shard) resolve unit (attrs: `a` = channel, `b` =
    /// unit index within the channel).
    Unit,
    /// Halo construction for one resolve unit (attrs as [`SpanKind::Unit`]).
    Halo,
    /// The deterministic shard-major scatter merge of unit outputs
    /// (attrs: `a` = unit count; recorded on the unit-parallel path).
    Merge,
    /// Time the slot thread spent helping/waiting on the work-stealing
    /// pool while resolve units were in flight (attrs: `a` = unit count;
    /// recorded on the pooled pipeline path).
    Pool,
    /// Phase 2c: observation delivery, idle/tx feedback.
    Deliver,
    /// One whole `build_structure` run.
    Build,
    /// Build phase 1: dominating set (attrs: none; `slot` = slot offset
    /// within the build).
    BuildDominate,
    /// Build phases 2–3: dominator coloring + announce/attach.
    BuildCluster,
    /// Build phase 4: cluster-size approximation.
    BuildCsa,
    /// Build phase 5: reporter election.
    BuildElection,
    /// One `StructureMaintainer::repair` epoch (attrs: none; `slot` =
    /// cumulative repair slots before the epoch).
    Repair,
}

/// Every span kind, in a fixed report order.
pub const SPAN_KINDS: [SpanKind; 16] = [
    SpanKind::Slot,
    SpanKind::EventDrain,
    SpanKind::Gather,
    SpanKind::Stage,
    SpanKind::Resolve,
    SpanKind::Unit,
    SpanKind::Halo,
    SpanKind::Merge,
    SpanKind::Pool,
    SpanKind::Deliver,
    SpanKind::Build,
    SpanKind::BuildDominate,
    SpanKind::BuildCluster,
    SpanKind::BuildCsa,
    SpanKind::BuildElection,
    SpanKind::Repair,
];

impl SpanKind {
    /// Stable snake_case name (the JSONL `"k"` field).
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::Slot => "slot",
            SpanKind::EventDrain => "event_drain",
            SpanKind::Gather => "gather",
            SpanKind::Stage => "stage",
            SpanKind::Resolve => "resolve",
            SpanKind::Unit => "unit",
            SpanKind::Halo => "halo",
            SpanKind::Merge => "merge",
            SpanKind::Pool => "pool",
            SpanKind::Deliver => "deliver",
            SpanKind::Build => "build",
            SpanKind::BuildDominate => "build_dominate",
            SpanKind::BuildCluster => "build_cluster",
            SpanKind::BuildCsa => "build_csa",
            SpanKind::BuildElection => "build_election",
            SpanKind::Repair => "repair",
        }
    }

    /// Parses a JSONL `"k"` value back into a kind.
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SPAN_KINDS.into_iter().find(|k| k.name() == name)
    }

    /// The kind this kind nests under in the static span tree (`None`
    /// for roots). A kind's *self* time is its total minus its children's
    /// totals.
    pub const fn parent(self) -> Option<SpanKind> {
        match self {
            SpanKind::Slot | SpanKind::Build | SpanKind::Repair => None,
            SpanKind::EventDrain
            | SpanKind::Gather
            | SpanKind::Stage
            | SpanKind::Resolve
            | SpanKind::Deliver => Some(SpanKind::Slot),
            SpanKind::Unit | SpanKind::Merge | SpanKind::Pool => Some(SpanKind::Resolve),
            SpanKind::Halo => Some(SpanKind::Unit),
            SpanKind::BuildDominate
            | SpanKind::BuildCluster
            | SpanKind::BuildCsa
            | SpanKind::BuildElection => Some(SpanKind::Build),
        }
    }

    /// The root-to-kind path, `;`-joined — one folded-stack frame line.
    pub fn folded_path(self) -> String {
        match self.parent() {
            None => self.name().to_string(),
            Some(p) => format!("{};{}", p.folded_path(), self.name()),
        }
    }
}

/// What a typed event reports: a `build_structure` stage completing, or
/// one class of `StructureMaintainer` repair action within an epoch.
/// Each event carries slot attribution, the protocol slots the action
/// cost, and an action-specific count (see each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Dominating-set stage done (`count` = timeout joins).
    StageDominate,
    /// Dominator coloring done (`count` = palette size Φ).
    StageColor,
    /// Announce/attach done (`count` = uncovered live nodes).
    StageAnnounce,
    /// Cluster-size approximation done (`count` = estimate fills).
    StageCsa,
    /// Reporter election done (`count` = channels filled).
    StageElection,
    /// A repair epoch found nothing to do (`count` = 1).
    RepairClean,
    /// Seekers re-homed onto surviving dominators (`count` = attached).
    RepairRehome,
    /// MIS patch promoted new dominators (`count` = new dominators).
    RepairMisPatch,
    /// Conflicting dominators recolored (`count` = recolored).
    RepairRecolor,
    /// Clusters merged after dominator convergence (`count` = merges).
    RepairMerge,
    /// Scoped reporter re-election ran (`count` = appointments).
    RepairElection,
    /// Churn exceeded the threshold; full rebuild (`count` = 1).
    RepairRebuild,
    /// Degradation detections consumed by a repair epoch (`count` =
    /// flagged nodes acted on).
    DetectDegraded,
    /// Recovery notices consumed by a repair epoch (`count` = nodes whose
    /// link health recovered).
    DetectRecovered,
    /// Proactive repair acted before any audit failure: flagged members
    /// pre-emptively re-homed and flagged dominators demoted into scoped
    /// re-election (`count` = nodes acted on).
    RepairProactive,
}

/// Every event kind, in a fixed report order.
pub const EVENT_KINDS: [EventKind; 15] = [
    EventKind::StageDominate,
    EventKind::StageColor,
    EventKind::StageAnnounce,
    EventKind::StageCsa,
    EventKind::StageElection,
    EventKind::RepairClean,
    EventKind::RepairRehome,
    EventKind::RepairMisPatch,
    EventKind::RepairRecolor,
    EventKind::RepairMerge,
    EventKind::RepairElection,
    EventKind::RepairRebuild,
    EventKind::DetectDegraded,
    EventKind::DetectRecovered,
    EventKind::RepairProactive,
];

impl EventKind {
    /// Stable snake_case name (the JSONL `"k"` field).
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::StageDominate => "stage_dominate",
            EventKind::StageColor => "stage_color",
            EventKind::StageAnnounce => "stage_announce",
            EventKind::StageCsa => "stage_csa",
            EventKind::StageElection => "stage_election",
            EventKind::RepairClean => "repair_clean",
            EventKind::RepairRehome => "repair_rehome",
            EventKind::RepairMisPatch => "repair_mis_patch",
            EventKind::RepairRecolor => "repair_recolor",
            EventKind::RepairMerge => "repair_merge",
            EventKind::RepairElection => "repair_election",
            EventKind::RepairRebuild => "repair_rebuild",
            EventKind::DetectDegraded => "detect_degraded",
            EventKind::DetectRecovered => "detect_recovered",
            EventKind::RepairProactive => "repair_proactive",
        }
    }

    /// Parses a JSONL `"k"` value back into a kind.
    pub fn from_name(name: &str) -> Option<EventKind> {
        EVENT_KINDS.into_iter().find(|k| k.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_are_unique() {
        for k in SPAN_KINDS {
            assert_eq!(SpanKind::from_name(k.name()), Some(k));
        }
        for k in EVENT_KINDS {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        let mut names: Vec<&str> = SPAN_KINDS.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SPAN_KINDS.len());
    }

    #[test]
    fn parent_tree_is_acyclic_and_rooted() {
        for k in SPAN_KINDS {
            let mut cur = k;
            let mut depth = 0;
            while let Some(p) = cur.parent() {
                cur = p;
                depth += 1;
                assert!(depth <= 4, "span tree too deep at {:?}", k);
            }
            assert!(matches!(
                cur,
                SpanKind::Slot | SpanKind::Build | SpanKind::Repair
            ));
        }
    }

    #[test]
    fn folded_paths() {
        assert_eq!(SpanKind::Slot.folded_path(), "slot");
        assert_eq!(SpanKind::Halo.folded_path(), "slot;resolve;unit;halo");
        assert_eq!(SpanKind::BuildCsa.folded_path(), "build;build_csa");
    }
}
