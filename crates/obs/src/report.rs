//! In-memory aggregation of recorded spans into per-kind statistics.

use crate::kind::{EventKind, SpanKind, EVENT_KINDS, SPAN_KINDS};
use crate::Recorder;

/// Aggregate statistics for one span kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindStats {
    /// The span kind.
    pub kind: SpanKind,
    /// Spans recorded.
    pub count: u64,
    /// Total wall nanoseconds across all spans of the kind.
    pub total_ns: u64,
    /// Total minus the totals of the kind's children in the static span
    /// tree (saturating — timing jitter can make children sum past the
    /// parent).
    pub self_ns: u64,
    /// Median span duration (nearest-rank).
    pub p50_ns: u64,
    /// 95th-percentile span duration (nearest-rank).
    pub p95_ns: u64,
    /// Longest span.
    pub max_ns: u64,
}

/// Aggregate statistics for one event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventStats {
    /// The event kind.
    pub kind: EventKind,
    /// Events recorded.
    pub events: u64,
    /// Sum of the events' protocol-slot costs.
    pub slots: u64,
    /// Sum of the events' action counts.
    pub count: u64,
}

/// The in-memory aggregate sink: per-kind span statistics, per-kind
/// event totals, counters, and the drop tally. Build one with
/// [`Recorder::report`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Statistics per span kind, in [`SPAN_KINDS`] order; kinds never
    /// recorded are omitted.
    pub kinds: Vec<KindStats>,
    /// Event totals per event kind, in [`EVENT_KINDS`] order; kinds never
    /// recorded are omitted.
    pub events: Vec<EventStats>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Records the recorder discarded at a retention cap.
    pub dropped: u64,
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

impl Report {
    /// Aggregates a recorder's spans, events, and counters.
    pub fn from_recorder(rec: &Recorder) -> Report {
        let mut durations: Vec<Vec<u64>> = vec![Vec::new(); SPAN_KINDS.len()];
        let idx = |k: SpanKind| SPAN_KINDS.iter().position(|&x| x == k).expect("closed set");
        for s in rec.spans() {
            durations[idx(s.kind)].push(s.ns);
        }
        let totals: Vec<u64> = durations.iter().map(|d| d.iter().sum()).collect();
        let mut kinds = Vec::new();
        for (i, k) in SPAN_KINDS.into_iter().enumerate() {
            if durations[i].is_empty() {
                continue;
            }
            let child_total: u64 = SPAN_KINDS
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c.parent() == Some(k))
                .map(|(j, _)| totals[j])
                .sum();
            let d = &mut durations[i];
            d.sort_unstable();
            kinds.push(KindStats {
                kind: k,
                count: d.len() as u64,
                total_ns: totals[i],
                self_ns: totals[i].saturating_sub(child_total),
                p50_ns: percentile(d, 50),
                p95_ns: percentile(d, 95),
                max_ns: *d.last().expect("non-empty"),
            });
        }
        let mut events = Vec::new();
        for k in EVENT_KINDS {
            let mut st = EventStats {
                kind: k,
                events: 0,
                slots: 0,
                count: 0,
            };
            for e in rec.events().iter().filter(|e| e.kind == k) {
                st.events += 1;
                st.slots += e.slots;
                st.count += e.count;
            }
            if st.events > 0 {
                events.push(st);
            }
        }
        Report {
            kinds,
            events,
            counters: rec
                .counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            dropped: rec.dropped(),
        }
    }

    /// The statistics for one span kind, if it was recorded.
    pub fn kind(&self, kind: SpanKind) -> Option<&KindStats> {
        self.kinds.iter().find(|k| k.kind == kind)
    }

    /// How much of the recorded slot wall time the per-phase spans
    /// account for: Σ total of [`SpanKind::Slot`]'s direct children over
    /// the Slot total. `None` if no slot spans were recorded. The profile
    /// harness gates on this staying ≥ 0.95.
    pub fn slot_coverage(&self) -> Option<f64> {
        let slot = self.kind(SpanKind::Slot)?;
        if slot.total_ns == 0 {
            return None;
        }
        let children: u64 = self
            .kinds
            .iter()
            .filter(|k| k.kind.parent() == Some(SpanKind::Slot))
            .map(|k| k.total_ns)
            .sum();
        Some(children as f64 / slot.total_ns as f64)
    }

    /// Folded-stack text (`path;to;kind self_ns`, one line per recorded
    /// kind) for flamegraph tooling.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for k in &self.kinds {
            out.push_str(&k.kind.folded_path());
            out.push(' ');
            out.push_str(&k.self_ns.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut r = Recorder::new();
        for ns in 1..=100u64 {
            r.span(SpanKind::Unit, 0, 0, 0, ns);
        }
        let rep = r.report();
        let u = rep.kind(SpanKind::Unit).unwrap();
        assert_eq!(u.count, 100);
        assert_eq!(u.p50_ns, 50);
        assert_eq!(u.p95_ns, 95);
        assert_eq!(u.max_ns, 100);
        assert_eq!(u.total_ns, 5050);
    }

    #[test]
    fn self_time_subtracts_children_only() {
        let mut r = Recorder::new();
        r.span(SpanKind::Resolve, 0, 0, 0, 100);
        r.span(SpanKind::Unit, 0, 0, 0, 40);
        r.span(SpanKind::Unit, 0, 0, 1, 40);
        r.span(SpanKind::Halo, 0, 0, 0, 10);
        let rep = r.report();
        assert_eq!(rep.kind(SpanKind::Resolve).unwrap().self_ns, 20);
        // Halo subtracts from Unit, not from Resolve.
        assert_eq!(rep.kind(SpanKind::Unit).unwrap().self_ns, 70);
        assert_eq!(rep.kind(SpanKind::Halo).unwrap().self_ns, 10);
    }

    #[test]
    fn self_time_saturates() {
        let mut r = Recorder::new();
        r.span(SpanKind::Slot, 0, 0, 0, 10);
        r.span(SpanKind::Gather, 0, 0, 0, 15);
        assert_eq!(r.report().kind(SpanKind::Slot).unwrap().self_ns, 0);
    }

    #[test]
    fn coverage_none_without_slots() {
        let mut r = Recorder::new();
        r.span(SpanKind::Build, 0, 0, 0, 10);
        assert_eq!(r.report().slot_coverage(), None);
    }

    #[test]
    fn folded_output() {
        let mut r = Recorder::new();
        r.span(SpanKind::Slot, 0, 0, 0, 100);
        r.span(SpanKind::Resolve, 0, 0, 0, 60);
        let folded = r.report().to_folded();
        assert_eq!(folded, "slot 40\nslot;resolve 60\n");
    }

    #[test]
    fn event_totals() {
        let mut r = Recorder::new();
        r.event(EventKind::RepairRehome, 0, 1, 4, 2);
        r.event(EventKind::RepairRehome, 0, 2, 6, 3);
        let rep = r.report();
        assert_eq!(rep.events.len(), 1);
        let e = &rep.events[0];
        assert_eq!((e.events, e.slots, e.count), (2, 10, 5));
    }
}
