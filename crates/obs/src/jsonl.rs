//! The JSONL sink: one flat record per line, versioned schema (`"v": 1`),
//! and a validator CI uses to pin the schema.
//!
//! Record shapes (all values are unsigned integers except `"t"` and
//! `"k"`, which are strings):
//!
//! ```text
//! {"v":1,"t":"span","k":"gather","slot":3,"a":0,"b":0,"ns":18250}
//! {"v":1,"t":"event","k":"repair_rehome","slot":120,"epoch":2,"slots":14,"count":3}
//! {"v":1,"t":"chan","slot":3,"ch":1,"tx":5,"listens":9,"rx":2,"busy":1,"env":0}
//! {"v":1,"t":"counter","k":"resolver_cache_builds","n":7}
//! {"v":1,"t":"trace","slot":3,"ch":0,"from":17,"to":4}
//! {"v":1,"t":"trial","scenario":"dense-16ch","seed":2,"coverage":0.98,"full":false,"rx":812,"busy":31,"env":0,"slots":400}
//! ```
//!
//! `"trace"` lines are emitted by `mca-radio`'s `TraceRecorder` export,
//! `"trial"` lines by the `experiments sweep`/`serve` trial service
//! ([`trial_line`]); the other four by [`Recorder`]. `"trial"` is the one
//! record type carrying float (`coverage`, shortest-round-trip formatted,
//! so byte equality is bit equality) and boolean (`full`) values. The
//! schema is append-only: a future `"v": 2` may add record types or
//! fields, but v1 lines stay valid.

use crate::kind::{EventKind, SpanKind};
use crate::record::TrialRecord;
use crate::Recorder;
use std::fmt::Write as _;

/// The JSONL schema version this crate writes.
pub const SCHEMA_VERSION: u64 = 1;

impl Recorder {
    /// Serializes every retained record as JSONL, in a deterministic
    /// order: spans, events, channel records (each in recording order),
    /// then counters by name. Empty when the recorder is (or the feature
    /// is compiled out).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.spans() {
            let _ = writeln!(
                out,
                "{{\"v\":{SCHEMA_VERSION},\"t\":\"span\",\"k\":\"{}\",\"slot\":{},\"a\":{},\"b\":{},\"ns\":{}}}",
                s.kind.name(),
                s.slot,
                s.a,
                s.b,
                s.ns
            );
        }
        for e in self.events() {
            let _ = writeln!(
                out,
                "{{\"v\":{SCHEMA_VERSION},\"t\":\"event\",\"k\":\"{}\",\"slot\":{},\"epoch\":{},\"slots\":{},\"count\":{}}}",
                e.kind.name(),
                e.slot,
                e.epoch,
                e.slots,
                e.count
            );
        }
        for c in self.channel_records() {
            let _ = writeln!(
                out,
                "{{\"v\":{SCHEMA_VERSION},\"t\":\"chan\",\"slot\":{},\"ch\":{},\"tx\":{},\"listens\":{},\"rx\":{},\"busy\":{},\"env\":{}}}",
                c.slot, c.channel, c.tx, c.listens, c.rx, c.busy, c.env
            );
        }
        for (k, v) in self.counters() {
            let _ = writeln!(
                out,
                "{{\"v\":{SCHEMA_VERSION},\"t\":\"counter\",\"k\":\"{k}\",\"n\":{v}}}"
            );
        }
        out
    }
}

/// Formats one `"trace"` line (a decode event) in the v1 schema —
/// `mca-radio`'s trace export goes through here so the schema lives in
/// one place.
pub fn trace_line(slot: u64, channel: u16, from: u32, to: u32) -> String {
    format!(
        "{{\"v\":{SCHEMA_VERSION},\"t\":\"trace\",\"slot\":{slot},\"ch\":{channel},\"from\":{from},\"to\":{to}}}"
    )
}

/// Formats one `"trial"` line in the v1 schema — the sweep/serve trial
/// service goes through here so the schema lives in one place. The
/// `coverage` float uses shortest-round-trip formatting; everything else
/// is integers, booleans, and the scenario id.
pub fn trial_line(t: &TrialRecord) -> String {
    format!(
        concat!(
            "{{\"v\":{v},\"t\":\"trial\",\"scenario\":\"{scenario}\",\"seed\":{seed},",
            "\"coverage\":{coverage:?},\"full\":{full},\"rx\":{rx},\"busy\":{busy},",
            "\"env\":{env},\"slots\":{slots}}}"
        ),
        v = SCHEMA_VERSION,
        scenario = t.scenario,
        seed = t.seed,
        coverage = t.coverage,
        full = t.full_coverage,
        rx = t.receptions,
        busy = t.busy_failures,
        env = t.env_drops,
        slots = t.slots,
    )
}

#[derive(Debug, PartialEq)]
enum Val {
    U(u64),
    F(f64),
    B(bool),
    S(String),
}

/// Parses one flat JSON object: string keys, unsigned-number / boolean /
/// plain-string values, no nesting, no duplicate keys.
fn parse_flat(line: &str) -> Result<Vec<(String, Val)>, String> {
    let s = line.trim().as_bytes();
    let mut i = 0;
    let mut fields: Vec<(String, Val)> = Vec::new();
    let err = |msg: &str, at: usize| format!("{msg} at byte {at}");
    if s.first() != Some(&b'{') {
        return Err(err("expected '{'", 0));
    }
    i += 1;
    if s.get(i) == Some(&b'}') {
        return if i + 1 == s.len() {
            Ok(fields)
        } else {
            Err(err("trailing garbage", i + 1))
        };
    }
    loop {
        // Key.
        if s.get(i) != Some(&b'"') {
            return Err(err("expected '\"' starting a key", i));
        }
        i += 1;
        let k0 = i;
        while i < s.len() && s[i] != b'"' {
            if s[i] == b'\\' {
                return Err(err("escapes are not part of the schema", i));
            }
            i += 1;
        }
        if i >= s.len() {
            return Err(err("unterminated key", k0));
        }
        let key = std::str::from_utf8(&s[k0..i]).map_err(|_| err("non-utf8 key", k0))?;
        if key.is_empty() {
            return Err(err("empty key", k0));
        }
        if fields.iter().any(|(k, _)| k == key) {
            return Err(format!("duplicate key {key:?}"));
        }
        i += 1;
        if s.get(i) != Some(&b':') {
            return Err(err("expected ':'", i));
        }
        i += 1;
        // Value: unsigned integer or plain string.
        let val = match s.get(i) {
            Some(&b'"') => {
                i += 1;
                let v0 = i;
                while i < s.len() && s[i] != b'"' {
                    if s[i] == b'\\' {
                        return Err(err("escapes are not part of the schema", i));
                    }
                    i += 1;
                }
                if i >= s.len() {
                    return Err(err("unterminated string value", v0));
                }
                let v = std::str::from_utf8(&s[v0..i]).map_err(|_| err("non-utf8 value", v0))?;
                i += 1;
                Val::S(v.to_string())
            }
            Some(c) if c.is_ascii_digit() => {
                let v0 = i;
                while i < s.len()
                    && (s[i].is_ascii_digit() || matches!(s[i], b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    i += 1;
                }
                let txt = std::str::from_utf8(&s[v0..i]).expect("ascii number bytes");
                if txt.bytes().all(|b| b.is_ascii_digit()) {
                    Val::U(txt.parse().map_err(|_| err("integer out of range", v0))?)
                } else {
                    let f: f64 = txt.parse().map_err(|_| err("malformed number", v0))?;
                    if !f.is_finite() {
                        return Err(err("non-finite number", v0));
                    }
                    Val::F(f)
                }
            }
            Some(&b't') if s[i..].starts_with(b"true") => {
                i += 4;
                Val::B(true)
            }
            Some(&b'f') if s[i..].starts_with(b"false") => {
                i += 5;
                Val::B(false)
            }
            _ => {
                return Err(err(
                    "expected an unsigned number, boolean, or string value",
                    i,
                ))
            }
        };
        fields.push((key.to_string(), val));
        match s.get(i) {
            Some(&b',') => i += 1,
            Some(&b'}') => {
                return if i + 1 == s.len() {
                    Ok(fields)
                } else {
                    Err(err("trailing garbage", i + 1))
                };
            }
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
}

fn require_exact(fields: &[(String, Val)], keys: &[&str]) -> Result<(), String> {
    for k in keys {
        if !fields.iter().any(|(fk, _)| fk == k) {
            return Err(format!("missing key {k:?}"));
        }
    }
    for (fk, _) in fields {
        if !keys.contains(&fk.as_str()) {
            return Err(format!("unknown key {fk:?}"));
        }
    }
    Ok(())
}

fn get_u(fields: &[(String, Val)], key: &str) -> Result<u64, String> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Val::U(v))) => Ok(*v),
        Some(_) => Err(format!("key {key:?} must be an unsigned integer")),
        None => Err(format!("missing key {key:?}")),
    }
}

/// Numeric accessor: floats, with unsigned integers widening.
fn get_f(fields: &[(String, Val)], key: &str) -> Result<f64, String> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Val::F(v))) => Ok(*v),
        Some((_, Val::U(v))) => Ok(*v as f64),
        Some(_) => Err(format!("key {key:?} must be a number")),
        None => Err(format!("missing key {key:?}")),
    }
}

fn get_b(fields: &[(String, Val)], key: &str) -> Result<bool, String> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Val::B(v))) => Ok(*v),
        Some(_) => Err(format!("key {key:?} must be a boolean")),
        None => Err(format!("missing key {key:?}")),
    }
}

fn get_s<'a>(fields: &'a [(String, Val)], key: &str) -> Result<&'a str, String> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Val::S(v))) => Ok(v),
        Some(_) => Err(format!("key {key:?} must be a string")),
        None => Err(format!("missing key {key:?}")),
    }
}

/// Validates one line against the v1 JSONL schema: a flat object with
/// the exact key set for its `"t"`, `"v": 1`, and known `"k"` names for
/// span and event records. Returns a description of the first problem.
pub fn validate_jsonl_line(line: &str) -> Result<(), String> {
    let fields = parse_flat(line)?;
    let v = get_u(&fields, "v")?;
    if v != SCHEMA_VERSION {
        return Err(format!("unsupported schema version {v}"));
    }
    let t = get_s(&fields, "t")?;
    match t {
        "span" => {
            require_exact(&fields, &["v", "t", "k", "slot", "a", "b", "ns"])?;
            let k = get_s(&fields, "k")?;
            if SpanKind::from_name(k).is_none() {
                return Err(format!("unknown span kind {k:?}"));
            }
        }
        "event" => {
            require_exact(&fields, &["v", "t", "k", "slot", "epoch", "slots", "count"])?;
            let k = get_s(&fields, "k")?;
            if EventKind::from_name(k).is_none() {
                return Err(format!("unknown event kind {k:?}"));
            }
        }
        "chan" => {
            require_exact(
                &fields,
                &["v", "t", "slot", "ch", "tx", "listens", "rx", "busy", "env"],
            )?;
            for key in ["slot", "ch", "tx", "listens", "rx", "busy", "env"] {
                get_u(&fields, key)?;
            }
        }
        "counter" => {
            require_exact(&fields, &["v", "t", "k", "n"])?;
            if get_s(&fields, "k")?.is_empty() {
                return Err("empty counter name".to_string());
            }
            get_u(&fields, "n")?;
        }
        "trace" => {
            require_exact(&fields, &["v", "t", "slot", "ch", "from", "to"])?;
            for key in ["slot", "ch", "from", "to"] {
                get_u(&fields, key)?;
            }
        }
        "trial" => {
            require_exact(
                &fields,
                &[
                    "v", "t", "scenario", "seed", "coverage", "full", "rx", "busy", "env", "slots",
                ],
            )?;
            if get_s(&fields, "scenario")?.is_empty() {
                return Err("empty scenario id".to_string());
            }
            for key in ["seed", "rx", "busy", "env", "slots"] {
                get_u(&fields, key)?;
            }
            let coverage = get_f(&fields, "coverage")?;
            if !(0.0..=1.0).contains(&coverage) {
                return Err(format!("coverage {coverage} outside [0, 1]"));
            }
            get_b(&fields, "full")?;
        }
        other => return Err(format!("unknown record type {other:?}")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_line_validates() {
        validate_jsonl_line(&trace_line(3, 1, 17, 4)).unwrap();
    }

    #[test]
    fn trial_line_validates_and_is_byte_stable() {
        let t = TrialRecord {
            scenario: "dense-16ch".into(),
            seed: 2,
            coverage: 0.9821428571428571,
            full_coverage: false,
            receptions: 812,
            busy_failures: 31,
            env_drops: 0,
            slots: 400,
        };
        let line = trial_line(&t);
        validate_jsonl_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(line, trial_line(&t), "formatting must be reproducible");
        assert!(line.contains("\"coverage\":0.9821428571428571"), "{line}");
        assert!(line.contains("\"full\":false"), "{line}");
        // Whole coverage still renders (and validates) as a float.
        let full = TrialRecord {
            coverage: 1.0,
            full_coverage: true,
            ..t
        };
        let line = trial_line(&full);
        assert!(line.contains("\"coverage\":1.0"), "{line}");
        validate_jsonl_line(&line).unwrap();
    }

    #[test]
    fn trial_validator_rejects_bad_records() {
        for bad in [
            // coverage outside [0, 1], non-finite, or non-numeric.
            r#"{"v":1,"t":"trial","scenario":"s","seed":1,"coverage":1.5,"full":true,"rx":0,"busy":0,"env":0,"slots":1}"#,
            r#"{"v":1,"t":"trial","scenario":"s","seed":1,"coverage":"hi","full":true,"rx":0,"busy":0,"env":0,"slots":1}"#,
            // full must be a boolean.
            r#"{"v":1,"t":"trial","scenario":"s","seed":1,"coverage":0.5,"full":1,"rx":0,"busy":0,"env":0,"slots":1}"#,
            // empty scenario id.
            r#"{"v":1,"t":"trial","scenario":"","seed":1,"coverage":0.5,"full":true,"rx":0,"busy":0,"env":0,"slots":1}"#,
            // seed must stay integral.
            r#"{"v":1,"t":"trial","scenario":"s","seed":1.5,"coverage":0.5,"full":true,"rx":0,"busy":0,"env":0,"slots":1}"#,
            // missing / extra keys.
            r#"{"v":1,"t":"trial","scenario":"s","seed":1,"coverage":0.5,"full":true,"rx":0,"busy":0,"env":0}"#,
            r#"{"v":1,"t":"trial","scenario":"s","seed":1,"coverage":0.5,"full":true,"rx":0,"busy":0,"env":0,"slots":1,"x":1}"#,
        ] {
            assert!(validate_jsonl_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}garbage",
            "not json",
            r#"{"v":2,"t":"trace","slot":0,"ch":0,"from":0,"to":0}"#,
            r#"{"v":1,"t":"mystery","slot":0}"#,
            r#"{"v":1,"t":"span","k":"nope","slot":0,"a":0,"b":0,"ns":1}"#,
            r#"{"v":1,"t":"span","k":"slot","slot":0,"a":0,"b":0}"#,
            r#"{"v":1,"t":"span","k":"slot","slot":0,"a":0,"b":0,"ns":1,"extra":2}"#,
            r#"{"v":1,"t":"trace","slot":-1,"ch":0,"from":0,"to":0}"#,
            r#"{"v":1,"t":"trace","slot":1.5,"ch":0,"from":0,"to":0}"#,
            r#"{"v":1,"v":1,"t":"trace","slot":0,"ch":0,"from":0,"to":0}"#,
            r#"{"v":1,"t":"counter","k":"x","n":{"nested":1}}"#,
            r#"{"v":1,"t":"counter","k":"","n":1}"#,
        ] {
            assert!(validate_jsonl_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn empty_object_rejected_for_missing_keys() {
        assert!(validate_jsonl_line("{}").is_err());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn recorder_round_trips_through_validator() {
        use crate::{ChannelSlotRecord, EventKind, Recorder, SpanKind};
        let mut r = Recorder::new();
        r.span(SpanKind::Slot, 0, 0, 0, 1234);
        r.span(SpanKind::Unit, 0, 3, 1, 99);
        r.event(EventKind::StageDominate, 0, 0, 40, 2);
        r.chan(ChannelSlotRecord {
            slot: 0,
            channel: 2,
            tx: 1,
            listens: 4,
            rx: 3,
            busy: 1,
            env: 0,
        });
        r.add("resolver_cache_builds", 7);
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in lines {
            validate_jsonl_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn noop_recorder_writes_nothing() {
        let mut r = crate::Recorder::new();
        r.span(SpanKind::Slot, 0, 0, 0, 1234);
        assert!(r.to_jsonl().is_empty());
    }
}
