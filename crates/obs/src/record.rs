//! The plain-data record types a [`crate::Recorder`] retains.

use crate::kind::{EventKind, SpanKind};

/// One completed span: a phase of work that took `ns` wall nanoseconds.
///
/// Wall times are measurement, not simulation state — two runs of the
/// same trial produce identical record *sequences* with differing `ns`
/// values only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// What was measured.
    pub kind: SpanKind,
    /// Engine slot (or, for build/repair kinds, the protocol-slot offset
    /// documented on the kind).
    pub slot: u64,
    /// First kind-specific attribute (see [`SpanKind`]; 0 if unused).
    pub a: u32,
    /// Second kind-specific attribute (0 if unused).
    pub b: u32,
    /// Wall-clock duration in nanoseconds.
    pub ns: u64,
}

/// One typed protocol event: a build stage or repair action, attributed
/// to a slot and a repair epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// What happened.
    pub kind: EventKind,
    /// Slot attribution: for build stages, the slot offset within the
    /// build at which the stage started; for repair actions, cumulative
    /// repair slots before the epoch.
    pub slot: u64,
    /// Repair epoch (0 for build stages).
    pub epoch: u64,
    /// Protocol slots the action cost.
    pub slots: u64,
    /// Action-specific count (see the [`EventKind`] variant docs).
    pub count: u64,
}

/// One completed trial's metrics, keyed by `(scenario, seed)`.
///
/// This is the per-trial record `experiments sweep`/`serve` stream — one
/// JSONL line per trial, in trial-set enumeration order. Unlike spans it
/// carries no wall-clock data: every field is a pure function of the key,
/// so the emitted line is bit-reproducible and journals/resume can rely
/// on byte identity.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Scenario id (the expanded scenario's unique name).
    pub scenario: String,
    /// The seed the trial ran under.
    pub seed: u64,
    /// Fraction of nodes that learned the flood value.
    pub coverage: f64,
    /// Whether every live node learned it.
    pub full_coverage: bool,
    /// Successful decodes delivered over the trial.
    pub receptions: u64,
    /// Listen slots that sensed power but decoded nothing.
    pub busy_failures: u64,
    /// Decodes suppressed by dynamic channel conditions.
    pub env_drops: u64,
    /// Protocol slots the trial ran.
    pub slots: u64,
}

/// One channel's outcome tallies for one slot — the per-channel stream a
/// congestion sensor consumes. Emitted for every channel touched in the
/// slot (transmit-only channels have `listens = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelSlotRecord {
    /// Engine slot.
    pub slot: u64,
    /// Channel index.
    pub channel: u16,
    /// Transmitters on the channel this slot.
    pub tx: u32,
    /// Listeners on the channel this slot.
    pub listens: u32,
    /// Successful decodes delivered.
    pub rx: u32,
    /// Listen slots that sensed power but decoded nothing.
    pub busy: u32,
    /// Decodes suppressed by a dynamic channel condition (deep fade).
    pub env: u32,
}
