//! Naive deterministic TDMA baseline: `Θ(n·D)` flood-combine.
//!
//! The simplest correct scheme: a frame of `n` slots gives every node one
//! exclusive slot (by id); a lone transmitter always decodes within `R_T`,
//! so each frame advances every value by at least one hop. After `D + 1`
//! frames every node holds the global (idempotent) aggregate. No
//! randomness, no knowledge beyond `n` — and a round count that dwarfs both
//! the paper's algorithm and the randomized single-channel baseline, which
//! is the point of including it in table T1.

use mca_geom::Point;
use mca_radio::{Action, Channel, Engine, NodeId, Observation, Protocol};
use mca_sinr::SinrParams;
use rand::rngs::SmallRng;

/// Per-node state of the round-robin flood.
#[derive(Debug, Clone)]
pub struct NaiveTdma {
    me: NodeId,
    n: u32,
    frames: u32,
    value: i64,
    finished: bool,
}

impl NaiveTdma {
    /// A node holding input `value`, in a network of `n` nodes, running
    /// `frames` frames.
    pub fn new(me: NodeId, n: u32, frames: u32, value: i64) -> Self {
        assert!(n > 0 && frames > 0);
        NaiveTdma {
            me,
            n,
            frames,
            value,
            finished: false,
        }
    }

    /// The node's current combined value.
    pub fn value(&self) -> i64 {
        self.value
    }
}

impl Protocol for NaiveTdma {
    type Msg = i64;

    fn act(&mut self, slot: u64, _rng: &mut SmallRng) -> Action<i64> {
        if slot >= self.n as u64 * self.frames as u64 {
            return Action::Idle;
        }
        if slot % self.n as u64 == self.me.0 as u64 {
            Action::Transmit {
                channel: Channel::FIRST,
                msg: self.value,
            }
        } else {
            Action::Listen {
                channel: Channel::FIRST,
            }
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<i64>, _rng: &mut SmallRng) {
        if let Observation::Received(r) = &obs {
            self.value = self.value.max(r.msg);
        }
        if slot + 1 >= self.n as u64 * self.frames as u64 {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

/// Runs the naive TDMA max-flood; returns per-node values and slots used.
pub fn run_naive_tdma(
    params: &SinrParams,
    positions: &[Point],
    inputs: &[i64],
    d_hat: u32,
    seed: u64,
) -> (Vec<i64>, u64) {
    let n = positions.len() as u32;
    let frames = d_hat + 2;
    let protocols: Vec<NaiveTdma> = (0..n)
        .map(|i| NaiveTdma::new(NodeId(i), n, frames, inputs[i as usize]))
        .collect();
    let mut engine = Engine::new(*params, positions.to_vec(), protocols, seed);
    let expect = *inputs.iter().max().unwrap_or(&0);
    engine.run_until(n as u64 * frames as u64, |ps: &[NaiveTdma]| {
        ps.iter().all(|p| p.value() == expect)
    });
    let slots = engine.slot();
    (
        engine.into_protocols().iter().map(|p| p.value()).collect(),
        slots,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_geom::Deployment;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn everyone_learns_the_max() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = Deployment::uniform(50, 12.0, &mut rng);
        let inputs: Vec<i64> = (0..50).map(|i| i as i64 * 3).collect();
        let (values, slots) = run_naive_tdma(&SinrParams::default(), d.points(), &inputs, 8, 1);
        assert!(values.iter().all(|&v| v == 147));
        assert!(slots >= 50, "at least one frame must pass");
    }

    #[test]
    fn slots_scale_with_n() {
        let params = SinrParams::default();
        let run = |n: usize| {
            let d = Deployment::line(n, 3.0);
            let inputs: Vec<i64> = (0..n).map(|i| i as i64).collect();
            run_naive_tdma(&params, d.points(), &inputs, n as u32, 1).1
        };
        let small = run(10);
        let big = run(40);
        assert!(big > 4 * small, "big {big} vs small {small}");
    }

    #[test]
    fn deterministic() {
        let d = Deployment::line(8, 3.0);
        let inputs: Vec<i64> = (0..8).map(|i| i as i64).collect();
        let a = run_naive_tdma(&SinrParams::default(), d.points(), &inputs, 8, 1);
        let b = run_naive_tdma(&SinrParams::default(), d.points(), &inputs, 8, 2);
        assert_eq!(a.0, b.0, "seed must not matter for a deterministic scheme");
        assert_eq!(a.1, b.1);
    }
}
