//! Single-channel node coloring baseline (`O(Δ·log n)`-flavored).
//!
//! The comparison point for Theorem 24: repeatedly extract an
//! `R_ε`-independent set with the §4 ruling set on one channel and give
//! phase `i`'s set the color `i` (Derbel–Talbi / Moscibroda–Wattenhofer
//! style). Same-color nodes are non-adjacent by construction, so the
//! coloring is proper on the communication graph; the number of phases —
//! and hence the round count — grows linearly with `Δ`.

use mca_core::ruling::{self, ProbPolicy, RulingConfig, RulingSet};
use mca_core::{AlgoConfig, Tdma};
use mca_geom::Point;
use mca_radio::{Channel, Engine, NodeId};
use mca_sinr::SinrParams;

/// Outcome of the baseline coloring.
#[derive(Debug, Clone)]
pub struct ColoringBaselineOutcome {
    /// Color per node.
    pub colors: Vec<Option<u32>>,
    /// Total slots.
    pub slots: u64,
    /// Phases (≈ colors) used.
    pub phases: u32,
}

impl ColoringBaselineOutcome {
    /// Number of distinct colors.
    pub fn palette_size(&self) -> usize {
        let mut v: Vec<u32> = self.colors.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    }
}

/// Runs the single-channel baseline coloring.
///
/// `max_phases` caps the phase loop (set it to a small multiple of `Δ̂`);
/// leftover nodes get fresh unique colors.
pub fn run_single_coloring(
    params: &SinrParams,
    positions: &[Point],
    algo: &AlgoConfig,
    max_phases: u32,
    seed: u64,
) -> ColoringBaselineOutcome {
    let n = positions.len();
    let node_params = algo.node_params();
    // r must satisfy the ruling set's r <= R_T/2; R_eps does at eps = 1/2.
    let r = node_params
        .r_eps()
        .min(node_params.transmission_range() / 2.0);
    let mut colors: Vec<Option<u32>> = vec![None; n];
    let mut uncolored: Vec<usize> = (0..n).collect();
    let mut slots = 0u64;
    let mut phase = 0u32;
    while !uncolored.is_empty() && phase < max_phases {
        let rcfg = RulingConfig {
            radius: r,
            prob: ProbPolicy::Adaptive {
                start: (algo.consts.lambda / algo.know.n_bound.max(2) as f64).min(0.25),
                busy_threshold: node_params.clear_threshold_for(r),
            },
            p_cap: algo.consts.p_cap,
            rounds: algo.ruling_rounds(),
            channel: Channel::FIRST,
            group: None,
            tdma: Tdma::trivial(ruling::SLOTS_PER_ROUND),
            color: 0,
            params: node_params,
            timeout_join: ruling::TimeoutRule::JoinIfQuiet,
        };
        let protocols: Vec<RulingSet> = (0..n)
            .map(|i| {
                if colors[i].is_none() {
                    RulingSet::new(NodeId(i as u32), rcfg)
                } else {
                    RulingSet::passive(NodeId(i as u32), rcfg)
                }
            })
            .collect();
        let mut engine = Engine::new(
            *params,
            positions.to_vec(),
            protocols,
            mca_radio::rng::derive_seed(seed, 0xB_C010 + phase as u64),
        );
        engine.run_until_done(rcfg.tdma.slots_for_rounds(rcfg.rounds) + 3);
        slots += engine.slot();
        let out = engine.into_protocols();
        uncolored.retain(|&i| {
            if out[i].in_set() {
                colors[i] = Some(phase);
                false
            } else {
                true
            }
        });
        phase += 1;
    }
    // Fresh unique colors for leftovers (correctness preserved).
    let next = colors.iter().flatten().copied().max().map_or(0, |c| c + 1);
    let mut fresh = next..;
    for slot in colors.iter_mut().filter(|c| c.is_none()) {
        *slot = fresh.next();
    }
    ColoringBaselineOutcome {
        colors,
        slots,
        phases: phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_geom::{CommGraph, Deployment};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn baseline_coloring_is_proper() {
        let params = SinrParams::default();
        let mut rng = SmallRng::seed_from_u64(11);
        let d = Deployment::uniform(120, 12.0, &mut rng);
        let algo = AlgoConfig::practical(1, &params, 120);
        let out = run_single_coloring(&params, d.points(), &algo, 256, 5);
        let colors: Vec<u32> = out.colors.iter().map(|c| c.unwrap()).collect();
        // Proper at the ruling-set radius (min(R_eps, R_T/2) = 4 here).
        let g = CommGraph::build(d.points(), 4.0);
        assert_eq!(g.coloring_violation(&colors), None);
    }

    #[test]
    fn denser_needs_more_phases() {
        let params = SinrParams::default();
        let run = |n: usize, side: f64| {
            let mut rng = SmallRng::seed_from_u64(13);
            let d = Deployment::uniform(n, side, &mut rng);
            let algo = AlgoConfig::practical(1, &params, n);
            run_single_coloring(&params, d.points(), &algo, 512, 9).phases
        };
        let sparse = run(60, 30.0);
        let dense = run(120, 6.0);
        assert!(
            dense > sparse,
            "dense ({dense} phases) should exceed sparse ({sparse})"
        );
    }
}
