//! Local information exchange — the incompressible contrast case
//! (paper reference \[37\], Yu et al., INFOCOM 2015).
//!
//! The paper positions itself against the only prior multichannel SINR
//! work: \[37\] solves *local information exchange* (every node must learn
//! the distinct message of every neighbor) and achieves only **sub-linear**
//! speedup, using at most `O(√(Δ/log n))` channels effectively. The
//! deeper reason exchange cannot parallelize linearly is a *receive
//! bottleneck*: a node decodes at most one packet per slot no matter how
//! many channels exist, and it must receive `Δ` distinct packets — so
//! `Δ` slots are a per-node lower bound, independent of `F`. Aggregation
//! escapes the bottleneck because its function is *compressible* (packets
//! merge); exchange is not.
//!
//! This module implements a multichannel random-access (channel-hopping
//! ALOHA) exchange protocol on the full SINR simulator so the limit can
//! be *measured*, and the measurement is stark: completion time is **flat
//! in `F`**. Adding channels multiplies the network's aggregate decode
//! throughput, but each listener taps one channel per slot, so its
//! per-slot collection rate is the single-channel ALOHA rate (`≈ 1/e`
//! tokens per slot at the optimal load) no matter how many channels
//! exist. Beating that requires the *coordination* machinery of \[37\]
//! (and even that saturates at `O(√(Δ/log n))` effective channels);
//! beating the `Θ(Δ)` floor requires the task to be compressible, which
//! exchange is not. [`ExchangeConfig::cap_channels_like_37`] exposes the
//! \[37\] channel cap for side-by-side tables.
//!
//! The experiment `E14` in `EXPERIMENTS.md` contrasts the measured
//! exchange curve with the aggregation curve of `E1`: same deployment,
//! same simulator — compressibility is exactly what the linear channel
//! speedup of the paper buys.

use mca_radio::{Action, Channel, Engine, NodeId, Observation, Protocol};
use mca_sinr::SinrParams;
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration of the exchange protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeConfig {
    /// Channels available to the protocol.
    pub channels: u16,
    /// Per-slot transmission probability (classic ALOHA sweet spot is
    /// `Θ(F/Δ)`; the harness sets `c·F/n̂` capped at 1/2).
    pub tx_prob: f64,
    /// Slot cap.
    pub max_slots: u64,
}

impl ExchangeConfig {
    /// A reasonable default: `F` channels, `min(1/2, 1.5·F/n̂)`
    /// transmission probability, and a `12·n̂·ln n̂` slot cap.
    pub fn new(channels: u16, n_bound: usize) -> Self {
        let n = n_bound.max(2) as f64;
        ExchangeConfig {
            channels: channels.max(1),
            tx_prob: (1.5 * channels as f64 / n).min(0.5),
            max_slots: (12.0 * n * n.ln()).ceil() as u64,
        }
    }

    /// Restricts the channel budget to `⌊√(Δ̂/ln n̂)⌋` — the effective
    /// channel count of the paper's reference \[37\] — keeping everything
    /// else equal. Returns the capped configuration and the cap itself.
    pub fn cap_channels_like_37(mut self, delta_hat: usize, n_bound: usize) -> (Self, u16) {
        let ln_n = (n_bound.max(2) as f64).ln();
        let cap = ((delta_hat.max(1) as f64 / ln_n).sqrt().floor() as u16).max(1);
        let n = n_bound.max(2) as f64;
        self.channels = self.channels.min(cap);
        self.tx_prob = (1.5 * self.channels as f64 / n).min(0.5);
        (self, cap)
    }
}

/// One node of the exchange: transmit own token / collect others'.
#[derive(Debug, Clone)]
pub struct ExchangeNode {
    me: NodeId,
    cfg: ExchangeConfig,
    /// Tokens heard, indexed by node id (dense: the task is single-hop).
    heard: Vec<bool>,
    heard_count: usize,
    /// Slot at which the node had heard all `n−1` tokens (harness-side
    /// ground truth; the protocol itself cannot detect completion).
    complete_at: Option<u64>,
    needed: usize,
}

impl ExchangeNode {
    /// A participant among `n` nodes.
    pub fn new(me: NodeId, n: usize, cfg: ExchangeConfig) -> Self {
        let needed = n.saturating_sub(1);
        ExchangeNode {
            me,
            cfg,
            heard: vec![false; n],
            heard_count: 0,
            // A singleton has nothing to collect.
            complete_at: (needed == 0).then_some(0),
            needed,
        }
    }

    /// Tokens collected so far (excluding the node's own).
    pub fn heard_count(&self) -> usize {
        self.heard_count
    }

    /// Slot at which the node completed, if it did.
    pub fn complete_at(&self) -> Option<u64> {
        self.complete_at
    }

    /// Fraction of the required tokens collected.
    pub fn coverage(&self) -> f64 {
        if self.needed == 0 {
            1.0
        } else {
            self.heard_count as f64 / self.needed as f64
        }
    }
}

impl Protocol for ExchangeNode {
    type Msg = NodeId;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<NodeId> {
        if slot >= self.cfg.max_slots {
            return Action::Idle;
        }
        let channel = Channel(rng.gen_range(0..self.cfg.channels));
        if rng.gen_bool(self.cfg.tx_prob) {
            Action::Transmit {
                channel,
                msg: self.me,
            }
        } else {
            Action::Listen { channel }
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<NodeId>, _rng: &mut SmallRng) {
        if let Some(rec) = obs.reception() {
            let idx = rec.msg.index();
            if idx < self.heard.len() && idx != self.me.index() && !self.heard[idx] {
                self.heard[idx] = true;
                self.heard_count += 1;
                if self.heard_count >= self.needed && self.complete_at.is_none() {
                    self.complete_at = Some(slot);
                }
            }
        }
    }

    // No `is_done` override: a node cannot detect that *others* still need
    // its token, so it keeps transmitting until the slot cap. The harness
    // stops the run once every node has completed (ground-truth predicate).
}

/// Result of an exchange run.
#[derive(Debug, Clone)]
pub struct ExchangeOutcome {
    /// Per-node completion slot (`None` = hit the cap incomplete).
    pub complete_at: Vec<Option<u64>>,
    /// Per-node fraction of required tokens collected.
    pub coverage: Vec<f64>,
    /// Slots consumed (last completion, or the cap).
    pub slots: u64,
}

impl ExchangeOutcome {
    /// Nodes that collected every token.
    pub fn completed(&self) -> usize {
        self.complete_at.iter().filter(|c| c.is_some()).count()
    }

    /// Median completion slot over completed nodes (`None` if nobody
    /// finished).
    pub fn median_completion(&self) -> Option<u64> {
        let mut done: Vec<u64> = self.complete_at.iter().filter_map(|c| *c).collect();
        if done.is_empty() {
            return None;
        }
        done.sort_unstable();
        Some(done[done.len() / 2])
    }

    /// Mean coverage over all nodes.
    pub fn mean_coverage(&self) -> f64 {
        if self.coverage.is_empty() {
            return 1.0;
        }
        self.coverage.iter().sum::<f64>() / self.coverage.len() as f64
    }
}

/// Runs local information exchange over `positions` (a single-hop
/// instance: the harness deploys all nodes within mutual range).
///
/// # Panics
///
/// Panics if `positions` is empty.
pub fn run_info_exchange(
    params: &SinrParams,
    positions: &[mca_geom::Point],
    cfg: ExchangeConfig,
    seed: u64,
) -> ExchangeOutcome {
    let n = positions.len();
    assert!(n > 0, "exchange needs at least one node");
    let protocols: Vec<ExchangeNode> = (0..n)
        .map(|i| ExchangeNode::new(NodeId(i as u32), n, cfg))
        .collect();
    let mut engine = Engine::new(*params, positions.to_vec(), protocols, seed);
    engine.run_until(cfg.max_slots, |ps: &[ExchangeNode]| {
        ps.iter().all(|p| p.complete_at().is_some())
    });
    let slots = engine.slot();
    let out = engine.into_protocols();
    ExchangeOutcome {
        complete_at: out.iter().map(|p| p.complete_at()).collect(),
        coverage: out.iter().map(|p| p.coverage()).collect(),
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_geom::{Deployment, Point};
    use rand::SeedableRng;

    fn clique(n: usize, seed: u64) -> (SinrParams, Vec<Point>) {
        let params = SinrParams::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        // All nodes within a disk of radius r_eps/4: mutual range.
        let d = Deployment::disk(n, params.r_eps() / 4.0, &mut rng);
        (params, d.points().to_vec())
    }

    #[test]
    fn exchange_completes_on_small_clique() {
        let (params, pos) = clique(30, 1);
        let cfg = ExchangeConfig::new(1, 30);
        let out = run_info_exchange(&params, &pos, cfg, 7);
        assert_eq!(out.completed(), 30, "coverage {:.2}", out.mean_coverage());
    }

    #[test]
    fn completion_respects_receive_floor() {
        // A node must decode n−1 distinct packets, one per slot at best.
        let (params, pos) = clique(40, 2);
        let cfg = ExchangeConfig::new(8, 40);
        let out = run_info_exchange(&params, &pos, cfg, 9);
        for c in out.complete_at.iter().flatten() {
            assert!(
                *c >= 39,
                "completion at slot {c} beats the Δ = 39 receive floor"
            );
        }
    }

    #[test]
    fn channels_do_not_speed_up_incompressible_exchange() {
        // The receive bottleneck in action: a listener taps one channel per
        // slot, so its per-slot collection rate is the single-channel ALOHA
        // rate no matter how many channels exist — completion time is flat
        // in F (contrast with the linear aggregation speedup of E1).
        let (params, pos) = clique(60, 3);
        let t1 = run_info_exchange(&params, &pos, ExchangeConfig::new(1, 60), 11)
            .median_completion()
            .expect("F=1 run should complete");
        let t8 = run_info_exchange(&params, &pos, ExchangeConfig::new(8, 60), 11)
            .median_completion()
            .expect("F=8 run should complete");
        assert!(t1 >= 59 && t8 >= 59, "the Δ receive floor binds both");
        let ratio = t1 as f64 / t8 as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "exchange should be flat in F, got t1={t1}, t8={t8}"
        );
    }

    #[test]
    fn channel_cap_of_37_applies() {
        let (cfg, cap) = ExchangeConfig::new(32, 100).cap_channels_like_37(99, 100);
        // √(99/ln 100) ≈ √21.5 ≈ 4.
        assert_eq!(cap, 4);
        assert_eq!(cfg.channels, 4);
        let (cfg2, _) = ExchangeConfig::new(2, 100).cap_channels_like_37(99, 100);
        assert_eq!(cfg2.channels, 2, "cap only ever lowers the budget");
    }

    #[test]
    fn singleton_is_trivially_complete() {
        let (params, pos) = clique(1, 4);
        let out = run_info_exchange(&params, &pos, ExchangeConfig::new(4, 1), 1);
        assert_eq!(out.completed(), 1);
        assert!((out.mean_coverage() - 1.0).abs() < 1e-12);
    }
}
