//! # `mca-baselines` — comparison algorithms and lower-bound instances
//!
//! The comparators the paper's reproduction measures against:
//!
//! * [`single_channel`] — classical single-channel aggregation
//!   (Li et al. \[24\]-flavored, `O(D + Δ)` up to logs);
//! * [`single_coloring`] — single-channel `O(Δ·log n)` coloring
//!   (Derbel–Talbi / Moscibroda–Wattenhofer style);
//! * [`naive_tdma`] — deterministic `Θ(n·D)` round-robin flood;
//! * [`multichannel_graph`] — multichannel flood in the *graph* interference
//!   model (Daum et al. \[4\]-flavored);
//! * [`chain`] — the exponential-chain instance behind the single-channel
//!   `Δ` lower bound;
//! * [`info_exchange`] — multichannel local information exchange
//!   (Yu et al. \[37\]-flavored), the incompressible task whose channel
//!   speedup saturates at the `Θ(Δ)` receive floor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod info_exchange;
pub mod multichannel_graph;
pub mod naive_tdma;
pub mod single_channel;
pub mod single_coloring;

pub use chain::{
    descending_successes_for_subset, greedy_relay_slots, max_concurrent_successes_exhaustive,
};
pub use info_exchange::{run_info_exchange, ExchangeConfig, ExchangeNode, ExchangeOutcome};
pub use multichannel_graph::{run_graph_flood, GraphModelOutcome};
pub use naive_tdma::run_naive_tdma;
pub use single_channel::{run_single_channel, BaselineOutcome};
pub use single_coloring::{run_single_coloring, ColoringBaselineOutcome};
