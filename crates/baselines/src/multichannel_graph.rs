//! Graph-model multichannel baseline (Daum et al. \[4\]-flavored).
//!
//! The paper's related work compares against multichannel algorithms in
//! *graph-based* interference models, where a listener receives iff
//! **exactly one** neighbor (within `R_ε`) transmits on its channel —
//! no SINR, no far-field interference, no capture. This module provides a
//! miniature graph-model simulator plus a channel-hashed flood-combine
//! aggregation on it, so experiment T1 can report how the model choice
//! changes the picture.

use mca_geom::{CommGraph, Point};
use mca_radio::rng::derive_rng;
use rand::Rng;

/// Outcome of a graph-model run.
#[derive(Debug, Clone)]
pub struct GraphModelOutcome {
    /// Per-node final value.
    pub values: Vec<i64>,
    /// Slots until every node held the global max (or the cap).
    pub slots: u64,
}

/// Flood-combine max-aggregation in the graph model with `channels`
/// channels: each slot, every node hops to a random channel and transmits
/// its current value with probability `q`; listeners receive iff exactly
/// one transmitting neighbor chose their channel.
pub fn run_graph_flood(
    positions: &[Point],
    radius: f64,
    inputs: &[i64],
    channels: u16,
    q: f64,
    max_slots: u64,
    seed: u64,
) -> GraphModelOutcome {
    assert_eq!(positions.len(), inputs.len());
    assert!(channels >= 1 && q > 0.0 && q <= 1.0);
    let n = positions.len();
    let graph = CommGraph::build(positions, radius);
    let mut values = inputs.to_vec();
    let expect = *inputs.iter().max().unwrap_or(&0);
    let mut rng = derive_rng(seed, 0x6AF);

    let mut tx_channel: Vec<Option<u16>> = vec![None; n];
    let mut listen_channel: Vec<u16> = vec![0; n];
    for slot in 0..max_slots {
        if values.iter().all(|&v| v == expect) {
            return GraphModelOutcome {
                values,
                slots: slot,
            };
        }
        for i in 0..n {
            let ch = rng.gen_range(0..channels);
            if rng.gen_bool(q) {
                tx_channel[i] = Some(ch);
            } else {
                tx_channel[i] = None;
                listen_channel[i] = ch;
            }
        }
        // Graph-model resolution: exactly one transmitting neighbor on the
        // listened channel delivers.
        let snapshot = values.clone();
        for i in 0..n {
            if tx_channel[i].is_some() {
                continue;
            }
            let ch = listen_channel[i];
            let mut heard: Option<usize> = None;
            let mut collision = false;
            for &j in graph.neighbors(i) {
                if tx_channel[j as usize] == Some(ch) {
                    if heard.is_some() {
                        collision = true;
                        break;
                    }
                    heard = Some(j as usize);
                }
            }
            if let (Some(j), false) = (heard, collision) {
                values[i] = values[i].max(snapshot[j]);
            }
        }
    }
    GraphModelOutcome {
        values,
        slots: max_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_geom::Deployment;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn graph_flood_converges() {
        let mut rng = SmallRng::seed_from_u64(5);
        let d = Deployment::uniform(100, 12.0, &mut rng);
        let inputs: Vec<i64> = (0..100).map(|i| i as i64).collect();
        let out = run_graph_flood(d.points(), 4.0, &inputs, 4, 0.2, 20_000, 3);
        assert!(out.values.iter().all(|&v| v == 99), "flood must converge");
        assert!(out.slots < 20_000);
    }

    #[test]
    fn more_channels_reduce_collisions_in_dense_graphs() {
        let mut rng = SmallRng::seed_from_u64(7);
        let d = Deployment::uniform(200, 5.0, &mut rng); // dense: big cliques
        let inputs: Vec<i64> = (0..200).map(|i| i as i64).collect();
        let one = run_graph_flood(d.points(), 4.0, &inputs, 1, 0.2, 200_000, 3).slots;
        let eight = run_graph_flood(d.points(), 4.0, &inputs, 8, 0.2, 200_000, 3).slots;
        assert!(
            eight < one,
            "8 channels ({eight}) should beat 1 channel ({one}) in dense graphs"
        );
    }

    #[test]
    fn already_converged_costs_zero() {
        let d = Deployment::line(5, 3.0);
        let inputs = vec![7i64; 5];
        let out = run_graph_flood(d.points(), 3.5, &inputs, 2, 0.3, 100, 1);
        assert_eq!(out.slots, 0);
    }
}
