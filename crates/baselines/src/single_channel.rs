//! Single-channel aggregation baseline (Li et al. \[24\]-flavored,
//! `O(D + Δ)` up to log factors).
//!
//! The classical single-channel approach the paper compares against:
//! a BFS-level flood from the sink builds the aggregation tree, then level
//! windows upcast values with decay-style random access and per-child
//! acknowledgements — all on **one** channel. Its round count grows
//! linearly in `Δ` (every neighbor of a bottleneck parent must be serviced
//! serially), which is exactly the term the multichannel structure divides
//! by `F`.

use mca_core::Tdma;
use mca_geom::Point;
use mca_radio::{Action, Channel, Engine, NodeId, Observation, Protocol};
use mca_sinr::SinrParams;
use rand::rngs::SmallRng;
use rand::Rng;

/// Messages of the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineMsg {
    /// BFS beacon with the sender's level.
    Level(u32),
    /// Value upcast to a parent.
    Up {
        /// Addressed parent.
        to: NodeId,
        /// Subtree aggregate (max-combine for this baseline).
        value: i64,
    },
    /// Final result flood.
    Result(i64),
}

/// Configuration of the single-channel baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineCfg {
    /// Flood rounds for level building and the result broadcast.
    pub flood_rounds: u64,
    /// Upcast window per level, `c·(Δ̂ + ln n)` — the `Δ` bottleneck.
    pub window: u64,
    /// Level schedule bound.
    pub max_levels: u32,
    /// Transmit probability during floods.
    pub q: f64,
    /// Decay floor for upcast probabilities.
    pub p_min: f64,
}

impl BaselineCfg {
    /// Total protocol rounds (2 slots each in the upcast stage).
    pub fn total_rounds(&self) -> u64 {
        self.flood_rounds + self.max_levels as u64 * self.window + self.flood_rounds
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Levels,
    Upcast { level: u32 },
    Result,
}

/// Per-node state of the single-channel baseline (max aggregation).
#[derive(Debug, Clone)]
pub struct SingleChannelAgg {
    cfg: BaselineCfg,
    me: NodeId,
    is_sink: bool,
    level: Option<u32>,
    parent: Option<NodeId>,
    value: i64,
    children_heard: Vec<NodeId>,
    /// Upcast transmission probability (`1/Δ̂`).
    p_up: f64,
    result: Option<i64>,
    finished: bool,
}

impl SingleChannelAgg {
    /// A node holding input `value`; `is_sink` roots the tree.
    pub fn new(cfg: BaselineCfg, me: NodeId, value: i64, is_sink: bool) -> Self {
        SingleChannelAgg {
            cfg,
            me,
            is_sink,
            level: is_sink.then_some(0),
            parent: None,
            value,
            children_heard: Vec::new(),
            p_up: cfg.p_min.clamp(1e-6, 0.25),
            result: None,
            finished: false,
        }
    }

    /// The global result, once known.
    pub fn result(&self) -> Option<i64> {
        self.result
    }

    fn stage(&self, round: u64) -> Stage {
        if round < self.cfg.flood_rounds {
            Stage::Levels
        } else if round < self.cfg.flood_rounds + self.cfg.max_levels as u64 * self.cfg.window {
            let w = (round - self.cfg.flood_rounds) / self.cfg.window;
            Stage::Upcast {
                level: self.cfg.max_levels - w as u32,
            }
        } else {
            Stage::Result
        }
    }
}

/// One slot per round (no acknowledgements: the classic decay protocol
/// transmits redundantly and parents deduplicate by child id).
pub const SLOTS_PER_ROUND: u16 = 1;

impl Protocol for SingleChannelAgg {
    type Msg = BaselineMsg;

    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<BaselineMsg> {
        let tdma = Tdma::trivial(SLOTS_PER_ROUND);
        let ts = tdma.decompose(slot);
        if ts.round >= self.cfg.total_rounds() {
            return Action::Idle;
        }
        let ch = Channel::FIRST;
        match (self.stage(ts.round), ts.slot_in_round) {
            (Stage::Levels, 0) => match self.level {
                Some(l) if rng.gen_bool(self.cfg.q) => Action::Transmit {
                    channel: ch,
                    msg: BaselineMsg::Level(l),
                },
                _ => Action::Listen { channel: ch },
            },
            (Stage::Upcast { level }, 0) => {
                if let (true, Some(parent)) = (self.level == Some(level), self.parent) {
                    // Fixed probability 1/Δ̂: every child gets a fair share
                    // of the window regardless of capture bias.
                    if rng.gen_bool(self.p_up) {
                        return Action::Transmit {
                            channel: ch,
                            msg: BaselineMsg::Up {
                                to: parent,
                                value: self.value,
                            },
                        };
                    }
                }
                Action::Listen { channel: ch }
            }
            (Stage::Result, 0) => {
                if self.is_sink && self.result.is_none() {
                    self.result = Some(self.value);
                }
                match self.result {
                    Some(v) if rng.gen_bool(self.cfg.q) => Action::Transmit {
                        channel: ch,
                        msg: BaselineMsg::Result(v),
                    },
                    _ => Action::Listen { channel: ch },
                }
            }
            _ => Action::Listen { channel: ch },
        }
    }

    fn observe(&mut self, slot: u64, obs: Observation<BaselineMsg>, _rng: &mut SmallRng) {
        let tdma = Tdma::trivial(SLOTS_PER_ROUND);
        let ts = tdma.decompose(slot);
        if let Observation::Received(r) = &obs {
            match &r.msg {
                BaselineMsg::Level(l) => {
                    if self.level.is_none() {
                        self.level = Some(l + 1);
                        self.parent = Some(r.from);
                    }
                }
                BaselineMsg::Up { to, value } => {
                    if *to == self.me && !self.children_heard.contains(&r.from) {
                        self.children_heard.push(r.from);
                        self.value = self.value.max(*value);
                    }
                }
                BaselineMsg::Result(v) => {
                    if self.result.is_none() {
                        self.result = Some(*v);
                    }
                }
            }
        }
        if ts.round >= self.cfg.total_rounds() {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

/// Outcome of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Result per node.
    pub results: Vec<Option<i64>>,
    /// Slots until every node knew the result (or the cap).
    pub slots: u64,
}

/// Runs the single-channel max-aggregation baseline.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn run_single_channel(
    params: &SinrParams,
    positions: &[Point],
    inputs: &[i64],
    sink: NodeId,
    d_hat: u32,
    delta_hat: u64,
    n_bound: usize,
    seed: u64,
) -> BaselineOutcome {
    assert_eq!(positions.len(), inputs.len());
    let ln_n = (n_bound.max(2) as f64).ln();
    let cfg = BaselineCfg {
        flood_rounds: (6.0 * (d_hat as f64 + ln_n)).ceil() as u64,
        // Each of up to Δ̂ children of a bottleneck parent needs its own
        // successful slot against ~Δ̂ competitors at probability 1/Δ̂, so
        // covering everyone w.h.p. costs Θ(Δ̂·ln n) rounds per level — the
        // classical single-channel local-broadcast bound, and the very term
        // the multichannel structure divides by F.
        window: (4.0 * delta_hat as f64 * ln_n).ceil() as u64 + 8,
        max_levels: d_hat + 1,
        q: 0.2,
        p_min: 1.0 / (delta_hat.max(4) as f64),
    };
    let protocols: Vec<SingleChannelAgg> = (0..positions.len())
        .map(|i| SingleChannelAgg::new(cfg, NodeId(i as u32), inputs[i], NodeId(i as u32) == sink))
        .collect();
    let mut engine = Engine::new(*params, positions.to_vec(), protocols, seed);
    let cap = cfg.total_rounds() * SLOTS_PER_ROUND as u64;
    engine.run_until(cap, |ps: &[SingleChannelAgg]| {
        ps.iter().all(|p| p.result().is_some())
    });
    let slots = engine.slot();
    let out = engine.into_protocols();
    BaselineOutcome {
        results: out.iter().map(|p| p.result()).collect(),
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_geom::Deployment;
    use rand::SeedableRng;

    #[test]
    fn finds_max_on_small_network() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = Deployment::uniform(60, 10.0, &mut rng);
        let inputs: Vec<i64> = (0..60).map(|i| (i * 13 % 100) as i64).collect();
        let expect = *inputs.iter().max().unwrap();
        let out = run_single_channel(
            &SinrParams::default(),
            d.points(),
            &inputs,
            NodeId(0),
            4,
            60,
            60,
            7,
        );
        let holders = out.results.iter().filter(|r| **r == Some(expect)).count();
        assert!(holders * 10 >= 60 * 8, "only {holders}/60 got the max");
    }

    #[test]
    fn line_network_propagates() {
        let d = Deployment::line(12, 3.0);
        let inputs: Vec<i64> = (0..12).map(|i| i as i64).collect();
        let out = run_single_channel(
            &SinrParams::default(),
            d.points(),
            &inputs,
            NodeId(0),
            12,
            4,
            12,
            5,
        );
        assert_eq!(out.results[0], Some(11), "sink must see the max");
    }

    #[test]
    fn slots_grow_with_density() {
        let run = |n: usize, side: f64, delta_hat: u64, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let d = Deployment::uniform(n, side, &mut rng);
            let inputs = vec![1i64; n];
            run_single_channel(
                &SinrParams::default(),
                d.points(),
                &inputs,
                NodeId(0),
                6,
                delta_hat,
                n,
                seed,
            )
            .slots
        };
        let sparse = run(60, 14.0, 20, 1);
        let dense = run(240, 7.0, 200, 1);
        assert!(
            dense > sparse,
            "denser network ({dense}) should need more slots than sparse ({sparse})"
        );
    }
}
