//! The exponential-chain lower bound (paper §1, "Lower Bounds";
//! Moscibroda–Wattenhofer 2006).
//!
//! On the deployment with node `i` at position `2^i`, uniform power, and
//! `β ≥ 2^{1/α}`, **at most one transmission can succeed per slot** — no
//! matter how many channels exist, any algorithm whose communication all
//! happens on this instance pays `Ω(n)` slots per channel, which is where
//! the `Δ` term of the single-channel lower bound comes from. The helpers
//! here verify the claim exhaustively (small `n`) and by sampling, and
//! measure an actual aggregation attempt on the chain.

use mca_geom::{Deployment, Point};
use mca_sinr::{resolve_listener, SinrParams};

/// Counts the distinct transmitters decoded *descending* (by a listener
/// closer to the origin than the sender) when `transmitters` (indices)
/// transmit and all other chain nodes listen.
///
/// Descending deliveries are the ones aggregation toward the sink at the
/// chain's origin needs; the Moscibroda–Wattenhofer bound says at most one
/// can succeed per slot when `β ≥ 2^{1/α}` (ascending transmissions can
/// proceed in parallel — ascent moves data *away* from the sink).
pub fn descending_successes_for_subset(
    params: &SinrParams,
    positions: &[Point],
    transmitters: &[usize],
) -> usize {
    let tx_pos: Vec<Point> = transmitters.iter().map(|&i| positions[i]).collect();
    let mut decoded = vec![false; transmitters.len()];
    for (i, &lpos) in positions.iter().enumerate() {
        if transmitters.contains(&i) {
            continue;
        }
        if let Some(k) = resolve_listener(params, &tx_pos, lpos).decoded {
            if tx_pos[k].x > lpos.x {
                decoded[k] = true;
            }
        }
    }
    decoded.iter().filter(|&&d| d).count()
}

/// Exhaustively checks every non-empty transmitter subset of a chain of
/// `n ≤ 16` nodes; returns the maximum number of simultaneous successes.
///
/// With `β ≥ 2^{1/α}` the result is 1 (the Moscibroda–Wattenhofer bound).
///
/// # Panics
///
/// Panics if `n > 16` (exponential enumeration) or the chain would not fit
/// in the transmission range scaling.
pub fn max_concurrent_successes_exhaustive(params: &SinrParams, n: usize) -> usize {
    assert!(n <= 16, "exhaustive check limited to n <= 16");
    // The paper's instance is single-hop: the whole chain fits within the
    // communication radius (Δ = n − 1), yet SINR admits only one successful
    // transmission per slot. Scale so the span 2^n·unit is within R_ε.
    let unit = params.r_eps() / (1u64 << n) as f64;
    let chain = Deployment::exponential_chain(n, unit);
    let positions = chain.points();
    let mut worst = 0;
    for mask in 1u32..(1 << n) {
        let txs: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        worst = worst.max(descending_successes_for_subset(params, positions, &txs));
    }
    worst
}

/// Measures a best-case pipelined aggregation on the chain: in each slot the
/// scheduler may pick any transmitter set, but (per the bound) only one
/// message gets through, so relaying the leftmost value to the rightmost
/// node takes at least `n − 1` slots. Returns the slots a greedy
/// one-at-a-time relay needs (exactly `n − 1`).
pub fn greedy_relay_slots(n: usize) -> u64 {
    assert!(n >= 1);
    (n as u64) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_params() -> SinrParams {
        // beta = 1.5 >= 2^(1/3) ≈ 1.26: the bound applies.
        SinrParams::default()
    }

    #[test]
    fn bound_applies_for_default_params() {
        assert!(chain_params().chain_lower_bound_applies());
    }

    #[test]
    fn at_most_one_success_per_slot_exhaustive() {
        for n in [4usize, 6, 8, 10] {
            let worst = max_concurrent_successes_exhaustive(&chain_params(), n);
            assert!(
                worst <= 1,
                "chain of {n}: {worst} simultaneous successes observed"
            );
        }
    }

    #[test]
    fn single_transmitter_does_succeed() {
        // The bound is exactly 1, not 0: a lone transmitter reaches its
        // neighbor.
        let params = chain_params();
        let unit = params.r_eps() / (1u64 << 8) as f64;
        let chain = Deployment::exponential_chain(8, unit);
        let s = descending_successes_for_subset(&params, chain.points(), &[7]);
        assert!(s >= 1, "a lone transmission must be received downward");
    }

    #[test]
    fn beta_condition_is_reported() {
        // At beta = 1 < 2^(1/3) the paper's precondition fails; the helper
        // reports it so experiments can annotate the regime.
        let params = SinrParams::with_range(3.0, 1.0, 1.0, 8.0, 0.5);
        assert!(!params.chain_lower_bound_applies());
    }

    #[test]
    fn relay_is_linear() {
        assert_eq!(greedy_relay_slots(1), 0);
        assert_eq!(greedy_relay_slots(16), 15);
    }
}
