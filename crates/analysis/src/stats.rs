//! Summary statistics for repeated-trial measurements.

use std::fmt;

/// Summary statistics of a sample of `f64` measurements.
///
/// # Examples
///
/// ```
/// use mca_analysis::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.median(), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    var: f64,
}

impl Summary {
    /// Summarizes `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = if sorted.len() > 1 {
            sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Summary { sorted, mean, var }
    }

    /// Summarizes an iterator of integer measurements (e.g. round counts).
    pub fn of_counts<I: IntoIterator<Item = u64>>(counts: I) -> Self {
        let v: Vec<f64> = counts.into_iter().map(|c| c as f64).collect();
        Summary::of(&v)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the summary is of zero samples (never true — construction
    /// rejects empty samples — but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (unbiased; 0 for a single sample).
    pub fn variance(&self) -> f64 {
        self.var
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Median (mean of the two central order statistics for even sizes).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Linear-interpolated percentile, `p ∈ [0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Half-width of a normal-approximation 95% confidence interval for the
    /// mean (`1.96·s/√n`).
    pub fn ci95_halfwidth(&self) -> f64 {
        1.96 * self.stddev() / (self.len() as f64).sqrt()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} ±{:.2} (median {:.2}, n={})",
            self.mean(),
            self.ci95_halfwidth(),
            self.median(),
            self.len()
        )
    }
}

/// Ordinary least-squares fit `y ≈ slope·x + intercept`.
///
/// Used by experiments to report scaling slopes (e.g. rounds vs `Δ/F`).
///
/// # Panics
///
/// Panics if the slices differ in length, are shorter than 2, or `xs` has
/// zero variance.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
    assert!(xs.len() >= 2, "need at least two points to fit");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "xs must not be constant");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

/// Least-squares exponent fit `y ≈ c·x^k`, returned as `(k, c)`.
/// Fits a line in log–log space; all inputs must be strictly positive.
pub fn power_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0),
        "power fit requires positive data"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let (k, lc) = linear_fit(&lx, &ly);
    (k, lc.exp())
}

/// Coefficient of determination `R²` of predictions `yhat` against `ys`.
pub fn r_squared(ys: &[f64], yhat: &[f64]) -> f64 {
    assert_eq!(ys.len(), yhat.len());
    assert!(!ys.is_empty());
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = ys.iter().zip(yhat).map(|(y, h)| (y - h) * (y - h)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.median(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert!((s.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.percentile(0.0), 7.0);
        assert_eq!(s.percentile(100.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn even_median_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    fn percentiles() {
        let s = Summary::of(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(25.0), 1.0);
        assert_eq!(s.percentile(100.0), 4.0);
        assert_eq!(s.percentile(90.0), 3.6);
    }

    #[test]
    fn of_counts_works() {
        let s = Summary::of_counts([1u64, 2, 3]);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 0.5).collect();
        let (m, b) = linear_fit(&xs, &ys);
        assert!((m - 3.0).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-9);
    }

    #[test]
    fn power_fit_exact_powerlaw() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| 5.0 * x.powf(1.5)).collect();
        let (k, c) = power_fit(&xs, &ys);
        assert!((k - 1.5).abs() < 1e-9);
        assert!((c - 5.0).abs() < 1e-6);
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let ys = [1.0, 2.0, 3.0];
        assert!((r_squared(&ys, &ys) - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&ys, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Summary::of(&[1.0, 2.0])).is_empty());
    }

    proptest! {
        #[test]
        fn summary_invariants(xs in proptest::collection::vec(-1e6..1e6f64, 1..200)) {
            let s = Summary::of(&xs);
            prop_assert!(s.min() <= s.median() + 1e-9);
            prop_assert!(s.median() <= s.max() + 1e-9);
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
            prop_assert!(s.variance() >= 0.0);
        }

        #[test]
        fn percentile_monotone(
            xs in proptest::collection::vec(-1e3..1e3f64, 2..100),
            p1 in 0.0..100.0f64,
            p2 in 0.0..100.0f64,
        ) {
            let s = Summary::of(&xs);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(s.percentile(lo) <= s.percentile(hi) + 1e-9);
        }
    }
}
