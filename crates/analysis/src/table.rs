//! Result tables rendered as markdown or CSV.
//!
//! The experiment binary prints every regenerated "figure" as a table of
//! rows (the paper is a theory paper, so figures are scaling curves — a
//! table of `(x, y)` series is the faithful artifact).

use std::fmt;

/// A simple rectangular table with named columns.
///
/// # Examples
///
/// ```
/// use mca_analysis::Table;
/// let mut t = Table::new("demo", ["x", "y"]);
/// t.row(["1", "2.5"]);
/// assert!(t.to_markdown().contains("| 1 | 2.5 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new<I, S>(title: impl Into<String>, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        assert!(!columns.is_empty(), "a table needs at least one column");
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row of preformatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} does not match column count {}",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
        self
    }

    /// Appends a row of floats, formatted with `decimals` fraction digits.
    pub fn row_f64<I: IntoIterator<Item = f64>>(&mut self, cells: I, decimals: usize) -> &mut Self {
        let cells: Vec<String> = cells
            .into_iter()
            .map(|v| format!("{v:.decimals$}"))
            .collect();
        self.row(cells)
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell at `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders a GitHub-flavored markdown table, preceded by the title.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas/quotes/newlines are
    /// quoted; embedded quotes doubled).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("title", ["a", "b"]);
        t.row(["1", "x"]).row(["2", "y"]);
        let md = t.to_markdown();
        assert!(md.contains("### title"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 2 | y |"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 1), "y");
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("csv", ["name", "note"]);
        t.row(["plain", "a,b"]).row(["q\"uote", "line\nbreak"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("name,note\n"));
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"uote\""));
        assert!(csv.contains("\"line\nbreak\""));
    }

    #[test]
    fn row_f64_formats() {
        let mut t = Table::new("f", ["v"]);
        t.row_f64([1.23456], 2);
        assert_eq!(t.cell(0, 0), "1.23");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new("t", ["a", "b"]).row(["only one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_columns_panics() {
        Table::new("t", Vec::<String>::new());
    }

    #[test]
    fn display_matches_markdown() {
        let mut t = Table::new("d", ["c"]);
        t.row(["v"]);
        assert_eq!(format!("{t}"), t.to_markdown());
    }
}
