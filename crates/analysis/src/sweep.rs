//! Seeded trial sweeps.
//!
//! All experiments report the median over several independent seeds. The
//! helpers here derive per-trial seeds deterministically from a master seed
//! so every table in `EXPERIMENTS.md` is reproducible bit-for-bit.

use crate::stats::Summary;

/// The stable identity of one trial: a scenario id plus the seed it runs
/// under. Every trial in this workspace is a pure function of its key, so
/// the key is the unit of caching, journaling, and resume — two runs of
/// the same key produce bit-identical results regardless of thread count
/// or interleaving.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrialKey {
    /// The scenario this trial runs (the scenario's unique name).
    pub scenario_id: String,
    /// The seed the trial is executed under.
    pub seed: u64,
}

impl TrialKey {
    /// Builds a key from a scenario id and seed.
    pub fn new(scenario_id: impl Into<String>, seed: u64) -> Self {
        Self {
            scenario_id: scenario_id.into(),
            seed,
        }
    }

    /// Renders the key as one journal line: `scenario_id <TAB> seed`.
    ///
    /// The format is append-only and line-oriented so a sweep journal can
    /// be written with one flushed line per completed trial and replayed
    /// by streaming lines back through [`TrialKey::parse_journal_line`].
    pub fn journal_line(&self) -> String {
        format!("{}\t{}", self.scenario_id, self.seed)
    }

    /// Parses one journal line produced by [`TrialKey::journal_line`].
    ///
    /// Returns `None` on malformed input (no tab, or a non-numeric seed) —
    /// a truncated trailing line from an interrupted writer parses as
    /// `None` and is treated as not-yet-journaled by resume logic.
    pub fn parse_journal_line(line: &str) -> Option<Self> {
        let (id, seed) = line.rsplit_once('\t')?;
        let seed = seed.parse::<u64>().ok()?;
        if id.is_empty() {
            return None;
        }
        Some(Self::new(id, seed))
    }
}

impl std::fmt::Display for TrialKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.scenario_id, self.seed)
    }
}

/// One keyed trial result: the [`TrialKey`] it was computed from plus the
/// trial's output. This is what streams out of a keyed runner, in key
/// enumeration order.
#[derive(Debug, Clone)]
pub struct KeyedTrial<T> {
    /// The key this result is a pure function of.
    pub key: TrialKey,
    /// The trial's output.
    pub result: T,
}

/// The outcome of a batch of trials of one configuration.
#[derive(Debug, Clone)]
pub struct TrialOutcome<T> {
    /// Raw per-trial results, in seed order.
    pub results: Vec<T>,
    /// Per-trial seeds used (derived from the master seed).
    pub seeds: Vec<u64>,
}

impl<T> TrialOutcome<T> {
    /// Summarizes a numeric projection of the results.
    ///
    /// # Panics
    ///
    /// Panics if there are no results.
    pub fn summarize<F: Fn(&T) -> f64>(&self, f: F) -> Summary {
        let v: Vec<f64> = self.results.iter().map(f).collect();
        Summary::of(&v)
    }

    /// Fraction of results satisfying `pred`.
    pub fn fraction<F: Fn(&T) -> bool>(&self, pred: F) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results.iter().filter(|r| pred(r)).count() as f64 / self.results.len() as f64
    }
}

/// Derives the seed for trial `i` from `master` (SplitMix64 step — distinct,
/// well-mixed streams for any master).
pub fn trial_seed(master: u64, i: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `trials` independent executions of `f`, handing each a derived seed.
///
/// # Examples
///
/// ```
/// use mca_analysis::run_trials;
/// let out = run_trials(42, 5, |seed| seed % 7);
/// assert_eq!(out.results.len(), 5);
/// ```
pub fn run_trials<T, F: FnMut(u64) -> T>(master: u64, trials: usize, mut f: F) -> TrialOutcome<T> {
    let seeds: Vec<u64> = (0..trials as u64).map(|i| trial_seed(master, i)).collect();
    let results = seeds.iter().map(|&s| f(s)).collect();
    TrialOutcome { results, seeds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seeds_distinct_and_deterministic() {
        let a: Vec<u64> = (0..100).map(|i| trial_seed(7, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| trial_seed(7, i)).collect();
        assert_eq!(a, b);
        let set: HashSet<u64> = a.iter().copied().collect();
        assert_eq!(set.len(), 100, "trial seeds must be distinct");
        let other: Vec<u64> = (0..100).map(|i| trial_seed(8, i)).collect();
        assert_ne!(a, other);
    }

    #[test]
    fn run_trials_passes_seeds() {
        let out = run_trials(1, 4, |s| s);
        assert_eq!(out.results, out.seeds);
    }

    #[test]
    fn summarize_and_fraction() {
        let out = run_trials(3, 10, |s| (s % 10) as f64);
        let sum = out.summarize(|&x| x);
        assert_eq!(sum.len(), 10);
        let frac = out.fraction(|&x| x >= 0.0);
        assert_eq!(frac, 1.0);
    }

    #[test]
    fn journal_line_round_trips() {
        let k = TrialKey::new("dense-16ch", 42);
        let line = k.journal_line();
        assert_eq!(line, "dense-16ch\t42");
        assert_eq!(TrialKey::parse_journal_line(&line), Some(k.clone()));
        assert_eq!(format!("{k}"), "dense-16ch#42");
        // Malformed lines (truncated writer, junk) parse as None.
        assert_eq!(TrialKey::parse_journal_line("no-tab"), None);
        assert_eq!(TrialKey::parse_journal_line("name\tnot-a-seed"), None);
        assert_eq!(TrialKey::parse_journal_line("\t7"), None);
        assert_eq!(TrialKey::parse_journal_line(""), None);
    }

    #[test]
    fn zero_trials() {
        let out = run_trials(3, 0, |s| s);
        assert!(out.results.is_empty());
        assert_eq!(out.fraction(|_| true), 0.0);
    }
}
