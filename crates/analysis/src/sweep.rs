//! Seeded trial sweeps.
//!
//! All experiments report the median over several independent seeds. The
//! helpers here derive per-trial seeds deterministically from a master seed
//! so every table in `EXPERIMENTS.md` is reproducible bit-for-bit.

use crate::stats::Summary;

/// The outcome of a batch of trials of one configuration.
#[derive(Debug, Clone)]
pub struct TrialOutcome<T> {
    /// Raw per-trial results, in seed order.
    pub results: Vec<T>,
    /// Per-trial seeds used (derived from the master seed).
    pub seeds: Vec<u64>,
}

impl<T> TrialOutcome<T> {
    /// Summarizes a numeric projection of the results.
    ///
    /// # Panics
    ///
    /// Panics if there are no results.
    pub fn summarize<F: Fn(&T) -> f64>(&self, f: F) -> Summary {
        let v: Vec<f64> = self.results.iter().map(f).collect();
        Summary::of(&v)
    }

    /// Fraction of results satisfying `pred`.
    pub fn fraction<F: Fn(&T) -> bool>(&self, pred: F) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results.iter().filter(|r| pred(r)).count() as f64 / self.results.len() as f64
    }
}

/// Derives the seed for trial `i` from `master` (SplitMix64 step — distinct,
/// well-mixed streams for any master).
pub fn trial_seed(master: u64, i: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `trials` independent executions of `f`, handing each a derived seed.
///
/// # Examples
///
/// ```
/// use mca_analysis::run_trials;
/// let out = run_trials(42, 5, |seed| seed % 7);
/// assert_eq!(out.results.len(), 5);
/// ```
pub fn run_trials<T, F: FnMut(u64) -> T>(master: u64, trials: usize, mut f: F) -> TrialOutcome<T> {
    let seeds: Vec<u64> = (0..trials as u64).map(|i| trial_seed(master, i)).collect();
    let results = seeds.iter().map(|&s| f(s)).collect();
    TrialOutcome { results, seeds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seeds_distinct_and_deterministic() {
        let a: Vec<u64> = (0..100).map(|i| trial_seed(7, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| trial_seed(7, i)).collect();
        assert_eq!(a, b);
        let set: HashSet<u64> = a.iter().copied().collect();
        assert_eq!(set.len(), 100, "trial seeds must be distinct");
        let other: Vec<u64> = (0..100).map(|i| trial_seed(8, i)).collect();
        assert_ne!(a, other);
    }

    #[test]
    fn run_trials_passes_seeds() {
        let out = run_trials(1, 4, |s| s);
        assert_eq!(out.results, out.seeds);
    }

    #[test]
    fn summarize_and_fraction() {
        let out = run_trials(3, 10, |s| (s % 10) as f64);
        let sum = out.summarize(|&x| x);
        assert_eq!(sum.len(), 10);
        let frac = out.fraction(|&x| x >= 0.0);
        assert_eq!(frac, 1.0);
    }

    #[test]
    fn zero_trials() {
        let out = run_trials(3, 0, |s| s);
        assert!(out.results.is_empty());
        assert_eq!(out.fraction(|_| true), 0.0);
    }
}
