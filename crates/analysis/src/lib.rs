//! # `mca-analysis` — experiment harness utilities
//!
//! Statistics ([`stats`]), markdown/CSV table rendering ([`table`]), and
//! seeded trial sweeps ([`sweep`]) shared by the `experiments` binary, the
//! criterion benches and the integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;
pub mod sweep;
pub mod table;

pub use stats::Summary;
pub use sweep::{run_trials, trial_seed, KeyedTrial, TrialKey, TrialOutcome};
pub use table::Table;
