//! Field-tracking decode helper.
//!
//! [`Fields`] wraps a parsed [`Table`] during decoding: every accessor
//! marks its key as consumed, and [`Fields::finish`] rejects any key that
//! was never consumed — so a typo like `alphaa = 3.0` fails loudly with
//! the offending line and dotted path instead of being silently ignored.

use crate::error::{join_path, TomlError};
use crate::value::{Table, Value};

/// A decoding view over one table, with required/optional accessors and
/// unknown-field rejection.
pub struct Fields<'a> {
    table: &'a Table,
    path: String,
    taken: Vec<bool>,
}

impl<'a> Fields<'a> {
    /// Wraps `value` (which must be a table) rooted at dotted `path`.
    pub fn new(value: &'a Value, path: &str) -> Result<Self, TomlError> {
        Ok(Fields::of_table(value.as_table(path)?, path))
    }

    /// Wraps a table directly.
    pub fn of_table(table: &'a Table, path: &str) -> Self {
        Fields {
            table,
            path: path.to_string(),
            taken: vec![false; table.len()],
        }
    }

    /// The dotted path of this table (empty at the document root).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The source line the table started on.
    pub fn line(&self) -> usize {
        self.table.line
    }

    /// Dotted path of `key` within this table.
    pub fn key_path(&self, key: &str) -> String {
        join_path(&self.path, key)
    }

    /// The value under `key`, marking it consumed.
    pub fn take(&mut self, key: &str) -> Option<&'a Value> {
        for (i, (k, v)) in self.table.entries.iter().enumerate() {
            if k == key {
                self.taken[i] = true;
                return Some(v);
            }
        }
        None
    }

    /// The value under `key`, or a "missing required field" error naming
    /// the table's line.
    pub fn require(&mut self, key: &str) -> Result<&'a Value, TomlError> {
        let line = self.line();
        let path = self.key_path(key);
        self.take(key)
            .ok_or_else(|| TomlError::field(line, path, "missing required field"))
    }

    /// Required string field.
    pub fn str(&mut self, key: &str) -> Result<&'a str, TomlError> {
        let path = self.key_path(key);
        self.require(key)?.as_str(&path)
    }

    /// Required float field (integers widen).
    pub fn f64(&mut self, key: &str) -> Result<f64, TomlError> {
        let path = self.key_path(key);
        self.require(key)?.as_f64(&path)
    }

    /// Required `u64` field.
    pub fn u64(&mut self, key: &str) -> Result<u64, TomlError> {
        let path = self.key_path(key);
        self.require(key)?.as_u64(&path)
    }

    /// Required `u16` field.
    pub fn u16(&mut self, key: &str) -> Result<u16, TomlError> {
        let path = self.key_path(key);
        self.require(key)?.as_u16(&path)
    }

    /// Required `usize` field.
    pub fn usize(&mut self, key: &str) -> Result<usize, TomlError> {
        let path = self.key_path(key);
        self.require(key)?.as_usize(&path)
    }

    /// Optional string field.
    pub fn opt_str(&mut self, key: &str) -> Result<Option<&'a str>, TomlError> {
        let path = self.key_path(key);
        self.take(key).map(|v| v.as_str(&path)).transpose()
    }

    /// Optional float field (integers widen).
    pub fn opt_f64(&mut self, key: &str) -> Result<Option<f64>, TomlError> {
        let path = self.key_path(key);
        self.take(key).map(|v| v.as_f64(&path)).transpose()
    }

    /// Optional boolean field.
    pub fn opt_bool(&mut self, key: &str) -> Result<Option<bool>, TomlError> {
        let path = self.key_path(key);
        self.take(key).map(|v| v.as_bool(&path)).transpose()
    }

    /// Optional `u64` field.
    pub fn opt_u64(&mut self, key: &str) -> Result<Option<u64>, TomlError> {
        let path = self.key_path(key);
        self.take(key).map(|v| v.as_u64(&path)).transpose()
    }

    /// Optional `u16` field.
    pub fn opt_u16(&mut self, key: &str) -> Result<Option<u16>, TomlError> {
        let path = self.key_path(key);
        self.take(key).map(|v| v.as_u16(&path)).transpose()
    }

    /// Optional sub-table, as its own [`Fields`] view.
    pub fn opt_fields(&mut self, key: &str) -> Result<Option<Fields<'a>>, TomlError> {
        let path = self.key_path(key);
        self.take(key).map(|v| Fields::new(v, &path)).transpose()
    }

    /// Optional array field (defaults to empty).
    pub fn opt_array(&mut self, key: &str) -> Result<&'a [Value], TomlError> {
        let path = self.key_path(key);
        match self.take(key) {
            Some(v) => v.as_array(&path),
            None => Ok(&[]),
        }
    }

    /// Fails decoding of field `key` with `message`, anchored to the
    /// field's source line (or the table's if absent).
    pub fn invalid(&self, key: &str, message: impl Into<String>) -> TomlError {
        let line = self
            .table
            .get(key)
            .map(|v| v.line)
            .filter(|&l| l > 0)
            .unwrap_or_else(|| self.line());
        TomlError::field(line, self.key_path(key), message)
    }

    /// Succeeds only if every key was consumed; otherwise reports the
    /// first unknown field with its line.
    pub fn finish(self) -> Result<(), TomlError> {
        for (i, (key, value)) in self.table.entries.iter().enumerate() {
            if !self.taken[i] {
                return Err(TomlError::field(
                    value.line.max(self.table.line),
                    self.key_path(key),
                    "unknown field",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn required_and_optional_access() {
        let t = parse("a = 1.5\nb = \"x\"\nc = 7\n").unwrap();
        let mut f = Fields::of_table(&t, "");
        assert_eq!(f.f64("a").unwrap(), 1.5);
        assert_eq!(f.str("b").unwrap(), "x");
        assert_eq!(f.opt_u64("c").unwrap(), Some(7));
        assert_eq!(f.opt_bool("missing").unwrap(), None);
        f.finish().unwrap();
    }

    #[test]
    fn missing_required_field_names_table_line() {
        let t = parse("x = 1\n\n[sinr]\nbeta = 1.5\n").unwrap();
        let mut root = Fields::of_table(&t, "");
        let _ = root.take("x");
        let mut sinr = root.opt_fields("sinr").unwrap().unwrap();
        let e = sinr.f64("alpha").unwrap_err();
        assert_eq!(e.path, "sinr.alpha");
        assert_eq!(e.line, 3, "anchored to the [sinr] header line");
        assert!(e.message.contains("missing required field"));
    }

    #[test]
    fn unknown_field_is_rejected_with_line() {
        let t = parse("a = 1\noops = 2\n").unwrap();
        let mut f = Fields::of_table(&t, "");
        let _ = f.take("a");
        let e = f.finish().unwrap_err();
        assert_eq!(e.path, "oops");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown field"));
    }

    #[test]
    fn invalid_anchors_to_field_line() {
        let t = parse("a = 1\nkind = \"bogus\"\n").unwrap();
        let mut f = Fields::of_table(&t, "mob");
        let _ = f.take("a");
        let _ = f.take("kind");
        let e = f.invalid("kind", "unknown kind `bogus`");
        assert_eq!(e.line, 2);
        assert_eq!(e.path, "mob.kind");
    }

    #[test]
    fn type_mismatch_through_fields() {
        let t = parse("n = \"ten\"\n").unwrap();
        let mut f = Fields::of_table(&t, "deployment");
        let e = f.usize("n").unwrap_err();
        assert_eq!(e.path, "deployment.n");
        assert!(e.message.contains("expected an integer"), "{e}");
    }
}
