//! Line- and field-qualified (de)serialization errors.

use std::error::Error;
use std::fmt;

/// An error produced while parsing TOML text or decoding a parsed document
/// into a typed value.
///
/// Every error carries the 1-based source `line` it refers to and, for
/// decode errors, the dotted `path` of the offending field (e.g.
/// `sinr.alpha` or `faults.jam[1].power`), so a scenario author can go
/// straight from the message to the line and key that needs fixing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line in the source text (0 when the value was synthesized
    /// in memory rather than parsed).
    pub line: usize,
    /// Dotted field path, empty for document-level syntax errors.
    pub path: String,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl TomlError {
    /// A syntax error at `line` with no associated field.
    pub fn syntax(line: usize, message: impl Into<String>) -> Self {
        TomlError {
            line,
            path: String::new(),
            message: message.into(),
        }
    }

    /// A decode error for the field at `path`, anchored to `line`.
    pub fn field(line: usize, path: impl Into<String>, message: impl Into<String>) -> Self {
        TomlError {
            line,
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        if !self.path.is_empty() {
            write!(f, "`{}`: ", self.path)?;
        }
        f.write_str(&self.message)
    }
}

impl Error for TomlError {}

/// Joins a parent path and a key into a dotted path (`""` + `"sinr"` →
/// `"sinr"`, `"faults"` + `"jam"` → `"faults.jam"`).
pub fn join_path(parent: &str, key: &str) -> String {
    if parent.is_empty() {
        key.to_string()
    } else {
        format!("{parent}.{key}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_path() {
        let e = TomlError::field(12, "sinr.alpha", "expected a float, found a string");
        let s = e.to_string();
        assert!(s.contains("line 12"), "{s}");
        assert!(s.contains("`sinr.alpha`"), "{s}");
        assert!(s.contains("expected a float"), "{s}");
    }

    #[test]
    fn display_omits_empty_parts() {
        let e = TomlError::syntax(3, "unterminated string");
        assert_eq!(e.to_string(), "line 3: unterminated string");
        let e = TomlError::field(0, "name", "missing");
        assert_eq!(e.to_string(), "`name`: missing");
    }

    #[test]
    fn join_path_handles_root() {
        assert_eq!(join_path("", "a"), "a");
        assert_eq!(join_path("a", "b"), "a.b");
    }
}
