//! Canonical TOML emission.
//!
//! The emitter produces one fixed layout so that serialization is
//! byte-deterministic (golden tests can pin it) and diffs stay readable:
//!
//! * scalar and array entries of a table come first, as `key = value`
//!   lines in insertion order;
//! * sub-tables follow as `[dotted.header]` sections, recursively;
//! * a non-empty array whose elements are all tables is emitted as
//!   `[[dotted.header]]` array-of-tables sections (an *empty* such array
//!   is simply omitted — the schema treats absent and empty alike);
//! * floats are printed with Rust's shortest round-trip formatting
//!   (`{:?}`), so `value -> text -> value` is bit-exact; strings are
//!   escaped as basic strings.

use crate::value::{Kind, Table, Value};
use std::fmt::Write;

/// Renders `table` as a TOML document.
///
/// # Panics
///
/// Panics on non-finite floats — this subset of TOML has no `inf`/`nan`
/// representation, and silently writing one would produce a file the
/// parser rejects.
pub fn emit(table: &Table) -> String {
    let mut out = String::new();
    emit_table(&mut out, table, &mut Vec::new());
    out
}

fn emit_table(out: &mut String, table: &Table, path: &mut Vec<String>) {
    // Pass 1: inline entries.
    for (key, value) in &table.entries {
        if is_section(value) {
            continue;
        }
        out.push_str(&key_repr(key));
        out.push_str(" = ");
        emit_value(out, value);
        out.push('\n');
    }
    // Pass 2: sections.
    for (key, value) in &table.entries {
        path.push(key.clone());
        match &value.kind {
            Kind::Table(sub) if is_section(value) => {
                // A pure container (only sub-sections inside) needs no
                // header of its own — its children's headers imply it.
                let needs_header =
                    sub.is_empty() || sub.entries.iter().any(|(_, v)| !is_section(v));
                if needs_header {
                    blank_line(out);
                    let _ = writeln!(out, "[{}]", header_repr(path));
                }
                emit_table(out, sub, path);
            }
            Kind::Array(items) if is_section(value) => {
                for item in items {
                    if let Kind::Table(sub) = &item.kind {
                        blank_line(out);
                        let _ = writeln!(out, "[[{}]]", header_repr(path));
                        emit_table(out, sub, path);
                    }
                }
            }
            _ => {}
        }
        path.pop();
    }
}

/// Whether a value is emitted as a `[section]` / `[[section]]` rather than
/// inline on a `key = value` line.
fn is_section(value: &Value) -> bool {
    match &value.kind {
        Kind::Table(_) => true,
        Kind::Array(items) => {
            !items.is_empty() && items.iter().all(|v| matches!(v.kind, Kind::Table(_)))
        }
        _ => false,
    }
}

fn blank_line(out: &mut String) {
    if !out.is_empty() && !out.ends_with("\n\n") {
        out.push('\n');
    }
}

fn emit_value(out: &mut String, value: &Value) {
    match &value.kind {
        Kind::Str(s) => {
            let _ = write!(out, "{}", string_repr(s));
        }
        Kind::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Kind::Float(f) => {
            // TOML (this subset) has no representation for non-finite
            // floats; writing `inf`/`NaN` would produce a document the
            // parser rejects, so fail loudly at the source instead.
            assert!(
                f.is_finite(),
                "cannot emit non-finite float {f} as TOML (no parseable representation)"
            );
            let _ = write!(out, "{f:?}");
        }
        Kind::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Kind::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_value(out, item);
            }
            out.push(']');
        }
        Kind::Table(t) => {
            out.push_str("{ ");
            for (i, (key, v)) in t.entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&key_repr(key));
                out.push_str(" = ");
                emit_value(out, v);
            }
            if t.is_empty() {
                out.pop();
            }
            out.push_str(" }");
        }
    }
}

fn key_repr(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .bytes()
            .all(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-');
    if bare {
        key.to_string()
    } else {
        string_repr(key)
    }
}

fn header_repr(path: &[String]) -> String {
    path.iter()
        .map(|s| key_repr(s))
        .collect::<Vec<_>>()
        .join(".")
}

fn string_repr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04X}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn layout_scalars_then_sections() {
        let t = Table::new()
            .with("name", Value::str("demo"))
            .with("n", Value::int(3))
            .with(
                "sub",
                Value::table(Table::new().with("x", Value::float(1.5))),
            );
        assert_eq!(emit(&t), "name = \"demo\"\nn = 3\n\n[sub]\nx = 1.5\n");
    }

    #[test]
    fn array_of_tables_layout() {
        let jam = |k: &str| Value::table(Table::new().with("kind", Value::str(k)));
        let t = Table::new().with(
            "faults",
            Value::table(Table::new().with("jam", Value::array(vec![jam("fixed"), jam("random")]))),
        );
        assert_eq!(
            emit(&t),
            "[[faults.jam]]\nkind = \"fixed\"\n\n[[faults.jam]]\nkind = \"random\"\n"
        );
    }

    #[test]
    fn empty_array_stays_inline() {
        let t = Table::new().with("xs", Value::array(vec![]));
        assert_eq!(emit(&t), "xs = []\n");
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [
            0.1,
            1.0,
            1e-6,
            0.30000000000000004,
            f64::MIN_POSITIVE,
            768.0,
        ] {
            let t = Table::new().with("f", Value::float(f));
            let back = parse(&emit(&t)).unwrap();
            let got = back.get("f").unwrap().as_f64("f").unwrap();
            assert_eq!(got.to_bits(), f.to_bits(), "{f}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tabs\tand\nnewlines",
            "uni \u{1}",
        ] {
            let t = Table::new().with("s", Value::str(s));
            let back = parse(&emit(&t)).unwrap();
            assert_eq!(back.get("s").unwrap().as_str("s").unwrap(), s, "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite float")]
    fn non_finite_floats_are_rejected_loudly() {
        emit(&Table::new().with("f", Value::float(f64::INFINITY)));
    }

    #[test]
    fn quoted_keys_round_trip() {
        let t = Table::new().with("odd key", Value::int(1));
        let back = parse(&emit(&t)).unwrap();
        assert_eq!(back.get("odd key").unwrap().as_int("").unwrap(), 1);
    }

    #[test]
    fn document_round_trip_ignoring_lines() {
        let src = "name = \"x\"\nns = [1, 2, 3]\n\n[a]\nf = 2.5\n\n[a.b]\ng = true\n\n[[a.j]]\nk = 1\n\n[[a.j]]\nk = 2\n";
        let t = parse(src).unwrap();
        assert_eq!(emit(&t), src);
    }
}
