//! # `mca-serde` — offline TOML (de)serialization
//!
//! This workspace builds in an environment with no crates.io access, so —
//! matching the `vendor/{rand, rayon, criterion, proptest}` shims — the
//! TOML support the scenario system needs is implemented locally rather
//! than pulled from `serde` + `toml`. The crate provides:
//!
//! * a document model ([`Value`], [`Table`]) in which every node carries
//!   the 1-based source line it was parsed from;
//! * a recursive-descent [`parse`]r for the TOML subset the scenario
//!   schema uses (tables, array-of-tables, inline tables, nested
//!   multi-line arrays, strings with escapes, `i128`-wide integers,
//!   floats, booleans, comments — see [`parse`] for the exact envelope);
//! * a canonical, byte-deterministic [`emit`]ter whose float formatting
//!   round-trips bit-exactly;
//! * [`Fields`], a decode helper with required/optional typed accessors
//!   and *unknown-field rejection* — every decode error is a
//!   [`TomlError`] carrying the line and dotted field path;
//! * the serde-like [`ToToml`] / [`FromToml`] trait pair that domain
//!   crates (e.g. `mca-scenario`) implement.
//!
//! # Examples
//!
//! ```
//! use mca_serde::{parse, emit, Fields};
//!
//! let doc = parse("name = \"demo\"\n\n[sinr]\nalpha = 3.0\n").unwrap();
//! let mut root = Fields::of_table(&doc, "");
//! assert_eq!(root.str("name").unwrap(), "demo");
//! let mut sinr = root.opt_fields("sinr").unwrap().unwrap();
//! assert_eq!(sinr.f64("alpha").unwrap(), 3.0);
//! sinr.finish().unwrap();
//! root.finish().unwrap();
//! assert_eq!(emit(&doc), "name = \"demo\"\n\n[sinr]\nalpha = 3.0\n");
//!
//! // Errors carry the line and the dotted field path.
//! let doc = parse("[sinr]\nalpha = \"three\"\n").unwrap();
//! let mut root = Fields::of_table(&doc, "");
//! let mut sinr = root.opt_fields("sinr").unwrap().unwrap();
//! let err = sinr.f64("alpha").unwrap_err();
//! assert_eq!(err.to_string(), "line 2: `sinr.alpha`: expected a number, found a string");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod de;
mod emit;
mod error;
mod parse;
mod value;

pub use de::Fields;
pub use emit::emit;
pub use error::{join_path, TomlError};
pub use parse::parse;
pub use value::{Kind, Table, Value};

/// Serialization into the TOML document model.
pub trait ToToml {
    /// This value as a TOML [`Table`] (the root of its document).
    fn to_toml_table(&self) -> Table;

    /// This value rendered as TOML text (canonical layout; see [`emit`]).
    fn to_toml(&self) -> String {
        emit(&self.to_toml_table())
    }
}

/// Deserialization from the TOML document model.
pub trait FromToml: Sized {
    /// Decodes from a parsed root [`Table`].
    ///
    /// Implementations must consume every field (via [`Fields`]) so that
    /// unknown keys are rejected rather than ignored.
    fn from_toml_table(table: &Table) -> Result<Self, TomlError>;

    /// Parses and decodes TOML text.
    fn from_toml_str(src: &str) -> Result<Self, TomlError> {
        Self::from_toml_table(&parse(src)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Demo {
        name: String,
        n: u64,
    }

    impl ToToml for Demo {
        fn to_toml_table(&self) -> Table {
            Table::new()
                .with("name", Value::str(&self.name))
                .with("n", Value::int(self.n))
        }
    }

    impl FromToml for Demo {
        fn from_toml_table(table: &Table) -> Result<Self, TomlError> {
            let mut f = Fields::of_table(table, "");
            let demo = Demo {
                name: f.str("name")?.to_string(),
                n: f.u64("n")?,
            };
            f.finish()?;
            Ok(demo)
        }
    }

    #[test]
    fn trait_round_trip() {
        let d = Demo {
            name: "x".into(),
            n: 7,
        };
        let text = d.to_toml();
        let back = Demo::from_toml_str(&text).unwrap();
        assert_eq!(back.name, d.name);
        assert_eq!(back.n, d.n);
    }

    #[test]
    fn trait_rejects_unknown_fields() {
        let e = Demo::from_toml_str("name = \"x\"\nn = 1\nextra = 2\n").unwrap_err();
        assert_eq!(e.path, "extra");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn trait_surfaces_syntax_errors() {
        let e = Demo::from_toml_str("name = \n").unwrap_err();
        assert_eq!(e.line, 1);
    }
}
