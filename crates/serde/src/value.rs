//! The TOML document model: [`Value`] and insertion-ordered [`Table`].

use crate::error::TomlError;

/// A TOML value together with the 1-based source line it was parsed from
/// (0 for values built in memory).
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    /// The value itself.
    pub kind: Kind,
    /// 1-based source line, or 0 for synthesized values.
    pub line: usize,
}

/// The kinds of TOML value this subset supports.
///
/// Integers are held as `i128` so both the full `i64` range of standard
/// TOML and the `u64` seeds/slot counts the simulator uses round-trip
/// without loss; datetimes are not supported (nothing in the scenario
/// schema needs them).
#[derive(Debug, Clone, PartialEq)]
pub enum Kind {
    /// A (basic) string.
    Str(String),
    /// An integer.
    Int(i128),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// A (sub)table.
    Table(Table),
}

impl Value {
    /// A string value with no source position.
    pub fn str(s: impl Into<String>) -> Self {
        Kind::Str(s.into()).into()
    }

    /// An integer value with no source position.
    pub fn int(i: impl Into<i128>) -> Self {
        Kind::Int(i.into()).into()
    }

    /// A float value with no source position.
    pub fn float(f: f64) -> Self {
        Kind::Float(f).into()
    }

    /// A boolean value with no source position.
    pub fn bool(b: bool) -> Self {
        Kind::Bool(b).into()
    }

    /// An array value with no source position.
    pub fn array(items: Vec<Value>) -> Self {
        Kind::Array(items).into()
    }

    /// A table value with no source position.
    pub fn table(table: Table) -> Self {
        Kind::Table(table).into()
    }

    /// An array of `[a, b]` pairs — the encoding used for `(node, slot)`
    /// event lists and windows.
    pub fn pair_array<A: Into<i128> + Copy, B: Into<i128> + Copy>(pairs: &[(A, B)]) -> Self {
        Value::array(
            pairs
                .iter()
                .map(|&(a, b)| Value::array(vec![Value::int(a), Value::int(b)]))
                .collect(),
        )
    }

    /// A short noun for error messages ("a string", "an integer", …).
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            Kind::Str(_) => "a string",
            Kind::Int(_) => "an integer",
            Kind::Float(_) => "a float",
            Kind::Bool(_) => "a boolean",
            Kind::Array(_) => "an array",
            Kind::Table(_) => "a table",
        }
    }

    /// The table inside, or a type error naming `path`.
    pub fn as_table(&self, path: &str) -> Result<&Table, TomlError> {
        match &self.kind {
            Kind::Table(t) => Ok(t),
            _ => Err(self.type_error(path, "a table")),
        }
    }

    /// The array inside, or a type error naming `path`.
    pub fn as_array(&self, path: &str) -> Result<&[Value], TomlError> {
        match &self.kind {
            Kind::Array(items) => Ok(items),
            _ => Err(self.type_error(path, "an array")),
        }
    }

    /// The string inside, or a type error naming `path`.
    pub fn as_str(&self, path: &str) -> Result<&str, TomlError> {
        match &self.kind {
            Kind::Str(s) => Ok(s),
            _ => Err(self.type_error(path, "a string")),
        }
    }

    /// The boolean inside, or a type error naming `path`.
    pub fn as_bool(&self, path: &str) -> Result<bool, TomlError> {
        match self.kind {
            Kind::Bool(b) => Ok(b),
            _ => Err(self.type_error(path, "a boolean")),
        }
    }

    /// The value as a float; integers are accepted and widened (so
    /// `side = 30` works where `30.0` is meant).
    pub fn as_f64(&self, path: &str) -> Result<f64, TomlError> {
        match self.kind {
            Kind::Float(f) => Ok(f),
            Kind::Int(i) => Ok(i as f64),
            _ => Err(self.type_error(path, "a number")),
        }
    }

    /// The value as an `i128` integer.
    pub fn as_int(&self, path: &str) -> Result<i128, TomlError> {
        match self.kind {
            Kind::Int(i) => Ok(i),
            _ => Err(self.type_error(path, "an integer")),
        }
    }

    /// The value as a `u64`, range-checked.
    pub fn as_u64(&self, path: &str) -> Result<u64, TomlError> {
        let i = self.as_int(path)?;
        u64::try_from(i)
            .map_err(|_| TomlError::field(self.line, path, format!("{i} is out of range for u64")))
    }

    /// The value as a `u32`, range-checked.
    pub fn as_u32(&self, path: &str) -> Result<u32, TomlError> {
        let i = self.as_int(path)?;
        u32::try_from(i)
            .map_err(|_| TomlError::field(self.line, path, format!("{i} is out of range for u32")))
    }

    /// The value as a `u16`, range-checked.
    pub fn as_u16(&self, path: &str) -> Result<u16, TomlError> {
        let i = self.as_int(path)?;
        u16::try_from(i)
            .map_err(|_| TomlError::field(self.line, path, format!("{i} is out of range for u16")))
    }

    /// The value as a `usize`, range-checked.
    pub fn as_usize(&self, path: &str) -> Result<usize, TomlError> {
        let i = self.as_int(path)?;
        usize::try_from(i).map_err(|_| {
            TomlError::field(self.line, path, format!("{i} is out of range for usize"))
        })
    }

    /// An `[a, b]` two-element numeric array, as used for points and
    /// windows.
    pub fn as_f64_pair(&self, path: &str) -> Result<(f64, f64), TomlError> {
        let items = self.as_array(path)?;
        if items.len() != 2 {
            return Err(TomlError::field(
                self.line,
                path,
                format!("expected a 2-element array, found {} elements", items.len()),
            ));
        }
        Ok((items[0].as_f64(path)?, items[1].as_f64(path)?))
    }

    fn type_error(&self, path: &str, expected: &str) -> TomlError {
        TomlError::field(
            self.line,
            path,
            format!("expected {expected}, found {}", self.kind_name()),
        )
    }
}

impl From<Kind> for Value {
    fn from(kind: Kind) -> Self {
        Value { kind, line: 0 }
    }
}

/// An insertion-ordered TOML table.
///
/// Order is preserved so the emitter produces stable, human-diffable
/// output and round-trips are byte-deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// `(key, value)` entries in insertion order. Keys are unique.
    pub entries: Vec<(String, Value)>,
    /// 1-based line of the `[header]` (or first key) that opened this
    /// table; 0 for synthesized tables.
    pub line: usize,
}

impl Table {
    /// An empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// The value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable access to the value under `key`, if present.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Appends `key = value`, replacing any existing entry with the key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.get_mut(&key) {
            *slot = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Builder-style [`Table::insert`].
    pub fn with(mut self, key: impl Into<String>, value: Value) -> Self {
        self.insert(key, value);
        self
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_insert_get_replace() {
        let mut t = Table::new();
        t.insert("a", Value::int(1));
        t.insert("b", Value::str("x"));
        t.insert("a", Value::int(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("a").unwrap().as_int("a").unwrap(), 2);
        assert!(t.contains("b"));
        assert!(!t.contains("c"));
    }

    #[test]
    fn numeric_coercions_and_ranges() {
        assert_eq!(Value::int(30).as_f64("x").unwrap(), 30.0);
        assert_eq!(Value::float(1.5).as_f64("x").unwrap(), 1.5);
        assert!(Value::str("no").as_f64("x").is_err());
        assert!(Value::int(-1).as_u64("x").is_err());
        assert!(Value::int(70000).as_u16("x").is_err());
        assert_eq!(Value::int(u64::MAX as i128).as_u64("x").unwrap(), u64::MAX);
    }

    #[test]
    fn type_errors_name_the_path_and_kind() {
        let e = Value::bool(true).as_table("faults").unwrap_err();
        assert!(e.to_string().contains("`faults`"), "{e}");
        assert!(e.to_string().contains("a boolean"), "{e}");
    }

    #[test]
    fn pair_array_shape() {
        let v = Value::pair_array(&[(1u32, 5u64), (2, 6)]);
        let items = v.as_array("p").unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].as_f64_pair("p").unwrap(), (1.0, 5.0));
    }

    #[test]
    fn f64_pair_rejects_wrong_arity() {
        let v = Value::array(vec![Value::int(1)]);
        let e = v.as_f64_pair("w").unwrap_err();
        assert!(e.message.contains("2-element"), "{e}");
    }
}
