//! A recursive-descent TOML parser with line-qualified errors.
//!
//! Supports the subset of TOML 1.0 the scenario schema uses (and a little
//! more, so hand-written files are forgiving to author):
//!
//! * `key = value` pairs with bare or quoted keys;
//! * `[table]` and dotted `[table.sub]` headers, `[[array.of.tables]]`;
//! * basic `"…"` strings (with the standard escapes incl. `\uXXXX`) and
//!   literal `'…'` strings;
//! * integers (with `_` separators, full `i64` plus `u64` range via
//!   `i128`), floats (fraction/exponent forms), booleans;
//! * arrays (nested, multi-line, trailing comma allowed) and single-line
//!   inline tables `{ k = v, … }`;
//! * `#` comments and blank lines anywhere between statements.
//!
//! Not supported (rejected with a clear error rather than misparsed):
//! datetimes, multi-line strings, dotted keys on the left of `=`, hex /
//! octal / binary integers, and `inf`/`nan`.

use crate::error::TomlError;
use crate::value::{Kind, Table, Value};

/// Parses a TOML document into its root [`Table`].
pub fn parse(src: &str) -> Result<Table, TomlError> {
    Parser::new(src).parse_document()
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

/// Path of explicitly declared `[headers]`, used for duplicate detection.
type DeclaredSet = std::collections::HashSet<String>;

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn parse_document(&mut self) -> Result<Table, TomlError> {
        let mut root = Table::new();
        root.line = 1;
        let mut declared = DeclaredSet::new();
        // Dotted path of the table subsequent `key = value` lines land in.
        let mut current: Vec<String> = Vec::new();

        loop {
            self.skip_trivia();
            let Some(c) = self.peek() else { break };
            if c == b'[' {
                let header_line = self.line;
                self.bump();
                let array_of_tables = self.peek() == Some(b'[');
                if array_of_tables {
                    self.bump();
                }
                let path = self.parse_key_path(b']')?;
                self.expect(b']', "expected `]` to close the table header")?;
                if array_of_tables {
                    self.expect(b']', "expected `]]` to close the array-of-tables header")?;
                }
                self.expect_end_of_line("after a table header")?;
                if array_of_tables {
                    Self::open_array_of_tables(&mut root, &path, header_line)?;
                    // A fresh element starts a fresh namespace: sub-tables
                    // declared under the previous `[[…]]` element may be
                    // declared again (TOML 1.0 `[[fruit]]`/`[fruit.physical]`).
                    let prefix = format!("{}.", path.join("."));
                    declared.retain(|d| !d.starts_with(&prefix));
                } else {
                    Self::open_table(&mut root, &path, header_line, &mut declared)?;
                }
                current = path;
            } else {
                let key_line = self.line;
                let key = self.parse_key()?;
                self.skip_spaces();
                self.expect(b'=', "expected `=` after the key")?;
                self.skip_spaces();
                let value = self.parse_value()?;
                self.expect_end_of_line("after the value")?;
                let table = Self::table_at(&mut root, &current, key_line)?;
                if table.contains(&key) {
                    return Err(TomlError::field(
                        key_line,
                        join(&current, &key),
                        "duplicate key".to_string(),
                    ));
                }
                table.entries.push((key, value));
            }
        }
        Ok(root)
    }

    // ---- table navigation ---------------------------------------------

    /// Descends `root` along `path`, entering the last element of any
    /// array-of-tables on the way.
    fn table_at<'t>(
        root: &'t mut Table,
        path: &[String],
        line: usize,
    ) -> Result<&'t mut Table, TomlError> {
        let mut table = root;
        for (i, seg) in path.iter().enumerate() {
            if !table.contains(seg) {
                let mut sub = Table::new();
                sub.line = line;
                table.insert(seg.clone(), Value::table(sub));
            }
            let joined = path[..=i].join(".");
            let value = table.get_mut(seg).expect("just inserted");
            table = match &mut value.kind {
                Kind::Table(t) => t,
                Kind::Array(items) => match items.last_mut().map(|v| &mut v.kind) {
                    Some(Kind::Table(t)) => t,
                    _ => {
                        return Err(TomlError::field(
                            line,
                            joined,
                            "cannot extend a plain array as a table",
                        ))
                    }
                },
                _ => {
                    return Err(TomlError::field(
                        line,
                        joined,
                        "key already holds a non-table value",
                    ))
                }
            };
        }
        Ok(table)
    }

    fn open_table(
        root: &mut Table,
        path: &[String],
        line: usize,
        declared: &mut DeclaredSet,
    ) -> Result<(), TomlError> {
        let joined = path.join(".");
        if !declared.insert(joined.clone()) {
            return Err(TomlError::field(line, joined, "table defined twice"));
        }
        let (parents, last) = path.split_at(path.len() - 1);
        let parent = Self::table_at(root, parents, line)?;
        let last = &last[0];
        match parent.get(last).map(|v| &v.kind) {
            None => {
                let mut sub = Table::new();
                sub.line = line;
                parent.insert(last.clone(), Value::table(sub));
                Ok(())
            }
            // Implicitly created by a deeper header earlier; adopt it.
            Some(Kind::Table(_)) => Ok(()),
            Some(Kind::Array(_)) => Err(TomlError::field(
                line,
                joined,
                "already defined as an array of tables (use `[[…]]`)",
            )),
            Some(_) => Err(TomlError::field(
                line,
                joined,
                "key already holds a non-table value",
            )),
        }
    }

    fn open_array_of_tables(
        root: &mut Table,
        path: &[String],
        line: usize,
    ) -> Result<(), TomlError> {
        let joined = path.join(".");
        let (parents, last) = path.split_at(path.len() - 1);
        let parent = Self::table_at(root, parents, line)?;
        let last = &last[0];
        let mut element = Table::new();
        element.line = line;
        match parent.get_mut(last).map(|v| &mut v.kind) {
            None => {
                let mut v = Value::array(vec![Value::table(element)]);
                v.line = line;
                parent.insert(last.clone(), v);
                Ok(())
            }
            Some(Kind::Array(items)) => {
                if !items.iter().all(|v| matches!(v.kind, Kind::Table(_))) {
                    return Err(TomlError::field(
                        line,
                        joined,
                        "cannot append a table to a plain array",
                    ));
                }
                items.push(Value::table(element));
                Ok(())
            }
            Some(_) => Err(TomlError::field(
                line,
                joined,
                "key already holds a non-array value",
            )),
        }
    }

    // ---- keys ----------------------------------------------------------

    fn parse_key_path(&mut self, terminator: u8) -> Result<Vec<String>, TomlError> {
        let mut path = Vec::new();
        loop {
            self.skip_spaces();
            path.push(self.parse_key()?);
            self.skip_spaces();
            match self.peek() {
                Some(b'.') => {
                    self.bump();
                }
                Some(c) if c == terminator => return Ok(path),
                _ => {
                    return Err(self.syntax(format!(
                        "expected `.` or `{}` in the table header",
                        terminator as char
                    )))
                }
            }
        }
    }

    fn parse_key(&mut self) -> Result<String, TomlError> {
        match self.peek() {
            Some(b'"') => self.parse_basic_string(),
            Some(b'\'') => self.parse_literal_string(),
            Some(c) if is_bare_key_byte(c) => {
                let start = self.pos;
                while self.peek().is_some_and(is_bare_key_byte) {
                    self.bump();
                }
                Ok(self.src[start..self.pos].to_string())
            }
            Some(c) => Err(self.syntax(format!("expected a key, found `{}`", c as char))),
            None => Err(self.syntax("expected a key, found end of input")),
        }
    }

    // ---- values --------------------------------------------------------

    fn parse_value(&mut self) -> Result<Value, TomlError> {
        let line = self.line;
        let mut value = match self.peek() {
            Some(b'"') => {
                if self.bytes[self.pos..].starts_with(b"\"\"\"") {
                    return Err(self.syntax("multi-line strings are not supported"));
                }
                Value::from(Kind::Str(self.parse_basic_string()?))
            }
            Some(b'\'') => Value::from(Kind::Str(self.parse_literal_string()?)),
            Some(b'[') => self.parse_array()?,
            Some(b'{') => self.parse_inline_table()?,
            Some(b't') | Some(b'f') if self.at_word("true") || self.at_word("false") => {
                let b = self.at_word("true");
                self.pos += if b { 4 } else { 5 };
                Value::bool(b)
            }
            Some(c) if c == b'+' || c == b'-' || c.is_ascii_digit() => self.parse_number()?,
            Some(c) => {
                return Err(self.syntax(format!(
                    "expected a value, found `{}` (datetimes, `inf` and `nan` are not supported)",
                    c as char
                )))
            }
            None => return Err(self.syntax("expected a value, found end of input")),
        };
        value.line = line;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Value, TomlError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || matches!(c, b'+' | b'-' | b'.' | b'_'))
        {
            // Signs are only valid at the start or right after an exponent
            // marker; stop otherwise so `1-2` isn't swallowed whole.
            if matches!(self.peek(), Some(b'+') | Some(b'-')) && self.pos != start {
                let prev = self.bytes[self.pos - 1];
                if prev != b'e' && prev != b'E' {
                    break;
                }
            }
            self.bump();
        }
        let raw = &self.src[start..self.pos];
        if raw.starts_with("0x") || raw.starts_with("0o") || raw.starts_with("0b") {
            return Err(self.syntax(format!(
                "non-decimal integer `{raw}` is not supported (use decimal)"
            )));
        }
        if raw.contains("__") || raw.starts_with('_') || raw.ends_with('_') {
            return Err(self.syntax(format!("malformed number `{raw}`")));
        }
        let clean: String = raw.chars().filter(|&c| c != '_').collect();
        let is_float = clean.contains(['.', 'e', 'E']);
        if is_float {
            match clean.parse::<f64>() {
                Ok(f) if f.is_finite() => Ok(Value::float(f)),
                _ => Err(self.syntax(format!("malformed float `{raw}`"))),
            }
        } else {
            clean
                .parse::<i128>()
                .map(Value::int)
                .map_err(|_| self.syntax(format!("malformed integer `{raw}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, TomlError> {
        self.expect(b'[', "expected `[`")?;
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            match self.peek() {
                Some(b']') => {
                    self.bump();
                    return Ok(Value::array(items));
                }
                None => return Err(self.syntax("unterminated array")),
                _ => {}
            }
            items.push(self.parse_value()?);
            self.skip_trivia();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {}
                _ => return Err(self.syntax("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, TomlError> {
        let line = self.line;
        self.expect(b'{', "expected `{`")?;
        let mut table = Table::new();
        table.line = line;
        loop {
            self.skip_spaces();
            match self.peek() {
                Some(b'}') => {
                    self.bump();
                    return Ok(Value::table(table));
                }
                Some(b'\n') => {
                    return Err(TomlError::syntax(
                        line,
                        "inline tables must stay on one line",
                    ))
                }
                None => return Err(self.syntax("unterminated inline table")),
                _ => {}
            }
            let key = self.parse_key()?;
            self.skip_spaces();
            self.expect(b'=', "expected `=` in inline table")?;
            self.skip_spaces();
            let value = self.parse_value()?;
            if table.contains(&key) {
                return Err(TomlError::field(line, key, "duplicate key in inline table"));
            }
            table.entries.push((key, value));
            self.skip_spaces();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {}
                _ => return Err(self.syntax("expected `,` or `}` in inline table")),
            }
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, TomlError> {
        self.expect(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let rest = &self.src[self.pos..];
            let Some(c) = rest.chars().next() else {
                return Err(self.syntax("unterminated string"));
            };
            match c {
                '"' => {
                    self.bump();
                    return Ok(out);
                }
                '\n' => return Err(self.syntax("unterminated string (newline in string)")),
                '\\' => {
                    self.bump();
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.syntax("unterminated escape"))?;
                    self.bump();
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' | b'U' => {
                            let len = if esc == b'u' { 4 } else { 8 };
                            let hex = self
                                .src
                                .get(self.pos..self.pos + len)
                                .ok_or_else(|| self.syntax("truncated unicode escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.syntax("malformed unicode escape"))?;
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.syntax("invalid unicode scalar in escape"))?;
                            out.push(ch);
                            self.pos += len;
                        }
                        _ => return Err(self.syntax(format!("unknown escape `\\{}`", esc as char))),
                    }
                }
                _ => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_literal_string(&mut self) -> Result<String, TomlError> {
        self.expect(b'\'', "expected `'`")?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'\'') => {
                    let s = self.src[start..self.pos].to_string();
                    self.bump();
                    return Ok(s);
                }
                Some(b'\n') | None => return Err(self.syntax("unterminated literal string")),
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- low-level cursor ---------------------------------------------

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) {
        if self.peek() == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn at_word(&self, word: &str) -> bool {
        self.bytes[self.pos..].starts_with(word.as_bytes())
            && !self
                .bytes
                .get(self.pos + word.len())
                .copied()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
    }

    fn expect(&mut self, c: u8, msg: &str) -> Result<(), TomlError> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.syntax(match self.peek() {
                Some(found) => format!("{msg}, found `{}`", found as char),
                None => format!("{msg}, found end of input"),
            }))
        }
    }

    /// Consumes spaces and an optional comment, then requires a newline or
    /// end of input.
    fn expect_end_of_line(&mut self, context: &str) -> Result<(), TomlError> {
        self.skip_spaces();
        if self.peek() == Some(b'#') {
            self.skip_comment();
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.syntax(format!(
                "expected end of line {context}, found `{}`",
                c as char
            ))),
        }
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\r')) {
            self.bump();
        }
    }

    /// Skips whitespace (including newlines) and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => self.bump(),
                Some(b'#') => self.skip_comment(),
                _ => return,
            }
        }
    }

    fn skip_comment(&mut self) {
        while self.peek().is_some_and(|c| c != b'\n') {
            self.bump();
        }
    }

    fn syntax(&self, msg: impl Into<String>) -> TomlError {
        TomlError::syntax(self.line, msg)
    }
}

fn is_bare_key_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-'
}

fn join(path: &[String], key: &str) -> String {
    crate::error::join_path(&path.join("."), key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'t>(t: &'t Table, key: &str) -> &'t Value {
        t.get(key).unwrap_or_else(|| panic!("missing key {key}"))
    }

    #[test]
    fn scalars_and_comments() {
        let t = parse(
            "# header comment\n\
             name = \"demo\" # trailing\n\
             count = 42\n\
             rate = -1.5e-3\n\
             on = true\n\
             off = false\n",
        )
        .unwrap();
        assert_eq!(get(&t, "name").as_str("").unwrap(), "demo");
        assert_eq!(get(&t, "count").as_int("").unwrap(), 42);
        assert_eq!(get(&t, "rate").as_f64("").unwrap(), -1.5e-3);
        assert!(get(&t, "on").as_bool("").unwrap());
        assert!(!get(&t, "off").as_bool("").unwrap());
    }

    #[test]
    fn line_numbers_are_recorded() {
        let t = parse("a = 1\n\nb = 2\n[sec]\nc = 3\n").unwrap();
        assert_eq!(get(&t, "a").line, 1);
        assert_eq!(get(&t, "b").line, 3);
        let sec = get(&t, "sec").as_table("sec").unwrap();
        assert_eq!(sec.line, 4);
        assert_eq!(get(sec, "c").line, 5);
    }

    #[test]
    fn nested_tables_and_dotted_headers() {
        let t = parse("[a.b]\nx = 1\n[a.c]\ny = 2\n[a]\nz = 3\n").unwrap();
        let a = get(&t, "a").as_table("a").unwrap();
        assert_eq!(
            get(get(a, "b").as_table("").unwrap(), "x")
                .as_int("")
                .unwrap(),
            1
        );
        assert_eq!(
            get(get(a, "c").as_table("").unwrap(), "y")
                .as_int("")
                .unwrap(),
            2
        );
        assert_eq!(get(a, "z").as_int("").unwrap(), 3);
    }

    #[test]
    fn arrays_nested_and_multiline() {
        let t = parse("pts = [\n  [0.0, 1.0], # one\n  [2.0, 3.0],\n]\nempty = []\n").unwrap();
        let pts = get(&t, "pts").as_array("pts").unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].as_f64_pair("pts").unwrap(), (2.0, 3.0));
        assert!(get(&t, "empty").as_array("").unwrap().is_empty());
    }

    #[test]
    fn array_of_tables() {
        let t = parse("[[jam]]\nkind = \"fixed\"\n[[jam]]\nkind = \"random\"\n").unwrap();
        let jams = get(&t, "jam").as_array("jam").unwrap();
        assert_eq!(jams.len(), 2);
        assert_eq!(
            get(jams[1].as_table("jam").unwrap(), "kind")
                .as_str("")
                .unwrap(),
            "random"
        );
    }

    #[test]
    fn sub_tables_redeclare_per_array_element() {
        // The TOML 1.0 spec's own array-of-tables example.
        let t = parse(
            "[[fruit]]\nname = \"apple\"\n[fruit.physical]\ncolor = \"red\"\n\
             [[fruit]]\nname = \"banana\"\n[fruit.physical]\ncolor = \"yellow\"\n",
        )
        .unwrap();
        let fruit = get(&t, "fruit").as_array("fruit").unwrap();
        assert_eq!(fruit.len(), 2);
        for (i, color) in ["red", "yellow"].iter().enumerate() {
            let phys = get(fruit[i].as_table("").unwrap(), "physical");
            assert_eq!(
                get(phys.as_table("").unwrap(), "color").as_str("").unwrap(),
                *color
            );
        }
        // Re-opening within the SAME element is still a duplicate.
        let e = err("[[fruit]]\n[fruit.physical]\nx = 1\n[fruit.physical]\ny = 2\n");
        assert!(e.message.contains("twice"), "{e}");
    }

    #[test]
    fn inline_tables() {
        let t = parse("p = { x = 1.5, y = -2.0 }\n").unwrap();
        let p = get(&t, "p").as_table("p").unwrap();
        assert_eq!(get(p, "x").as_f64("").unwrap(), 1.5);
        assert_eq!(get(p, "y").as_f64("").unwrap(), -2.0);
    }

    #[test]
    fn string_escapes_and_literals() {
        let t = parse("a = \"tab\\tnl\\nq\\\"u\\u0041\"\nb = 'c:\\raw'\n").unwrap();
        assert_eq!(get(&t, "a").as_str("").unwrap(), "tab\tnl\nq\"uA");
        assert_eq!(get(&t, "b").as_str("").unwrap(), "c:\\raw");
    }

    #[test]
    fn quoted_keys() {
        let t = parse("\"odd key\" = 1\n").unwrap();
        assert_eq!(get(&t, "odd key").as_int("").unwrap(), 1);
    }

    #[test]
    fn underscored_numbers() {
        let t = parse("big = 1_000_000\nf = 1_0.5\n").unwrap();
        assert_eq!(get(&t, "big").as_int("").unwrap(), 1_000_000);
        assert_eq!(get(&t, "f").as_f64("").unwrap(), 10.5);
    }

    #[test]
    fn u64_range_integers() {
        let t = parse(&format!("seed = {}\n", u64::MAX)).unwrap();
        assert_eq!(get(&t, "seed").as_u64("seed").unwrap(), u64::MAX);
    }

    // ---- error cases: every message carries the right line -------------

    fn err(src: &str) -> TomlError {
        parse(src).expect_err("expected parse failure")
    }

    #[test]
    fn duplicate_key_reports_line_and_path() {
        let e = err("[s]\na = 1\na = 2\n");
        assert_eq!(e.line, 3);
        assert_eq!(e.path, "s.a");
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn duplicate_table_reports_line() {
        let e = err("[s]\na = 1\n[s]\n");
        assert_eq!(e.line, 3);
        assert_eq!(e.path, "s");
        assert!(e.message.contains("twice"), "{e}");
    }

    #[test]
    fn garbage_after_value() {
        let e = err("a = 1 2\n");
        assert_eq!(e.line, 1);
        assert!(e.message.contains("end of line"), "{e}");
    }

    #[test]
    fn unterminated_string_line() {
        let e = err("a = 1\nb = \"oops\n");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unterminated"), "{e}");
    }

    #[test]
    fn unterminated_array() {
        let e = err("a = [1, 2\n");
        assert!(e.message.contains("array"), "{e}");
    }

    #[test]
    fn missing_equals() {
        let e = err("a 1\n");
        assert_eq!(e.line, 1);
        assert!(e.message.contains('='), "{e}");
    }

    #[test]
    fn malformed_number() {
        let e = err("a = 1.2.3\n");
        assert!(e.message.contains("malformed"), "{e}");
        let e = err("a = _1\n");
        assert!(e.message.contains("expected a value"), "{e}");
        let e = err("a = 1_\n");
        assert!(e.message.contains("malformed"), "{e}");
    }

    #[test]
    fn hex_and_inf_rejected() {
        assert!(err("a = 0xff\n").message.contains("not supported"));
        assert!(err("a = inf\n").message.contains("expected a value"));
    }

    #[test]
    fn multiline_string_rejected() {
        let e = err("a = \"\"\"x\"\"\"\n");
        assert!(e.message.contains("multi-line"), "{e}");
    }

    #[test]
    fn inline_table_must_stay_on_one_line() {
        let e = err("a = { x = 1,\n y = 2 }\n");
        assert_eq!(e.line, 1);
        assert!(e.message.contains("one line"), "{e}");
    }

    #[test]
    fn header_conflicts_with_value() {
        let e = err("a = 1\n[a]\n");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("non-table"), "{e}");
    }

    #[test]
    fn aot_conflicts_with_table() {
        let e = err("[a]\nx = 1\n[[a]]\n");
        assert_eq!(e.line, 3);
        assert!(e.message.contains("non-array"), "{e}");
    }
}
