//! Axis-aligned bounding boxes for deployments and spatial indexing.

use crate::point::Point;

/// An axis-aligned bounding box `[min_x, max_x] × [min_y, max_y]`.
///
/// # Examples
///
/// ```
/// use mca_geom::{BoundingBox, Point};
/// let bb = BoundingBox::from_points([Point::new(0.0, 1.0), Point::new(2.0, -1.0)]).unwrap();
/// assert!(bb.contains(Point::new(1.0, 0.0)));
/// assert_eq!(bb.width(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    min: Point,
    max: Point,
}

impl BoundingBox {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        BoundingBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The square `[0, side] × [0, side]`.
    pub fn square(side: f64) -> Self {
        BoundingBox::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Smallest box containing all `points`, or `None` if empty.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox::new(first, first);
        for p in it {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Grows the box to include `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Returns a copy grown by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Self {
        BoundingBox {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Horizontal extent.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Vertical extent.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the box.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point of the box.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside the box (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The nearest point of the box to `p` (identity for interior points).
    /// Mobility models use this to keep moving nodes inside the deployment
    /// area.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Squared distance from `p` to the nearest point of the box
    /// (0 for interior points). The interference engine classifies grid
    /// cells as near/far by this against a squared cutoff radius.
    #[inline]
    pub fn dist_sq_to(&self, p: Point) -> f64 {
        self.clamp(p).dist_sq(p)
    }

    /// Squared distance from `p` to the farthest point of the box (one of
    /// the four corners). Together with [`BoundingBox::dist_sq_to`] this
    /// brackets the distance from `p` to *any* point inside the box —
    /// the interval the batched SINR resolver's far-field error bound is
    /// built from.
    #[inline]
    pub fn max_dist_sq_to(&self, p: Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }

    /// Squared distance between the nearest points of this box and `other`
    /// (0 when they intersect). For any `p` in `other`,
    /// `self.dist_sq_to(p) >= self.dist_sq_to_box(other)` — the monotonicity
    /// the sharded resolver's per-task halo classification relies on: a
    /// block farther than a threshold from a whole listener bounding box is
    /// farther than that threshold from every listener in it.
    #[inline]
    pub fn dist_sq_to_box(&self, other: &BoundingBox) -> f64 {
        let dx = (other.min.x - self.max.x)
            .max(self.min.x - other.max.x)
            .max(0.0);
        let dy = (other.min.y - self.max.y)
            .max(self.min.y - other.max.y)
            .max(0.0);
        dx * dx + dy * dy
    }

    /// Whether `other` intersects this box (boundary inclusive).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn corners_normalized() {
        let bb = BoundingBox::new(Point::new(2.0, -1.0), Point::new(-3.0, 4.0));
        assert_eq!(bb.min(), Point::new(-3.0, -1.0));
        assert_eq!(bb.max(), Point::new(2.0, 4.0));
        assert_eq!(bb.width(), 5.0);
        assert_eq!(bb.height(), 5.0);
        assert_eq!(bb.area(), 25.0);
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 1.0),
            Point::new(-2.0, 3.0),
            Point::new(0.5, -4.0),
        ];
        let bb = BoundingBox::from_points(pts).unwrap();
        for p in pts {
            assert!(bb.contains(p));
        }
    }

    #[test]
    fn square_and_center() {
        let bb = BoundingBox::square(10.0);
        assert_eq!(bb.center(), Point::new(5.0, 5.0));
        assert!(bb.contains(Point::new(0.0, 0.0)));
        assert!(bb.contains(Point::new(10.0, 10.0)));
        assert!(!bb.contains(Point::new(10.0001, 5.0)));
    }

    #[test]
    fn inflate_contains_boundary_neighborhood() {
        let bb = BoundingBox::square(1.0).inflated(0.5);
        assert!(bb.contains(Point::new(-0.5, -0.5)));
        assert!(bb.contains(Point::new(1.5, 1.5)));
    }

    #[test]
    fn clamp_projects_onto_box() {
        let bb = BoundingBox::square(2.0);
        assert_eq!(bb.clamp(Point::new(1.0, 1.5)), Point::new(1.0, 1.5));
        assert_eq!(bb.clamp(Point::new(-1.0, 3.0)), Point::new(0.0, 2.0));
        assert_eq!(bb.clamp(Point::new(5.0, -2.0)), Point::new(2.0, 0.0));
        let clamped = bb.clamp(Point::new(9.0, 9.0));
        assert!(bb.contains(clamped));
    }

    #[test]
    fn box_to_box_distance() {
        let a = BoundingBox::square(1.0);
        let b = BoundingBox::new(Point::new(4.0, 0.0), Point::new(5.0, 1.0));
        assert_eq!(a.dist_sq_to_box(&b), 9.0);
        assert_eq!(b.dist_sq_to_box(&a), 9.0);
        // Overlapping and touching boxes are at distance 0.
        let c = BoundingBox::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        assert_eq!(a.dist_sq_to_box(&c), 0.0);
        let d = BoundingBox::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert_eq!(a.dist_sq_to_box(&d), 0.0);
        // Diagonal separation combines both axes.
        let e = BoundingBox::new(Point::new(4.0, 5.0), Point::new(6.0, 7.0));
        assert_eq!(a.dist_sq_to_box(&e), 9.0 + 16.0);
        // Monotonicity vs point distance: points inside b are no closer
        // than the box-to-box distance.
        for p in [Point::new(4.0, 0.5), Point::new(5.0, 1.0)] {
            assert!(a.dist_sq_to(p) >= a.dist_sq_to_box(&b));
        }
    }

    #[test]
    fn intersection_cases() {
        let a = BoundingBox::square(1.0);
        let b = BoundingBox::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        let c = BoundingBox::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching boundary counts as intersecting.
        let d = BoundingBox::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&d));
    }

    proptest! {
        #[test]
        fn expand_is_monotone(xs in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 1..50)) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let bb = BoundingBox::from_points(pts.iter().copied()).unwrap();
            for p in &pts {
                prop_assert!(bb.contains(*p));
            }
            prop_assert!(bb.area() >= 0.0);
        }
    }
}
