//! Uniform spatial hash grid for fast range queries.
//!
//! Protocol bookkeeping (neighbor discovery, density checks, validators) and
//! the interference engine need "all points within distance `r` of `q`"
//! queries. The [`SpatialGrid`] buckets points into square cells of side
//! `cell`, so a radius-`r` query touches `O((r/cell + 2)²)` cells.

use crate::bbox::BoundingBox;
use crate::point::Point;

/// A uniform grid index over a fixed set of points.
///
/// Build once with [`SpatialGrid::build`]; query with
/// [`SpatialGrid::within`] or [`SpatialGrid::for_each_within`]. Indices
/// returned by queries refer to the slice the grid was built from.
///
/// # Examples
///
/// ```
/// use mca_geom::{Point, SpatialGrid};
/// let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(5.0, 5.0)];
/// let grid = SpatialGrid::build(&pts, 1.0);
/// let mut near = grid.within(&pts, Point::new(0.0, 0.0), 1.5);
/// near.sort_unstable();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    origin: Point,
    nx: usize,
    ny: usize,
    /// CSR-style storage: `starts[c]..starts[c+1]` indexes into `items` for cell `c`.
    starts: Vec<u32>,
    items: Vec<u32>,
    /// Counting-sort cursor scratch, kept so [`SpatialGrid::rebuild`] can
    /// re-index moving points with zero steady-state allocation.
    cursor: Vec<u32>,
}

/// Index equality: two grids are equal iff they index the same points the
/// same way (scratch buffers excluded), so a rebuilt grid can be asserted
/// bit-identical to a freshly built one.
impl PartialEq for SpatialGrid {
    fn eq(&self, other: &Self) -> bool {
        self.cell == other.cell
            && self.origin == other.origin
            && self.nx == other.nx
            && self.ny == other.ny
            && self.starts == other.starts
            && self.items == other.items
    }
}

impl SpatialGrid {
    /// Builds a grid over `points` with cell side `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive and finite, or if any point
    /// has a non-finite coordinate.
    pub fn build(points: &[Point], cell: f64) -> Self {
        let mut grid = SpatialGrid {
            cell,
            origin: Point::ORIGIN,
            nx: 1,
            ny: 1,
            starts: Vec::new(),
            items: Vec::new(),
            cursor: Vec::new(),
        };
        grid.rebuild(points, cell);
        grid
    }

    /// Re-indexes the grid over `points`, reusing the existing CSR buffers —
    /// the mobility-path counterpart of [`SpatialGrid::build`]. The result
    /// is bit-identical to `SpatialGrid::build(points, cell)`; the only
    /// difference is that steady-state re-indexing (same point count, same
    /// extent class) allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SpatialGrid::build`].
    pub fn rebuild(&mut self, points: &[Point], cell: f64) {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell side must be positive and finite, got {cell}"
        );
        for (i, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point {i} has non-finite coordinates");
        }
        let bb = BoundingBox::from_points(points.iter().copied())
            .unwrap_or_else(|| BoundingBox::new(Point::ORIGIN, Point::ORIGIN));
        let origin = bb.min();
        let nx = (bb.width() / cell).floor() as usize + 1;
        let ny = (bb.height() / cell).floor() as usize + 1;
        let ncells = nx * ny;
        self.cell = cell;
        self.origin = origin;
        self.nx = nx;
        self.ny = ny;

        // Counting sort into CSR layout, in the reused buffers.
        self.starts.clear();
        self.starts.resize(ncells + 1, 0);
        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - origin.x) / cell) as usize).min(nx - 1);
            let cy = (((p.y - origin.y) / cell) as usize).min(ny - 1);
            cy * nx + cx
        };
        for p in points {
            self.starts[cell_of(p) + 1] += 1;
        }
        for i in 0..ncells {
            self.starts[i + 1] += self.starts[i];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts);
        self.items.clear();
        self.items.resize(points.len(), 0);
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            self.items[self.cursor[c] as usize] = i as u32;
            self.cursor[c] += 1;
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the grid indexes no points.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Cell side length the grid was built with.
    pub fn cell_side(&self) -> f64 {
        self.cell
    }

    /// Grid dimensions `(nx, ny)`: columns × rows of cells.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Calls `f(i)` for every point index `i` with `dist(points[i], q) <= r`.
    ///
    /// `points` must be the same slice the grid was built from (same length
    /// and order); this is debug-asserted.
    pub fn for_each_within<F: FnMut(usize)>(&self, points: &[Point], q: Point, r: f64, mut f: F) {
        debug_assert_eq!(points.len(), self.items.len());
        if self.items.is_empty() || !r.is_finite() || r < 0.0 {
            return;
        }
        let r_sq = r * r;
        let cx0 = ((q.x - r - self.origin.x) / self.cell).floor().max(0.0) as usize;
        let cy0 = ((q.y - r - self.origin.y) / self.cell).floor().max(0.0) as usize;
        let cx1 =
            (((q.x + r - self.origin.x) / self.cell).floor().max(0.0) as usize).min(self.nx - 1);
        let cy1 =
            (((q.y + r - self.origin.y) / self.cell).floor().max(0.0) as usize).min(self.ny - 1);
        if cx0 > cx1 || cy0 > cy1 {
            return;
        }
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let c = cy * self.nx + cx;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                for &i in &self.items[lo..hi] {
                    if points[i as usize].dist_sq(q) <= r_sq {
                        f(i as usize);
                    }
                }
            }
        }
    }

    /// Collects the indices of all points within distance `r` of `q`.
    pub fn within(&self, points: &[Point], q: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(points, q, r, |i| out.push(i));
        out
    }

    /// Counts the points within distance `r` of `q`.
    pub fn count_within(&self, points: &[Point], q: Point, r: f64) -> usize {
        let mut n = 0;
        self.for_each_within(points, q, r, |_| n += 1);
        n
    }

    /// Index of the nearest point to `q`, or `None` if the grid is empty.
    ///
    /// Searches rings of cells outward from `q`, so typical cost is a few
    /// cells rather than the whole set.
    pub fn nearest(&self, points: &[Point], q: Point) -> Option<usize> {
        if self.items.is_empty() {
            return None;
        }
        // Expanding-radius search; each iteration doubles the radius.
        let mut r = self.cell;
        let max_extent = {
            let w = self.nx as f64 * self.cell;
            let h = self.ny as f64 * self.cell;
            // q may lie outside the grid bounding box; account for its offset.
            let dx = (self.origin.x - q.x)
                .abs()
                .max((q.x - (self.origin.x + w)).abs());
            let dy = (self.origin.y - q.y)
                .abs()
                .max((q.y - (self.origin.y + h)).abs());
            (w + h + dx + dy) * 2.0 + self.cell
        };
        loop {
            let mut best: Option<(usize, f64)> = None;
            self.for_each_within(points, q, r, |i| {
                let d = points[i].dist_sq(q);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            });
            if let Some((i, _)) = best {
                return Some(i);
            }
            if r > max_extent {
                // Fall back to a linear scan (should be unreachable, kept for safety).
                return (0..points.len()).min_by(|&a, &b| {
                    points[a]
                        .dist_sq(q)
                        .partial_cmp(&points[b].dist_sq(q))
                        .unwrap()
                });
            }
            r *= 2.0;
        }
    }

    /// Number of occupied (non-empty) cells.
    pub fn occupied_cells(&self) -> usize {
        let mut n = 0;
        for c in 0..self.nx * self.ny {
            if self.starts[c + 1] > self.starts[c] {
                n += 1;
            }
        }
        n
    }

    /// Calls `f` for every *occupied* cell, in row-major (deterministic)
    /// order. Each [`GridCell`] carries the cell's rectangle and the indices
    /// of the points bucketed into it (in input order). Every indexed point
    /// lies inside its cell's rectangle (boundary inclusive), so
    /// `rect.dist_sq_to(q)` / `rect.max_dist_sq_to(q)` bracket the distance
    /// from `q` to every point of the cell — the basis of cell-granular
    /// far-field interference aggregation.
    pub fn for_each_cell<F: FnMut(GridCell<'_>)>(&self, mut f: F) {
        for cy in 0..self.ny {
            for cx in 0..self.nx {
                let c = cy * self.nx + cx;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                if lo == hi {
                    continue;
                }
                let min = Point::new(
                    self.origin.x + cx as f64 * self.cell,
                    self.origin.y + cy as f64 * self.cell,
                );
                let rect = BoundingBox::new(min, Point::new(min.x + self.cell, min.y + self.cell));
                f(GridCell {
                    rect,
                    items: &self.items[lo..hi],
                    cx,
                    cy,
                });
            }
        }
    }

    /// Maximum number of points in any disk of radius `r`, probing disks
    /// centered at every indexed point.
    ///
    /// This matches the paper's notion of *density* of a dominating set (max
    /// dominators in an `r`-ball); probing at the points themselves gives a
    /// 1-to-4 approximation of the continuum maximum and is the quantity our
    /// validators bound.
    pub fn max_ball_occupancy(&self, points: &[Point], r: f64) -> usize {
        points
            .iter()
            .map(|&p| self.count_within(points, p, r))
            .max()
            .unwrap_or(0)
    }
}

/// One occupied cell of a [`SpatialGrid`], as visited by
/// [`SpatialGrid::for_each_cell`].
#[derive(Debug, Clone, Copy)]
pub struct GridCell<'a> {
    /// The cell's rectangle; every point of the cell lies inside it
    /// (boundary inclusive).
    pub rect: BoundingBox,
    /// Indices (into the slice the grid was built from) of the points
    /// bucketed into this cell, in input order.
    pub items: &'a [u32],
    /// Column index of the cell in the grid (0-based).
    pub cx: usize,
    /// Row index of the cell in the grid (0-based).
    pub cy: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn brute_within(points: &[Point], q: Point, r: f64) -> Vec<usize> {
        let r_sq = r * r;
        (0..points.len())
            .filter(|&i| points[i].dist_sq(q) <= r_sq)
            .collect()
    }

    #[test]
    fn empty_grid() {
        let grid = SpatialGrid::build(&[], 1.0);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        assert_eq!(grid.within(&[], Point::ORIGIN, 10.0), Vec::<usize>::new());
        assert_eq!(grid.nearest(&[], Point::ORIGIN), None);
    }

    #[test]
    fn single_point() {
        let pts = [Point::new(3.0, 3.0)];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.within(&pts, Point::new(3.0, 3.0), 0.0), vec![0]);
        assert_eq!(grid.nearest(&pts, Point::new(100.0, 100.0)), Some(0));
    }

    #[test]
    #[should_panic(expected = "cell side must be positive")]
    fn zero_cell_panics() {
        SpatialGrid::build(&[Point::ORIGIN], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_point_panics() {
        SpatialGrid::build(&[Point::new(f64::NAN, 0.0)], 1.0);
    }

    #[test]
    fn matches_brute_force_on_random_sets() {
        let mut rng = SmallRng::seed_from_u64(7);
        for trial in 0..20 {
            let n = 50 + trial * 13;
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)))
                .collect();
            let cell = rng.gen_range(0.5..5.0);
            let grid = SpatialGrid::build(&pts, cell);
            for _ in 0..10 {
                let q = Point::new(rng.gen_range(-5.0..55.0), rng.gen_range(-5.0..55.0));
                let r = rng.gen_range(0.0..20.0);
                let mut got = grid.within(&pts, q, r);
                got.sort_unstable();
                assert_eq!(got, brute_within(&pts, q, r));
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(11);
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..30.0)))
            .collect();
        let grid = SpatialGrid::build(&pts, 2.0);
        for _ in 0..50 {
            let q = Point::new(rng.gen_range(-10.0..40.0), rng.gen_range(-10.0..40.0));
            let got = grid.nearest(&pts, q).unwrap();
            let best = (0..pts.len())
                .min_by(|&a, &b| pts[a].dist_sq(q).partial_cmp(&pts[b].dist_sq(q)).unwrap())
                .unwrap();
            assert!(
                (pts[got].dist(q) - pts[best].dist(q)).abs() < 1e-9,
                "nearest mismatch: got {got}, want {best}"
            );
        }
    }

    #[test]
    fn max_ball_occupancy_simple() {
        // Three colinear points spaced 1 apart: a radius-1 ball at the middle
        // point holds all three.
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.max_ball_occupancy(&pts, 1.0), 3);
        assert_eq!(grid.max_ball_occupancy(&pts, 0.5), 1);
    }

    #[test]
    fn cells_partition_points_and_contain_them() {
        let mut rng = SmallRng::seed_from_u64(23);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0)))
            .collect();
        let grid = SpatialGrid::build(&pts, 3.0);
        let mut seen = vec![false; pts.len()];
        let mut cells = 0;
        grid.for_each_cell(|cell| {
            cells += 1;
            assert!(!cell.items.is_empty(), "only occupied cells are visited");
            for &i in cell.items {
                assert!(!seen[i as usize], "point {i} appears in two cells");
                seen[i as usize] = true;
                let p = pts[i as usize];
                assert!(cell.rect.contains(p), "point {i} outside its cell rect");
                assert_eq!(cell.rect.dist_sq_to(p), 0.0);
                assert!(cell.rect.max_dist_sq_to(p) >= 0.0);
            }
            // items are in input order within the cell
            for w in cell.items.windows(2) {
                assert!(w[0] < w[1], "cell items out of input order");
            }
        });
        assert!(seen.iter().all(|&s| s), "every point visited exactly once");
        assert_eq!(cells, grid.occupied_cells());
    }

    #[test]
    fn empty_grid_has_no_cells() {
        let grid = SpatialGrid::build(&[], 1.0);
        assert_eq!(grid.occupied_cells(), 0);
        grid.for_each_cell(|_| panic!("no cells expected"));
    }

    #[test]
    fn rebuild_is_bit_identical_to_fresh_build() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut pts: Vec<Point> = (0..250)
            .map(|_| Point::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0)))
            .collect();
        let mut reused = SpatialGrid::build(&pts, 2.5);
        // Simulate mobility: jitter every point, re-index, compare against a
        // from-scratch build each step.
        for step in 0..20 {
            for p in pts.iter_mut() {
                *p = Point::new(
                    p.x + rng.gen_range(-0.5..0.5),
                    p.y + rng.gen_range(-0.5..0.5),
                );
            }
            reused.rebuild(&pts, 2.5);
            let fresh = SpatialGrid::build(&pts, 2.5);
            assert!(
                reused == fresh,
                "rebuild diverged from build at step {step}"
            );
            // Queries agree too (belt and braces over the index equality).
            let q = Point::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0));
            assert_eq!(
                {
                    let mut v = reused.within(&pts, q, 5.0);
                    v.sort_unstable();
                    v
                },
                brute_within(&pts, q, 5.0)
            );
        }
    }

    #[test]
    fn rebuild_handles_size_and_cell_changes() {
        let mut grid = SpatialGrid::build(
            &[Point::ORIGIN, Point::new(3.0, 3.0), Point::new(9.0, 1.0)],
            1.0,
        );
        // Shrink.
        let small = [Point::new(1.0, 1.0)];
        grid.rebuild(&small, 2.0);
        assert_eq!(grid, SpatialGrid::build(&small, 2.0));
        assert_eq!(grid.len(), 1);
        // Grow with a different cell side.
        let big: Vec<Point> = (0..40).map(|i| Point::new(i as f64 * 0.7, 2.0)).collect();
        grid.rebuild(&big, 0.9);
        assert_eq!(grid, SpatialGrid::build(&big, 0.9));
        // Empty.
        grid.rebuild(&[], 1.0);
        assert!(grid.is_empty());
        assert_eq!(grid, SpatialGrid::build(&[], 1.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn rebuild_equals_build(
            raw in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 0..120),
            raw2 in proptest::collection::vec((0.0..80.0f64, 0.0..80.0f64), 0..120),
            cell in 0.3..10.0f64,
            cell2 in 0.3..10.0f64,
        ) {
            let pts: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let pts2: Vec<Point> = raw2.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mut grid = SpatialGrid::build(&pts, cell);
            grid.rebuild(&pts2, cell2);
            prop_assert!(grid == SpatialGrid::build(&pts2, cell2));
        }

        #[test]
        fn grid_equals_brute(
            raw in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..120),
            qx in -10.0..110.0f64,
            qy in -10.0..110.0f64,
            r in 0.0..60.0f64,
            cell in 0.3..10.0f64,
        ) {
            let pts: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let grid = SpatialGrid::build(&pts, cell);
            let q = Point::new(qx, qy);
            let mut got = grid.within(&pts, q, r);
            got.sort_unstable();
            prop_assert_eq!(got, brute_within(&pts, q, r));
        }
    }
}
