//! # `mca-geom` — geometry substrate for the multichannel SINR reproduction
//!
//! Planar geometry for simulating wireless ad hoc networks in the SINR model
//! per Halldórsson–Wang–Yu, *Leveraging Multiple Channels in Ad Hoc Networks*
//! (PODC 2015): node positions ([`Point`]), deployment workload generators
//! ([`Deployment`]), a spatial hash index for range queries
//! ([`SpatialGrid`]), and the communication graph `G(V,E)` with its
//! parameters `Δ` (max degree) and `D` (diameter) ([`CommGraph`]).
//!
//! The communication graph is an *analysis* artifact: protocols in the
//! simulation never read it (nodes know nothing about topology); experiment
//! harnesses use it to compute the quantities the paper's bounds are stated
//! in.
//!
//! # Examples
//!
//! ```
//! use mca_geom::{CommGraph, Deployment};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let deploy = Deployment::uniform(200, 30.0, &mut rng);
//! let graph = CommGraph::build(deploy.points(), 4.0);
//! println!("Δ = {}, D = {}", graph.max_degree(), graph.diameter_approx());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod deploy;
mod graph;
mod grid;
mod point;

pub use bbox::BoundingBox;
pub use deploy::Deployment;
pub use graph::CommGraph;
pub use grid::{GridCell, SpatialGrid};
pub use point::Point;
