//! Deployment (workload) generators.
//!
//! Every experiment in the paper's reproduction runs over a node placement.
//! The generators here cover the standard sensor-network workloads: uniform
//! random deployments, perturbed grids, clustered ("hotspot") placements,
//! lines and corridors (to sweep the diameter `D`), and the paper's
//! *exponential chain* lower-bound instance (§1, "Lower Bounds"), where node
//! `i` sits at position `2^i` on the real line.

use crate::bbox::BoundingBox;
use crate::point::Point;
use rand::Rng;

/// A named node placement, the input workload of every experiment.
///
/// # Examples
///
/// ```
/// use mca_geom::Deployment;
/// use rand::{rngs::SmallRng, SeedableRng};
/// let mut rng = SmallRng::seed_from_u64(42);
/// let d = Deployment::uniform(100, 50.0, &mut rng);
/// assert_eq!(d.len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    name: String,
    points: Vec<Point>,
}

impl Deployment {
    /// Wraps an explicit list of positions.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is non-finite.
    pub fn from_points(name: impl Into<String>, points: Vec<Point>) -> Self {
        for (i, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point {i} has non-finite coordinates");
        }
        Deployment {
            name: name.into(),
            points,
        }
    }

    /// `n` points i.i.d. uniform over the square `[0, side]²`.
    pub fn uniform<R: Rng + ?Sized>(n: usize, side: f64, rng: &mut R) -> Self {
        assert!(side > 0.0, "side must be positive");
        let points = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect();
        Deployment::from_points(format!("uniform(n={n},side={side})"), points)
    }

    /// Uniform deployment with a target average *degree*: the square side is
    /// chosen so a disk of radius `r` holds `target_degree` points in
    /// expectation. Useful for sweeping `Δ` at fixed `n`.
    pub fn uniform_with_degree<R: Rng + ?Sized>(
        n: usize,
        r: f64,
        target_degree: f64,
        rng: &mut R,
    ) -> Self {
        assert!(target_degree > 0.0 && r > 0.0);
        // E[deg] = n * pi r^2 / side^2  =>  side = r * sqrt(n * pi / target).
        let side = r * (n as f64 * std::f64::consts::PI / target_degree).sqrt();
        let mut d = Deployment::uniform(n, side, rng);
        d.name = format!("uniform_deg(n={n},deg={target_degree})");
        d
    }

    /// `n` points i.i.d. uniform over the disk of `radius` centered at the
    /// origin (by the `√u` radial transform). A disk of radius `≤ R_ε/2`
    /// is the canonical *single-hop* instance: every pair is in mutual
    /// range, so `Δ = n − 1`.
    pub fn disk<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        let points = (0..n)
            .map(|_| {
                let r = radius * rng.gen_range(0.0f64..1.0).sqrt();
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                Point::new(r * theta.cos(), r * theta.sin())
            })
            .collect();
        Deployment::from_points(format!("disk(n={n},radius={radius})"), points)
    }

    /// A `nx × ny` grid with spacing `step`, optionally jittered by a uniform
    /// offset in `[-jitter, jitter]²` per node.
    pub fn grid<R: Rng + ?Sized>(
        nx: usize,
        ny: usize,
        step: f64,
        jitter: f64,
        rng: &mut R,
    ) -> Self {
        assert!(step > 0.0 && jitter >= 0.0);
        let mut points = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                let jx = if jitter > 0.0 {
                    rng.gen_range(-jitter..=jitter)
                } else {
                    0.0
                };
                let jy = if jitter > 0.0 {
                    rng.gen_range(-jitter..=jitter)
                } else {
                    0.0
                };
                points.push(Point::new(ix as f64 * step + jx, iy as f64 * step + jy));
            }
        }
        Deployment::from_points(format!("grid({nx}x{ny},step={step})"), points)
    }

    /// `k` Gaussian clusters of `per_cluster` points each; centers uniform in
    /// `[0, side]²`, points offset by `N(0, sigma²)` per coordinate.
    ///
    /// Models the "hotspot" sensor placements that stress intra-cluster
    /// contention (the `Δ/F` term).
    pub fn clustered<R: Rng + ?Sized>(
        k: usize,
        per_cluster: usize,
        side: f64,
        sigma: f64,
        rng: &mut R,
    ) -> Self {
        assert!(side > 0.0 && sigma >= 0.0);
        let mut points = Vec::with_capacity(k * per_cluster);
        for _ in 0..k {
            let c = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            for _ in 0..per_cluster {
                points.push(Point::new(
                    c.x + gauss(rng) * sigma,
                    c.y + gauss(rng) * sigma,
                ));
            }
        }
        Deployment::from_points(
            format!("clustered(k={k},per={per_cluster},sigma={sigma})"),
            points,
        )
    }

    /// `n` nodes on a line with constant spacing — a diameter-`n−1` instance
    /// (with spacing just below the communication radius) for sweeping `D`.
    pub fn line(n: usize, spacing: f64) -> Self {
        assert!(spacing > 0.0);
        let points = (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect();
        Deployment::from_points(format!("line(n={n},spacing={spacing})"), points)
    }

    /// A corridor: `n` nodes uniform in a `length × width` strip. Sweeping
    /// `length` at fixed density sweeps `D` at roughly constant `Δ`.
    pub fn corridor<R: Rng + ?Sized>(n: usize, length: f64, width: f64, rng: &mut R) -> Self {
        assert!(length > 0.0 && width > 0.0);
        let points = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..length), rng.gen_range(0.0..width)))
            .collect();
        Deployment::from_points(format!("corridor(n={n},len={length},w={width})"), points)
    }

    /// The paper's exponential chain: node `i` at position `2^i · unit` on the
    /// real line, `i = 0, …, n−1`.
    ///
    /// With uniform power and `β ≥ 2^{1/α}`, at most one transmission can
    /// succeed per slot on this instance [Moscibroda–Wattenhofer 2006], which
    /// is the source of the `Δ` lower-bound term (paper §1). `unit` scales
    /// the whole chain (e.g. to make adjacent nodes just within range).
    ///
    /// # Panics
    ///
    /// Panics if `n > 60` (positions would overflow `f64`'s useful range).
    pub fn exponential_chain(n: usize, unit: f64) -> Self {
        assert!(n <= 60, "exponential chain longer than 60 overflows");
        assert!(unit > 0.0);
        let points = (0..n)
            .map(|i| Point::new((1u64 << i) as f64 * unit, 0.0))
            .collect();
        Deployment::from_points(format!("exp_chain(n={n})"), points)
    }

    /// A ring of `n` nodes of radius `radius` centered at `center`.
    pub fn ring(n: usize, radius: f64, center: Point) -> Self {
        assert!(radius > 0.0 && n > 0);
        let points = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                center + Point::unit(theta) * radius
            })
            .collect();
        Deployment::from_points(format!("ring(n={n},r={radius})"), points)
    }

    /// Human-readable generator label (used in experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Node positions, indexed by node id.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the deployment has no nodes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Bounding box of the deployment, or `None` if empty.
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        BoundingBox::from_points(self.points.iter().copied())
    }

    /// Consumes the deployment, returning its points.
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }
}

/// Standard normal sample via Box–Muller (no extra dependencies).
fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = Deployment::uniform(500, 25.0, &mut rng);
        assert_eq!(d.len(), 500);
        for p in d.points() {
            assert!(p.x >= 0.0 && p.x < 25.0 && p.y >= 0.0 && p.y < 25.0);
        }
    }

    #[test]
    fn uniform_with_degree_hits_target_density() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 2000;
        let r = 2.0;
        let target = 20.0;
        let d = Deployment::uniform_with_degree(n, r, target, &mut rng);
        let side = d.bounding_box().unwrap().width();
        let expected = n as f64 * std::f64::consts::PI * r * r / (side * side);
        assert!(
            (expected - target).abs() / target < 0.15,
            "expected density {expected} vs target {target}"
        );
    }

    #[test]
    fn grid_shape_and_jitter() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = Deployment::grid(4, 3, 2.0, 0.0, &mut rng);
        assert_eq!(d.len(), 12);
        assert_eq!(d.points()[0], Point::new(0.0, 0.0));
        assert_eq!(d.points()[11], Point::new(6.0, 4.0));
        let dj = Deployment::grid(4, 3, 2.0, 0.5, &mut rng);
        for (a, b) in d.points().iter().zip(dj.points()) {
            assert!(a.dist(*b) <= (2.0f64 * 0.25).sqrt() + 1e-12);
        }
    }

    #[test]
    fn clustered_size() {
        let mut rng = SmallRng::seed_from_u64(4);
        let d = Deployment::clustered(5, 20, 100.0, 1.0, &mut rng);
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn line_spacing() {
        let d = Deployment::line(10, 1.5);
        assert_eq!(d.len(), 10);
        for w in d.points().windows(2) {
            assert!((w[0].dist(w[1]) - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn exponential_chain_doubles() {
        let d = Deployment::exponential_chain(8, 1.0);
        let pts = d.points();
        for i in 1..pts.len() {
            assert!((pts[i].x - 2.0 * pts[i - 1].x).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn exponential_chain_too_long_panics() {
        Deployment::exponential_chain(61, 1.0);
    }

    #[test]
    fn ring_is_equidistant_from_center() {
        let c = Point::new(5.0, 5.0);
        let d = Deployment::ring(12, 3.0, c);
        for p in d.points() {
            assert!((p.dist(c) - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d1 = Deployment::uniform(50, 10.0, &mut SmallRng::seed_from_u64(9));
        let d2 = Deployment::uniform(50, 10.0, &mut SmallRng::seed_from_u64(9));
        assert_eq!(d1, d2);
    }

    #[test]
    fn gauss_has_roughly_zero_mean_unit_var() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
