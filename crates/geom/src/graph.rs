//! The communication graph `G(V, E)` and its parameters `Δ` and `D`.
//!
//! Per the paper (§2), `G` connects pairs at distance at most
//! `R_ε = (1 − ε)·R_T`. The graph is a *ground-truth analysis artifact*:
//! protocols never read it (nodes have no topology knowledge); experiments
//! and validators use it to compute `Δ`, `D`, and to check coloring
//! properness.

use crate::grid::SpatialGrid;
use crate::point::Point;
use std::collections::VecDeque;

/// Undirected communication graph over a node placement, in CSR form.
///
/// # Examples
///
/// ```
/// use mca_geom::{CommGraph, Point};
/// let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(3.0, 0.0)];
/// let g = CommGraph::build(&pts, 1.5);
/// assert_eq!(g.degree(0), 1);
/// assert!(!g.is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct CommGraph {
    n: usize,
    radius: f64,
    starts: Vec<u32>,
    adj: Vec<u32>,
}

impl CommGraph {
    /// Builds the graph connecting every pair at distance `<= radius`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite.
    pub fn build(points: &[Point], radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "radius must be positive"
        );
        let n = points.len();
        if n == 0 {
            return CommGraph {
                n,
                radius,
                starts: vec![0],
                adj: Vec::new(),
            };
        }
        let grid = SpatialGrid::build(points, radius.max(1e-9));
        let mut starts = Vec::with_capacity(n + 1);
        let mut adj: Vec<u32> = Vec::new();
        starts.push(0u32);
        for (i, &p) in points.iter().enumerate() {
            grid.for_each_within(points, p, radius, |j| {
                if j != i {
                    adj.push(j as u32);
                }
            });
            starts.push(adj.len() as u32);
        }
        CommGraph {
            n,
            radius,
            starts,
            adj,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The connection radius the graph was built with.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Neighbors of node `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let lo = self.starts[v] as usize;
        let hi = self.starts[v + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of node `v` (`d_v = |N(v)|`).
    pub fn degree(&self, v: usize) -> usize {
        (self.starts[v + 1] - self.starts[v]) as usize
    }

    /// Maximum degree `Δ`.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.adj.len() as f64 / self.n as f64
        }
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.len() / 2
    }

    /// Whether `u` and `v` are adjacent.
    pub fn are_adjacent(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).contains(&(v as u32))
    }

    /// BFS hop distances from `src`; unreachable nodes get `u32::MAX`.
    pub fn bfs(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n];
        let mut q = VecDeque::new();
        dist[src] = 0;
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            let dv = dist[v];
            for &w in self.neighbors(v) {
                let w = w as usize;
                if dist[w] == u32::MAX {
                    dist[w] = dv + 1;
                    q.push_back(w);
                }
            }
        }
        dist
    }

    /// Whether the graph is connected (an empty graph is connected).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.bfs(0).iter().all(|&d| d != u32::MAX)
    }

    /// Connected component ids (0-based, in discovery order).
    pub fn components(&self) -> Vec<u32> {
        let mut comp = vec![u32::MAX; self.n];
        let mut next = 0;
        for start in 0..self.n {
            if comp[start] != u32::MAX {
                continue;
            }
            let mut q = VecDeque::new();
            comp[start] = next;
            q.push_back(start);
            while let Some(v) = q.pop_front() {
                for &w in self.neighbors(v) {
                    let w = w as usize;
                    if comp[w] == u32::MAX {
                        comp[w] = next;
                        q.push_back(w);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Eccentricity of `src` within its component (max BFS distance).
    pub fn eccentricity(&self, src: usize) -> u32 {
        self.bfs(src)
            .into_iter()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Exact diameter `D`: max hop distance over all pairs *within
    /// components* (the paper assumes connectivity; on disconnected inputs we
    /// report the max component diameter).
    ///
    /// Runs BFS from every node — `O(n·m)`. Fine up to a few thousand nodes;
    /// use [`CommGraph::diameter_approx`] beyond that.
    pub fn diameter(&self) -> u32 {
        (0..self.n).map(|v| self.eccentricity(v)).max().unwrap_or(0)
    }

    /// 2-approximation of the diameter via double-BFS: the eccentricity of a
    /// farthest node from node 0 is in `[D/2, D]`, so the returned value is
    /// in `[D/2, D]` (and exact on trees).
    pub fn diameter_approx(&self) -> u32 {
        if self.n == 0 {
            return 0;
        }
        let d0 = self.bfs(0);
        let far = (0..self.n)
            .filter(|&v| d0[v] != u32::MAX)
            .max_by_key(|&v| d0[v])
            .unwrap_or(0);
        self.eccentricity(far)
    }

    /// Checks that `colors[u] != colors[v]` for every edge; returns the first
    /// violating edge if any.
    pub fn coloring_violation(&self, colors: &[u32]) -> Option<(usize, usize)> {
        assert_eq!(colors.len(), self.n, "one color per node required");
        for v in 0..self.n {
            for &w in self.neighbors(v) {
                if colors[v] == colors[w as usize] {
                    return Some((v, w as usize));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn path_graph(n: usize) -> CommGraph {
        let pts: Vec<Point> = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        CommGraph::build(&pts, 1.0)
    }

    #[test]
    fn empty_graph() {
        let g = CommGraph::build(&[], 1.0);
        assert!(g.is_empty());
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.diameter(), 0);
    }

    #[test]
    fn path_properties() {
        let g = path_graph(10);
        assert_eq!(g.len(), 10);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.diameter(), 9);
        assert_eq!(g.diameter_approx(), 9);
        assert!(g.is_connected());
        assert!(g.are_adjacent(3, 4));
        assert!(!g.are_adjacent(3, 5));
    }

    #[test]
    fn two_components() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(11.0, 0.0),
        ];
        let g = CommGraph::build(&pts, 1.5);
        assert!(!g.is_connected());
        let comp = g.components();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_eq!(g.diameter(), 1);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(6);
        let d = g.bfs(2);
        assert_eq!(d, vec![2, 1, 0, 1, 2, 3]);
    }

    #[test]
    fn clique_from_tight_cluster() {
        let pts: Vec<Point> = (0..8).map(|i| Point::new(0.01 * i as f64, 0.0)).collect();
        let g = CommGraph::build(&pts, 1.0);
        assert_eq!(g.max_degree(), 7);
        assert_eq!(g.diameter(), 1);
        assert_eq!(g.edge_count(), 8 * 7 / 2);
    }

    #[test]
    fn coloring_violation_detected() {
        let g = path_graph(4);
        assert_eq!(g.coloring_violation(&[0, 1, 0, 1]), None);
        let viol = g.coloring_violation(&[0, 0, 1, 2]);
        assert!(matches!(viol, Some((0, 1)) | Some((1, 0))));
    }

    #[test]
    #[should_panic(expected = "one color per node")]
    fn coloring_wrong_len_panics() {
        path_graph(3).coloring_violation(&[0, 1]);
    }

    #[test]
    fn adjacency_symmetric_on_random_deployment() {
        let mut rng = SmallRng::seed_from_u64(17);
        let d = Deployment::uniform(300, 20.0, &mut rng);
        let g = CommGraph::build(d.points(), 2.5);
        for v in 0..g.len() {
            for &w in g.neighbors(v) {
                assert!(g.are_adjacent(w as usize, v), "asymmetric edge {v} -> {w}");
            }
        }
    }

    #[test]
    fn approx_diameter_within_factor_two() {
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..5 {
            let d = Deployment::uniform(150, 15.0, &mut rng);
            let g = CommGraph::build(d.points(), 3.0);
            let exact = g.diameter();
            let approx = g.diameter_approx();
            assert!(approx <= exact);
            assert!(approx * 2 >= exact, "approx {approx} vs exact {exact}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn degree_counts_match_edges(
            raw in proptest::collection::vec((0.0..30.0f64, 0.0..30.0f64), 2..80),
            r in 0.5..10.0f64,
        ) {
            let pts: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let g = CommGraph::build(&pts, r);
            let degree_sum: usize = (0..g.len()).map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, 2 * g.edge_count());
            // Brute-force degree check on node 0.
            let brute = pts.iter().skip(1).filter(|p| p.dist(pts[0]) <= r).count();
            prop_assert_eq!(g.degree(0), brute);
        }
    }
}
