//! Planar points and basic vector arithmetic.
//!
//! All node positions in the simulator are [`Point`]s in the Euclidean
//! plane, matching the paper's model ("nodes … are positioned arbitrarily
//! on a plane", §2). Distances are Euclidean; the SINR crate raises them to
//! the path-loss exponent.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or vector) in the Euclidean plane.
///
/// # Examples
///
/// ```
/// use mca_geom::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.dist(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Point::dist`]; prefer it for comparisons against a
    /// squared radius.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm (distance from the origin).
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product with `other`, treating both as vectors.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Midpoint of the segment between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Point on the unit circle at angle `theta` (radians).
    #[inline]
    pub fn unit(theta: f64) -> Point {
        Point::new(theta.cos(), theta.sin())
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_of_345_triangle() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.dist(b) - 5.0).abs() < 1e-12);
        assert!((a.dist_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn origin_is_default() {
        assert_eq!(Point::default(), Point::ORIGIN);
        assert_eq!(Point::ORIGIN.norm(), 0.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), a.lerp(b, 0.5));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn unit_circle_points() {
        let p = Point::unit(0.0);
        assert!((p.x - 1.0).abs() < 1e-12 && p.y.abs() < 1e-12);
        let q = Point::unit(std::f64::consts::FRAC_PI_2);
        assert!(q.x.abs() < 1e-12 && (q.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conversions_roundtrip() {
        let p: Point = (1.5, -2.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, -2.5));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
        assert!(!format!("{:?}", Point::ORIGIN).is_empty());
    }

    fn arb_point() -> impl Strategy<Value = Point> {
        (-1e4..1e4f64, -1e4..1e4f64).prop_map(|(x, y)| Point::new(x, y))
    }

    proptest! {
        #[test]
        fn dist_symmetric(a in arb_point(), b in arb_point()) {
            prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-9);
        }

        #[test]
        fn dist_nonnegative_and_identity(a in arb_point(), b in arb_point()) {
            prop_assert!(a.dist(b) >= 0.0);
            prop_assert!(a.dist(a) == 0.0);
        }

        #[test]
        fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
            prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
        }

        #[test]
        fn dist_sq_consistent(a in arb_point(), b in arb_point()) {
            let d = a.dist(b);
            prop_assert!((d * d - a.dist_sq(b)).abs() < 1e-6 * (1.0 + a.dist_sq(b)));
        }

        #[test]
        fn dot_self_is_norm_sq(a in arb_point()) {
            prop_assert!((a.dot(a) - a.norm() * a.norm()).abs() < 1e-6 * (1.0 + a.dot(a)));
        }
    }
}
