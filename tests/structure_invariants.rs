//! Structure-level invariants across deployments, channel counts, and
//! substrate modes (the guarantees of Lemmas 7, 8, 14, 15).

use multichannel_adhoc::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn build(
    deploy: &Deployment,
    channels: u16,
    substrate: SubstrateMode,
    seed: u64,
) -> (NetworkEnv, AggregationStructure, StructureConfig) {
    let params = SinrParams::default();
    let env = NetworkEnv::new(params, deploy);
    let algo = AlgoConfig::practical(channels, &params, deploy.len());
    let mut cfg = StructureConfig::new(algo, seed);
    cfg.substrate = substrate;
    let s = build_structure(&env, &cfg);
    (env, s, cfg)
}

#[test]
fn audits_hold_across_densities() {
    for (n, side) in [(100usize, 20.0), (250, 12.0), (350, 8.0)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let deploy = Deployment::uniform(n, side, &mut rng);
        let (env, s, cfg) = build(&deploy, 8, SubstrateMode::Oracle, n as u64);
        let audit = audit_structure(&env, &s, cfg.cluster_radius);
        audit.assert_sound();
        assert_eq!(audit.n, n);
    }
}

#[test]
fn audits_hold_on_clustered_hotspots() {
    let mut rng = SmallRng::seed_from_u64(41);
    let deploy = Deployment::clustered(8, 30, 25.0, 1.2, &mut rng);
    let (env, s, cfg) = build(&deploy, 8, SubstrateMode::Oracle, 41);
    audit_structure(&env, &s, cfg.cluster_radius).assert_sound();
}

#[test]
fn audits_hold_on_grid_deployments() {
    let mut rng = SmallRng::seed_from_u64(43);
    let deploy = Deployment::grid(15, 15, 0.8, 0.2, &mut rng);
    let (env, s, cfg) = build(&deploy, 4, SubstrateMode::Distributed, 43);
    audit_structure(&env, &s, cfg.cluster_radius).assert_sound();
}

#[test]
fn line_topology_builds() {
    let deploy = Deployment::line(60, 0.9);
    let (env, s, cfg) = build(&deploy, 4, SubstrateMode::Oracle, 47);
    let audit = audit_structure(&env, &s, cfg.cluster_radius);
    audit.assert_sound();
    // Clusters on a line are chains of ~2·r_c/0.9 nodes.
    assert!(s.report.clusters >= 10, "{} clusters", s.report.clusters);
}

#[test]
fn every_cluster_member_shares_estimate_and_channels() {
    let mut rng = SmallRng::seed_from_u64(53);
    let deploy = Deployment::uniform(200, 10.0, &mut rng);
    let (_, s, _) = build(&deploy, 8, SubstrateMode::Oracle, 53);
    for d in s.dominators() {
        let members = s.members_of(d);
        let est = s.records[d.index()].cluster_size_est;
        let fv = s.records[d.index()].cluster_channels;
        assert!(est.is_some() && fv.is_some());
        for m in members {
            assert_eq!(
                s.records[m.index()].cluster_channels,
                fv,
                "member {m} disagrees with dominator {d} on f_v"
            );
        }
    }
}

#[test]
fn reporters_have_valid_heap_positions() {
    let mut rng = SmallRng::seed_from_u64(59);
    let deploy = Deployment::uniform(250, 9.0, &mut rng);
    let (_, s, _) = build(&deploy, 8, SubstrateMode::Oracle, 59);
    for r in &s.records {
        if let multichannel_adhoc::core::Role::Reporter { heap_pos } = r.role {
            let fv = r.cluster_channels.unwrap_or(1);
            assert!(
                heap_pos >= 1 && heap_pos <= fv,
                "reporter {} at position {heap_pos} with f_v = {fv}",
                r.id
            );
            assert_eq!(r.channel.map(|c| c.0 + 1), Some(heap_pos));
        }
    }
}

#[test]
fn tiny_networks_build() {
    for n in [1usize, 2, 5] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let deploy = Deployment::uniform(n, 3.0, &mut rng);
        let (_, s, _) = build(&deploy, 4, SubstrateMode::Oracle, 61 + n as u64);
        assert!(s.report.clusters >= 1);
        assert_eq!(s.records.len(), n);
    }
}
