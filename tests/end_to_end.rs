//! End-to-end integration tests: full pipeline on random deployments.

use multichannel_adhoc::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn setup(
    n: usize,
    side: f64,
    channels: u16,
    substrate: SubstrateMode,
    seed: u64,
) -> (
    NetworkEnv,
    AggregationStructure,
    AlgoConfig,
    StructureConfig,
) {
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let deploy = Deployment::uniform(n, side, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(channels, &params, n);
    let mut cfg = StructureConfig::new(algo, seed);
    cfg.substrate = substrate;
    let structure = build_structure(&env, &cfg);
    (env, structure, algo, cfg)
}

#[test]
fn max_aggregation_is_exact_with_distributed_substrate() {
    let (env, structure, algo, cfg) = setup(220, 13.0, 8, SubstrateMode::Distributed, 2);
    audit_structure(&env, &structure, cfg.cluster_radius).assert_sound();
    let inputs: Vec<i64> = (0..220).map(|i| (i as i64 * 131) % 7919).collect();
    let expect = *inputs.iter().max().unwrap();
    let d_hat = env.comm_graph().diameter_approx() + 2;
    let out = aggregate(
        &env,
        &structure,
        &algo,
        MaxAgg,
        &inputs,
        InterclusterMode::Flood,
        d_hat,
        11,
    );
    assert_eq!(out.undelivered, 0);
    let holders = out.values.iter().filter(|v| **v == Some(expect)).count();
    assert!(
        holders * 10 >= 220 * 9,
        "only {holders}/220 learned the max"
    );
}

#[test]
fn exact_sum_counts_every_node() {
    let (env, structure, algo, _) = setup(180, 12.0, 4, SubstrateMode::Oracle, 3);
    let inputs = vec![1i64; 180];
    let d_hat = env.comm_graph().diameter_approx() + 2;
    let out = aggregate(
        &env,
        &structure,
        &algo,
        SumAgg,
        &inputs,
        InterclusterMode::Exact { sink: NodeId(7) },
        d_hat,
        5,
    );
    assert_eq!(out.undelivered, 0, "lost inputs");
    assert_eq!(out.tree_losses, 0, "lost subtrees");
    assert_eq!(out.values[7], Some(180), "sink must see the exact count");
}

#[test]
fn average_aggregation_matches_ground_truth() {
    let (env, structure, algo, _) = setup(160, 11.0, 8, SubstrateMode::Oracle, 7);
    let temps: Vec<f64> = (0..160).map(|i| 15.0 + (i % 13) as f64).collect();
    let truth = temps.iter().sum::<f64>() / 160.0;
    let inputs: Vec<AvgValue> = temps.iter().map(|&t| AvgValue::sample(t)).collect();
    let d_hat = env.comm_graph().diameter_approx() + 2;
    let out = aggregate(
        &env,
        &structure,
        &algo,
        AvgAgg,
        &inputs,
        InterclusterMode::Exact { sink: NodeId(0) },
        d_hat,
        9,
    );
    let got = out.values[0].as_ref().and_then(|v| v.mean()).unwrap();
    assert!((got - truth).abs() < 1e-9, "avg {got} vs truth {truth}");
}

#[test]
fn fm_sketch_census_rides_the_flood() {
    let (env, structure, algo, _) = setup(200, 12.0, 8, SubstrateMode::Oracle, 13);
    let inputs: Vec<FmValue> = (0..200).map(|i| FmValue::of_item(i as u64)).collect();
    let d_hat = env.comm_graph().diameter_approx() + 2;
    let out = aggregate(
        &env,
        &structure,
        &algo,
        FmSketch,
        &inputs,
        InterclusterMode::Flood,
        d_hat,
        15,
    );
    let est = out.values[0].as_ref().unwrap().estimate();
    assert!(
        est > 100.0 && est < 400.0,
        "census {est} too far from n = 200"
    );
}

#[test]
fn coloring_is_proper_end_to_end() {
    let (env, structure, algo, _) = setup(200, 12.0, 8, SubstrateMode::Distributed, 17);
    let out = color_nodes(&env, &structure, &algo, 17);
    assert_eq!(out.uncolored, 0);
    let colors: Vec<u32> = out.colors.iter().map(|c| c.unwrap()).collect();
    let g = env.comm_graph();
    assert_eq!(g.coloring_violation(&colors), None);
    assert!(
        out.palette_size() <= 12 * (g.max_degree() + 1),
        "palette {} vs Δ {}",
        out.palette_size(),
        g.max_degree()
    );
}

#[test]
fn determinism_same_seed_same_everything() {
    let run = || {
        let (env, structure, algo, _) = setup(120, 10.0, 4, SubstrateMode::Distributed, 23);
        let inputs: Vec<i64> = (0..120).map(|i| i as i64).collect();
        let d_hat = env.comm_graph().diameter_approx() + 2;
        let out = aggregate(
            &env,
            &structure,
            &algo,
            MaxAgg,
            &inputs,
            InterclusterMode::Flood,
            d_hat,
            29,
        );
        (
            structure.report.total_slots(),
            structure.phi,
            out.total_slots(),
            out.values.clone(),
        )
    };
    assert_eq!(run(), run(), "whole pipeline must replay bit-for-bit");
}

#[test]
fn single_channel_network_still_works() {
    // F = 1 degrades gracefully to a single-channel algorithm.
    let (env, structure, algo, _) = setup(150, 10.0, 1, SubstrateMode::Oracle, 31);
    let inputs: Vec<i64> = (0..150).map(|i| i as i64 % 97).collect();
    let expect = *inputs.iter().max().unwrap();
    let d_hat = env.comm_graph().diameter_approx() + 2;
    let out = aggregate(
        &env,
        &structure,
        &algo,
        MaxAgg,
        &inputs,
        InterclusterMode::Flood,
        d_hat,
        37,
    );
    assert_eq!(out.values[0], Some(expect));
}
