//! Fault-injection integration tests: the t-disrupted adversary (cf. the
//! paper's reference [9]) and crash-stop nodes.

use multichannel_adhoc::core::aggregate::intercluster::{FloodCfg, FloodCombine};
use multichannel_adhoc::core::{MaxAgg, Tdma};
use multichannel_adhoc::prelude::*;
use multichannel_adhoc::radio::{FaultPlan, JamSpec};
use rand::{rngs::SmallRng, SeedableRng};

fn backbone(k: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    Deployment::uniform(k, 22.0, &mut rng).into_points()
}

fn flood_cfg() -> FloodCfg {
    FloodCfg {
        q: 0.2,
        flood_rounds: 500,
        tail_rounds: 80,
        tdma: Tdma::new(1, 1),
        hop_channels: 0,
    }
}

#[test]
fn duty_cycled_jammer_degrades_gracefully() {
    let cfg = flood_cfg();
    let k = 20;
    let positions = backbone(k, 3);
    let protocols: Vec<FloodCombine<MaxAgg>> = (0..k)
        .map(|i| FloodCombine::dominator(MaxAgg, cfg, 0, i as i64))
        .collect();
    let mut faults = FaultPlan::none();
    faults.jam(JamSpec::Random {
        t: 1,
        total: 4, // channel 0 hit one slot in four
        power: 100.0,
        seed: 0xBAD,
    });
    let mut engine =
        Engine::new(SinrParams::default(), positions, protocols, 3).with_faults(faults);
    engine.run_until_done(cfg.flood_rounds + cfg.tail_rounds + 1);
    let holders = engine
        .protocols()
        .iter()
        .filter(|p| *p.value() == (k - 1) as i64)
        .count();
    assert!(
        holders * 10 >= k * 8,
        "only {holders}/{k} survived a 25%-duty jammer"
    );
}

#[test]
fn crashed_minority_does_not_block_survivors() {
    let cfg = flood_cfg();
    let k = 20;
    let crashes = 4;
    let positions = backbone(k, 7);
    let protocols: Vec<FloodCombine<MaxAgg>> = (0..k)
        .map(|i| FloodCombine::dominator(MaxAgg, cfg, 0, i as i64))
        .collect();
    let mut faults = FaultPlan::none();
    for c in 0..crashes {
        faults.crash_at(c as u32, 100);
    }
    let mut engine =
        Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults);
    engine.run_until_done(cfg.flood_rounds + cfg.tail_rounds + 1);
    // All survivors must still converge on the surviving max.
    let holders = engine
        .protocols()
        .iter()
        .enumerate()
        .filter(|(i, p)| *i >= crashes && *p.value() == (k - 1) as i64)
        .count();
    assert_eq!(holders, k - crashes, "survivors out of sync after crashes");
}

#[test]
fn full_pipeline_survives_node_crashes_before_aggregation() {
    // Crash nodes *before* the run: the structure simply never includes
    // them (they are silent), and the aggregate covers the survivors.
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(21);
    let deploy = Deployment::uniform(150, 10.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(4, &params, 150);
    let mut cfg = StructureConfig::new(algo, 21);
    cfg.substrate = SubstrateMode::Oracle;
    let s = build_structure(&env, &cfg);
    let inputs: Vec<i64> = (0..150).map(|i| i as i64).collect();
    let d_hat = env.comm_graph().diameter_approx() + 2;
    let out = aggregate(
        &env,
        &s,
        &algo,
        MaxAgg,
        &inputs,
        InterclusterMode::Flood,
        d_hat,
        23,
    );
    // Sanity: fault-free baseline of the same scenario is exact.
    assert_eq!(out.values[0], Some(149));
}

// ---------------------------------------------------------------------------
// Faults against the info-exchange protocol (receive-bottleneck workload).
// ---------------------------------------------------------------------------

use multichannel_adhoc::baselines::{ExchangeConfig, ExchangeNode};

fn exchange_clique(n: usize, seed: u64) -> Vec<Point> {
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    Deployment::disk(n, params.r_eps() / 4.0, &mut rng).into_points()
}

#[test]
fn t_disrupted_adversary_slows_but_does_not_stop_exchange() {
    let n = 40;
    let positions = exchange_clique(n, 11);
    let cfg = ExchangeConfig::new(4, n);
    let run = |jam: bool| {
        let protocols: Vec<ExchangeNode> = (0..n)
            .map(|i| ExchangeNode::new(NodeId(i as u32), n, cfg))
            .collect();
        let mut faults = FaultPlan::none();
        if jam {
            // 1 of the 4 channels disrupted each slot.
            faults.jam(JamSpec::Random {
                t: 1,
                total: 4,
                power: 100.0,
                seed: 0xBAD,
            });
        }
        let mut engine =
            Engine::new(SinrParams::default(), positions.clone(), protocols, 5).with_faults(faults);
        engine.run_until(cfg.max_slots, |ps: &[ExchangeNode]| {
            ps.iter().all(|p| p.complete_at().is_some())
        });
        let done = engine
            .protocols()
            .iter()
            .filter(|p| p.complete_at().is_some())
            .count();
        (done, engine.slot())
    };
    let (done_clean, t_clean) = run(false);
    let (done_jammed, t_jammed) = run(true);
    assert_eq!(done_clean, n);
    assert_eq!(
        done_jammed, n,
        "a 1-of-4 disruptor must not stop the exchange (channel hopping routes around it)"
    );
    assert!(
        t_jammed >= t_clean,
        "jamming should not make the exchange faster ({t_jammed} < {t_clean})"
    );
}

#[test]
fn crashed_nodes_leave_exactly_their_tokens_missing() {
    let n = 30;
    let crashes = 5;
    let positions = exchange_clique(n, 13);
    let cfg = ExchangeConfig::new(2, n);
    let protocols: Vec<ExchangeNode> = (0..n)
        .map(|i| ExchangeNode::new(NodeId(i as u32), n, cfg))
        .collect();
    let mut faults = FaultPlan::none();
    for c in 0..crashes {
        faults.crash_at(c as u32, 0); // dead from the start
    }
    let mut engine =
        Engine::new(SinrParams::default(), positions, protocols, 7).with_faults(faults);
    engine.run_until_done(cfg.max_slots);
    for (i, p) in engine.protocols().iter().enumerate().skip(crashes) {
        assert!(
            p.complete_at().is_none(),
            "node {i} cannot have completed: {crashes} senders are dead"
        );
        assert_eq!(
            p.heard_count(),
            n - 1 - crashes,
            "node {i} should hold every living token and nothing else"
        );
    }
}

#[test]
fn channel_hopping_defeats_constant_fixed_jammer() {
    // A sustained jammer on channel 0 kills the single-channel flood;
    // a shared slot-keyed hop over 4 channels shrugs it off (the [9]
    // extension).
    let k = 20;
    let positions = backbone(k, 17);
    let run = |hop: u16| {
        let mut cfg = flood_cfg();
        cfg.hop_channels = hop;
        let protocols: Vec<FloodCombine<MaxAgg>> = (0..k)
            .map(|i| FloodCombine::dominator(MaxAgg, cfg, 0, i as i64))
            .collect();
        let mut faults = FaultPlan::none();
        faults.jam(JamSpec::Fixed {
            channel: 0,
            from: 0,
            to: u64::MAX,
            power: 1000.0,
        });
        let mut engine =
            Engine::new(SinrParams::default(), positions.clone(), protocols, 9).with_faults(faults);
        engine.run_until_done(cfg.flood_rounds + cfg.tail_rounds + 1);
        engine
            .protocols()
            .iter()
            .filter(|p| *p.value() == (k - 1) as i64)
            .count()
    };
    let pinned = run(0);
    let hopping = run(4);
    assert!(
        pinned <= k / 4,
        "a constant jammer should cripple the pinned flood (got {pinned}/{k})"
    );
    assert!(
        hopping * 10 >= k * 9,
        "hopping should route around the fixed jammer (got {hopping}/{k})"
    );
}

#[test]
fn hop_sequence_is_shared_and_in_range() {
    let mut cfg = flood_cfg();
    cfg.hop_channels = 4;
    for slot in 0..1000u64 {
        let c = cfg.channel_for(slot);
        assert!(c.0 < 4, "hop landed outside the width at slot {slot}");
        assert_eq!(c, cfg.channel_for(slot), "sequence must be deterministic");
    }
    // The hop must actually *use* all channels (roughly uniformly).
    let mut counts = [0usize; 4];
    for slot in 0..4000u64 {
        counts[cfg.channel_for(slot).index()] += 1;
    }
    for (i, &c) in counts.iter().enumerate() {
        assert!(
            c > 4000 / 8,
            "channel {i} underused in the hop sequence: {c}/4000"
        );
    }
}
