//! `audit_structure` as the repair oracle: every maintainer operation —
//! crash, join, handover, and random interleavings of all three — must
//! leave the structure audit-clean over the live subset, and on a static
//! world repair must be (a) free and (b) in the same audit equivalence
//! class as a from-scratch rebuild.

use multichannel_adhoc::prelude::*;
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn world(n: usize, side: f64, seed: u64) -> (NetworkEnv, StructureConfig) {
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let deploy = Deployment::uniform(n, side, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(4, &params, n);
    let mut cfg = StructureConfig::new(algo, seed);
    // Oracle substrate keeps the proptest wall-clock reasonable; the
    // repair phases themselves always run as distributed protocols.
    cfg.substrate = SubstrateMode::Oracle;
    (env, cfg)
}

/// One scripted world mutation.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Crash node `(pick % live)`.
    Crash(u8),
    /// Re-join a previously crashed node (no-op if none).
    Join(u8),
    /// Teleport node `(pick % n)` towards the position of node
    /// `(to % n)` — mobility compressed into one step.
    Move(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, 0u8..=255, 0u8..=255).prop_map(|(kind, a, b)| match kind {
        0 => Op::Crash(a),
        1 => Op::Join(a),
        _ => Op::Move(a, b),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings of crashes, joins, and motion, digested over
    /// several repair epochs: the masked audit holds after every repair.
    #[test]
    fn repairs_leave_structure_audit_clean(
        world_seed in 0u64..4,
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let n = 120usize;
        let (env, cfg) = world(n, 11.0, 1000 + world_seed);
        let mut env = env;
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        m.audit(&env).assert_sound();
        let mut slot = 0u64;
        let mut crashed: Vec<u32> = Vec::new();
        for (k, op) in ops.iter().enumerate() {
            slot += 10;
            match *op {
                Op::Crash(pick) => {
                    let live: Vec<u32> =
                        (0..n as u32).filter(|&i| m.alive()[i as usize]).collect();
                    if live.len() <= 1 {
                        continue;
                    }
                    let node = live[pick as usize % live.len()];
                    crashed.push(node);
                    m.observe(&NodeEvent::Crashed { node: NodeId(node), slot });
                }
                Op::Join(pick) => {
                    if crashed.is_empty() {
                        continue;
                    }
                    let node = crashed.remove(pick as usize % crashed.len());
                    m.observe(&NodeEvent::Joined { node: NodeId(node), slot });
                }
                Op::Move(pick, to) => {
                    let node = pick as usize % n;
                    let target = to as usize % n;
                    let from = env.positions[node];
                    let dest = env.positions[target];
                    // Land next to the target, not on top of it.
                    let moved = Point::new(dest.x + 0.2, dest.y);
                    env.positions[node] = moved;
                    m.observe(&NodeEvent::Moved {
                        node: NodeId(node as u32),
                        slot,
                        from,
                        to: moved,
                    });
                }
            }
            // Repair every few ops (and always after the last), so the
            // oracle sees both batched and immediate digestion.
            if k % 3 == 2 || k + 1 == ops.len() {
                m.repair(&env, 0xA0_0000 + k as u64);
                let audit = m.audit(&env);
                prop_assert!(
                    audit.check(&m.tolerances()).is_ok(),
                    "audit violation after op {k} ({op:?}): {:?}",
                    audit.check(&m.tolerances())
                );
            }
        }
    }
}

#[test]
fn static_world_repair_is_free_and_equivalent_to_rebuild() {
    for seed in [2u64, 4, 6] {
        let (env, cfg) = world(150, 11.0, seed);
        let mut m = StructureMaintainer::build(&env, cfg, MaintainConfig::default(), None);
        // (a) No churn, no mobility: repair is a no-op with zero slot cost,
        // and the structure is untouched.
        let before = m.structure().records.clone();
        let report = m.repair(&env, 99);
        assert_eq!(report.kind, RepairKind::Clean);
        assert_eq!(report.total_slots(), 0);
        assert_eq!(m.structure().records, before);

        // (b) Repair == rebuild as an *equivalence class*: after a crash,
        // the repaired structure and a from-scratch rebuild over the same
        // live set both satisfy the same audit invariants (they need not be
        // structurally identical — repair is local, rebuild is global).
        let victim = m
            .structure()
            .dominators()
            .into_iter()
            .max_by_key(|&d| m.structure().members_of(d).len())
            .unwrap();
        m.observe(&NodeEvent::Crashed {
            node: victim,
            slot: 10,
        });
        let report = m.repair(&env, 101);
        assert_ne!(report.kind, RepairKind::Clean);
        let repaired = m.audit(&env);
        repaired.check(&m.tolerances()).unwrap();

        let alive: Vec<bool> = m.alive().to_vec();
        let rebuilt = build_structure_masked(&env, &cfg, Some(&alive));
        let rebuilt_audit =
            audit_structure_masked(&env, &rebuilt, cfg.cluster_radius, Some(&alive));
        rebuilt_audit.check(&AuditTolerances::default()).unwrap();

        // Same world, same invariant class: node counts agree, both fully
        // clustered, and both within the certified attachment bound.
        assert_eq!(repaired.n, rebuilt_audit.n);
        assert_eq!(repaired.unclustered, 0);
        assert_eq!(rebuilt_audit.unclustered, 0);
        assert_eq!(repaired.dangling_members, 0);
    }
}

#[test]
fn masked_build_equals_unmasked_when_everyone_lives() {
    let (env, cfg) = world(100, 10.0, 21);
    let full = build_structure(&env, &cfg);
    let masked = build_structure_masked(&env, &cfg, Some(&[true; 100]));
    assert_eq!(full.records, masked.records);
    assert_eq!(full.report, masked.report);
    assert_eq!(full.phi, masked.phi);
}

#[test]
fn members_index_matches_record_scan() {
    let (env, cfg) = world(140, 11.0, 23);
    let s = build_structure(&env, &cfg);
    for d in s.dominators() {
        let via_index: Vec<NodeId> = s.members_of(d).to_vec();
        let via_scan: Vec<NodeId> = s
            .records
            .iter()
            .filter(|r| r.cluster == Some(d))
            .map(|r| r.id)
            .collect();
        assert_eq!(via_index, via_scan, "index drifted for cluster {d}");
    }
    // Non-dominator ids index an empty member list.
    let follower = s
        .records
        .iter()
        .find(|r| !r.role.is_dominator())
        .map(|r| r.id)
        .unwrap();
    assert!(s.members_of(follower).is_empty());
}
