//! Cross-crate properties of the batched SINR resolution path.
//!
//! The contracts under test (see `mca_sinr::resolve_batch`):
//! 1. `resolve_channel` (now routed through `ChannelResolver`) is, in the
//!    default `Exact` mode, bit-for-bit the per-listener scalar reference;
//! 2. `Fast` mode never flips a decode whose SINR margin exceeds the
//!    resolver's published per-listener error bound;
//! 3. `par_channels` engine/scenario runs are bit-identical to sequential
//!    ones, end to end, mobility and fading included.

use multichannel_adhoc::prelude::*;
use multichannel_adhoc::radio::{Action, Observation};
use multichannel_adhoc::sinr::{resolve_channel, resolve_listener};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `resolve_channel` == scalar `resolve_listener`, outcome for outcome,
    /// bitwise (floats included), through the public facade.
    #[test]
    fn routed_resolve_channel_is_bitwise_scalar(
        raw in proptest::collection::vec((-25.0..25.0f64, -25.0..25.0f64), 0..40),
        lraw in proptest::collection::vec((-25.0..25.0f64, -25.0..25.0f64), 1..12),
    ) {
        let params = SinrParams::default();
        let txs: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let listeners: Vec<Point> = lraw.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let batch = resolve_channel(&params, &txs, &listeners);
        prop_assert_eq!(batch.len(), listeners.len());
        for (i, &l) in listeners.iter().enumerate() {
            prop_assert_eq!(batch[i], resolve_listener(&params, &txs, l));
        }
    }

    /// Fast mode through the facade: decisions differ from the scalar
    /// reference only when the margin is inside the published bound.
    #[test]
    fn fast_mode_margin_contract(
        raw in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 20..60),
        lx in 0.0..100.0f64,
        ly in 0.0..100.0f64,
    ) {
        let params = SinrParams::default().with_resolve(ResolveMode::fast());
        let txs: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let l = Point::new(lx, ly);
        let resolver = ChannelResolver::new(&params, &txs);
        let (fast, bound) = resolver.resolve_with_bound(l, 0.0);
        let scalar = resolve_listener(&params, &txs, l);
        if fast.decoded != scalar.decoded {
            // Recompute the true strongest signal and interference.
            let powers: Vec<f64> = txs.iter().map(|t| params.received_power_sq(t.dist_sq(l))).collect();
            let sig = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let interference: f64 = powers.iter().sum::<f64>() - sig;
            // Ulp-scale slack: the near field is summed in cell order,
            // so totals differ from the scalar scan by rounding even when
            // the interval bound is 0.
            let slack = bound + 1e-9 * (params.noise + interference);
            let robust_yes = params.decodes(sig, interference + slack);
            let robust_no = !params.decodes(sig, (interference - slack).max(0.0));
            prop_assert!(!robust_yes && !robust_no,
                "decode flip outside the error bound {bound}");
        }
    }
}

/// Random multi-channel chatter that records every observation verbatim.
struct Recorder {
    channels: u16,
    log: Vec<(u64, String)>,
}

impl Protocol for Recorder {
    type Msg = u64;
    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<u64> {
        let ch = Channel(rng.gen_range(0..self.channels));
        if rng.gen_bool(0.35) {
            Action::Transmit {
                channel: ch,
                msg: slot,
            }
        } else {
            Action::Listen { channel: ch }
        }
    }
    fn observe(&mut self, slot: u64, obs: Observation<u64>, _rng: &mut SmallRng) {
        // Debug-format keeps the full float bits relevant for comparison.
        self.log.push((slot, format!("{obs:?}")));
    }
}

fn dynamic_scenario() -> Scenario {
    Scenario::builder("par-biteq")
        .deployment(DeploymentSpec::Uniform { n: 60, side: 14.0 })
        .mobility(MobilitySpec::RandomWaypoint {
            speed_min: 0.05,
            speed_max: 0.2,
            pause: 2,
        })
        .fading(FadingSpec::interference(0.05, 0.2, 40.0))
        .channels(5)
        .build()
}

fn run_scenario(par: bool) -> (Metrics, Vec<Vec<(u64, String)>>) {
    let mut scenario = dynamic_scenario();
    scenario.par_channels = par;
    let mut sim = ScenarioSim::new(&scenario, 11, |_, _| Recorder {
        channels: 5,
        log: Vec::new(),
    });
    sim.run(150);
    let metrics = sim.metrics().clone();
    let logs = sim
        .into_engine()
        .into_protocols()
        .into_iter()
        .map(|r| r.log)
        .collect();
    (metrics, logs)
}

use multichannel_adhoc::radio::Metrics;

#[test]
fn scenario_par_channels_bit_identical_to_sequential() {
    let (m_seq, l_seq) = run_scenario(false);
    let (m_par, l_par) = run_scenario(true);
    assert_eq!(m_seq, m_par, "metrics diverged under par_channels");
    assert_eq!(l_seq, l_par, "an observation diverged under par_channels");
    assert!(m_seq.receptions > 0, "the workload should deliver traffic");
}

#[test]
fn fast_engine_agrees_with_exact_on_a_robust_workload() {
    // A well-separated line: every link decodes with a huge margin, so
    // Exact and Fast must agree exactly on what was heard.
    let run = |mode: ResolveMode| {
        let n = 64usize;
        let positions: Vec<Point> = (0..n).map(|i| Point::new(i as f64 * 3.0, 0.0)).collect();
        let protocols: Vec<Recorder> = (0..n)
            .map(|_| Recorder {
                channels: 2,
                log: Vec::new(),
            })
            .collect();
        let params = SinrParams::default().with_resolve(mode);
        let mut e = Engine::new(params, positions, protocols, 5);
        e.run(80);
        let receptions = e.metrics().receptions;
        let heard: Vec<Vec<(u64, String)>> = e
            .into_protocols()
            .into_iter()
            .map(|r| {
                r.log
                    .into_iter()
                    .filter(|(_, s)| s.starts_with("Received"))
                    .map(|(slot, s)| {
                        // Keep only the sender identity: Fast's carrier-sense
                        // floats legitimately differ within the error bound.
                        let from = s.split("from: ").nth(1).map(|t| t[..8].to_string());
                        (slot, from.unwrap_or(s))
                    })
                    .collect()
            })
            .collect();
        (receptions, heard)
    };
    let exact = run(ResolveMode::Exact);
    let fast = run(ResolveMode::fast());
    assert_eq!(exact, fast, "decode sets diverged on a robust topology");
}
