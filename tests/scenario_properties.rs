//! Determinism and equivalence properties of the `mca-scenario` subsystem.
//!
//! The contracts under test (see `mca-scenario` docs):
//! 1. a trial is a pure function of `(scenario, seed)` — metrics, final
//!    positions, trajectories, and protocol results all replay exactly;
//! 2. a static scenario is bit-identical to driving the plain `Engine`;
//! 3. the parallel `ScenarioRunner` returns exactly the sequential results;
//! 4. the dynamic-environment knobs (fading, churn, mobility) actually
//!    change what protocols experience, deterministically.

use multichannel_adhoc::core::aggregate::intercluster::{FloodCfg, FloodCombine};
use multichannel_adhoc::core::{MaxAgg, Tdma};
use multichannel_adhoc::prelude::*;

fn flood_cfg(channels: u16) -> FloodCfg {
    FloodCfg {
        q: 0.2,
        flood_rounds: 150,
        tail_rounds: 30,
        tdma: Tdma::new(1, 1),
        hop_channels: channels,
    }
}

fn flood_protocol(i: usize, channels: u16) -> FloodCombine<MaxAgg> {
    FloodCombine::dominator(MaxAgg, flood_cfg(channels), 0, i as i64)
}

/// A mobile, fading, churning scenario exercising every dynamic knob.
fn stress_scenario() -> Scenario {
    Scenario::builder("stress")
        .deployment(DeploymentSpec::Uniform { n: 40, side: 14.0 })
        .mobility(MobilitySpec::RandomWaypoint {
            speed_min: 0.05,
            speed_max: 0.25,
            pause: 3,
        })
        .fading(FadingSpec::interference(0.02, 0.15, 200.0))
        .churn(ChurnSpec::Random {
            join_fraction: 0.2,
            join_window: (1, 40),
            crash_fraction: 0.1,
            crash_window: (60, 120),
        })
        .channels(4)
        .max_slots(200)
        .build()
}

/// Runs one trial, sampling the trajectory every 10 slots.
fn run_trial(
    scenario: &Scenario,
    seed: u64,
) -> (
    Vec<i64>,
    multichannel_adhoc::radio::Metrics,
    Vec<Vec<Point>>,
) {
    let mut sim = ScenarioSim::new(scenario, seed, |i, _| flood_protocol(i, scenario.channels));
    let mut trajectory = Vec::new();
    for s in 0..scenario.max_slots {
        if s % 10 == 0 {
            trajectory.push(sim.positions().to_vec());
        }
        sim.step();
    }
    let values: Vec<i64> = sim.protocols().iter().map(|p| *p.value()).collect();
    (values, sim.metrics().clone(), trajectory)
}

#[test]
fn same_scenario_and_seed_replays_bit_for_bit() {
    let scenario = stress_scenario();
    let (va, ma, ta) = run_trial(&scenario, 42);
    let (vb, mb, tb) = run_trial(&scenario, 42);
    assert_eq!(va, vb, "protocol outcomes must replay");
    assert_eq!(ma, mb, "metrics must replay");
    assert_eq!(ta, tb, "trajectories must replay");

    let (vc, mc, tc) = run_trial(&scenario, 43);
    assert!(
        va != vc || ma != mc || ta != tc,
        "a different seed should produce a different run"
    );
}

#[test]
fn static_scenario_matches_plain_engine_exactly() {
    // Same world, built both ways: a declarative static scenario and a
    // hand-driven plain Engine.
    let seed = 7u64;
    let scenario = Scenario::builder("static-equivalence")
        .deployment(DeploymentSpec::Uniform { n: 35, side: 12.0 })
        .channels(4)
        .max_slots(150)
        .build();
    let points = scenario.deployment_for(seed).into_points();

    let mut sim = ScenarioSim::new(&scenario, seed, |i, _| flood_protocol(i, 4));
    sim.run(150);

    let protocols: Vec<FloodCombine<MaxAgg>> =
        (0..points.len()).map(|i| flood_protocol(i, 4)).collect();
    let mut engine = Engine::new(SinrParams::default(), points, protocols, seed);
    engine.run(150);

    assert_eq!(sim.metrics(), engine.metrics(), "metrics bit-identical");
    assert_eq!(
        sim.positions(),
        engine.positions(),
        "no node may have moved"
    );
    let sim_values: Vec<i64> = sim.protocols().iter().map(|p| *p.value()).collect();
    let eng_values: Vec<i64> = engine.protocols().iter().map(|p| *p.value()).collect();
    assert_eq!(sim_values, eng_values, "protocol states bit-identical");
}

#[test]
fn parallel_runner_matches_sequential_exactly() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mk = || {
        ScenarioRunner::sweep(vec![
            stress_scenario(),
            Scenario::builder("static")
                .deployment(DeploymentSpec::Uniform { n: 30, side: 10.0 })
                .channels(4)
                .max_slots(120)
                .build(),
        ])
        .trials(8)
        .master_seed(99)
    };
    let trial = |s: &Scenario, seed: u64| {
        let mut sim = ScenarioSim::new(s, seed, |i, _| flood_protocol(i, s.channels));
        sim.run(s.max_slots.min(120));
        let vals: Vec<i64> = sim.protocols().iter().map(|p| *p.value()).collect();
        (vals, sim.metrics().receptions, sim.positions().to_vec())
    };
    let par = mk().run(trial);
    let seq = mk().sequential().run(trial);
    assert_eq!(par.len(), seq.len());
    for (a, b) in par.iter().zip(&seq) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.outcome.seeds, b.outcome.seeds);
        assert_eq!(
            a.outcome.results, b.outcome.results,
            "parallel schedule must not change results (threads={threads})"
        );
    }
}

#[test]
fn fading_degrades_reception_deterministically() {
    let base = Scenario::builder("clean")
        .deployment(DeploymentSpec::Uniform { n: 30, side: 8.0 })
        .channels(2)
        .build();
    let faded = Scenario::builder("faded")
        .deployment(DeploymentSpec::Uniform { n: 30, side: 8.0 })
        .fading(FadingSpec::dropping(0.3, 0.2, 1.0))
        .channels(2)
        .build();
    let run = |s: &Scenario, seed: u64| {
        let mut sim = ScenarioSim::new(s, seed, |i, _| flood_protocol(i, 2));
        sim.run(150);
        (sim.metrics().receptions, sim.metrics().env_drops)
    };
    let (clean_rx, clean_drops) = run(&base, 5);
    let (faded_rx, faded_drops) = run(&faded, 5);
    assert_eq!(clean_drops, 0);
    assert!(faded_drops > 0, "bad channels must drop receptions");
    assert!(
        faded_rx < clean_rx,
        "fading must reduce receptions: {faded_rx} vs {clean_rx}"
    );
    assert_eq!(
        run(&faded, 5),
        (faded_rx, faded_drops),
        "and stay deterministic"
    );
}

#[test]
fn churned_nodes_join_late_and_crash() {
    let scenario = Scenario::builder("churn")
        .deployment(DeploymentSpec::Uniform { n: 20, side: 6.0 })
        .churn(ChurnSpec::Explicit {
            joins: vec![(1, 50)],
            crashes: vec![(2, 30)],
        })
        .channels(1)
        .build();
    let mut sim = ScenarioSim::new(&scenario, 11, |i, _| flood_protocol(i, 1));
    sim.run(29);
    let faults = sim.engine().faults().clone();
    assert!(!faults.has_joined(1, 29));
    assert!(!faults.is_crashed(2, 29));
    sim.run(70);
    // Node 1 joined at 50: by now it has flooded its own value at least
    // once, so transmissions include it; the crashed node stopped at 30.
    assert!(faults.is_crashed(2, 99));
    assert!(faults.has_joined(1, 99));
    // A late joiner still learns the flood maximum (19) after joining.
    let v1 = *sim.protocols()[1].value();
    assert!(v1 >= 1, "late joiner retains at least its own value");
}

#[test]
fn mobility_moves_nodes_within_area() {
    let scenario = Scenario::builder("mobile")
        .deployment(DeploymentSpec::Uniform { n: 25, side: 10.0 })
        .mobility(MobilitySpec::RandomWaypoint {
            speed_min: 0.1,
            speed_max: 0.4,
            pause: 0,
        })
        .build();
    let area = scenario.effective_area();
    let mut sim = ScenarioSim::new(&scenario, 13, |i, _| flood_protocol(i, 1));
    let start = sim.positions().to_vec();
    for _ in 0..300 {
        sim.step();
        assert!(sim.positions().iter().all(|p| area.contains(*p)));
    }
    let moved = sim
        .positions()
        .iter()
        .zip(&start)
        .filter(|(a, b)| a.dist(**b) > 0.5)
        .count();
    assert!(moved > 10, "most nodes should have moved; only {moved} did");
}

#[test]
fn convoy_keeps_groups_tight() {
    let scenario = Scenario::builder("convoy")
        .deployment(DeploymentSpec::Uniform { n: 24, side: 20.0 })
        .mobility(MobilitySpec::Convoy {
            groups: 3,
            speed: 0.3,
            spread: 1.5,
            pause: 0,
        })
        .build();
    let mut sim = ScenarioSim::new(&scenario, 17, |i, _| flood_protocol(i, 1));
    sim.run(100);
    // Members of the same group (i % 3) sit within 2*spread of each other.
    let pos = sim.positions();
    for g in 0..3 {
        let members: Vec<Point> = (g..24).step_by(3).map(|i| pos[i]).collect();
        for a in &members {
            for b in &members {
                assert!(
                    a.dist(*b) <= 3.0 + 1e-9,
                    "group {g} scattered: {}",
                    a.dist(*b)
                );
            }
        }
    }
}
