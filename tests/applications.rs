//! Integration tests for the application layer built on the aggregation
//! structure: leader election, broadcast (single and multi-message), and
//! ruling-set/MIS computations — exercised across crates with the fully
//! distributed substrate where it matters.

use multichannel_adhoc::baselines::{run_info_exchange, ExchangeConfig};
use multichannel_adhoc::core::mis::{maximal_independent_set, ruling_set, MisConfig};
use multichannel_adhoc::core::{broadcast, broadcast_many, elect_leader, Candidate, LeaderAgg};
use multichannel_adhoc::core::{Aggregate, BcastAgg, Sourced};
use multichannel_adhoc::prelude::*;
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn setup(
    n: usize,
    side: f64,
    channels: u16,
    seed: u64,
    substrate: SubstrateMode,
) -> (NetworkEnv, AggregationStructure, AlgoConfig, u32) {
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let deploy = Deployment::uniform(n, side, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(channels, &params, n);
    let mut cfg = StructureConfig::new(algo, seed);
    cfg.substrate = substrate;
    cfg.cluster_radius = 2.0;
    let s = build_structure(&env, &cfg);
    let d_hat = env.comm_graph().diameter_approx() + 2;
    (env, s, algo, d_hat)
}

#[test]
fn leader_election_with_distributed_substrate() {
    let (env, s, algo, d_hat) = setup(200, 10.0, 4, 31, SubstrateMode::Distributed);
    let out = elect_leader(&env, &s, &algo, d_hat, 5);
    assert!(out.leader_knows);
    assert!(
        out.agreement * 10 >= 200 * 9,
        "agreement {}/200",
        out.agreement
    );
}

#[test]
fn broadcast_reaches_everyone_from_any_source() {
    let (env, s, algo, d_hat) = setup(120, 9.0, 4, 33, SubstrateMode::Oracle);
    for (i, src) in [0u32, 59, 119].into_iter().enumerate() {
        let out = broadcast(
            &env,
            &s,
            &algo,
            NodeId(src),
            1000 + src as u64,
            d_hat,
            7 + i as u64,
        );
        assert!(
            out.coverage * 10 >= 120 * 9,
            "source {src}: coverage {}/120",
            out.coverage
        );
    }
}

#[test]
fn multimessage_broadcast_beats_sequential_floods() {
    // k messages in one gossip phase should be cheaper than k separate
    // single-source broadcasts (the backbone pipelines them).
    let (env, s, algo, d_hat) = setup(100, 9.0, 4, 35, SubstrateMode::Oracle);
    let k = 6;
    let messages: Vec<(NodeId, u64)> = (0..k).map(|i| (NodeId(i as u32 * 15), i as u64)).collect();
    let many = broadcast_many(&env, &s, &algo, &messages, d_hat, 17);
    assert_eq!(many.unhoisted, 0);
    assert!(
        many.full_coverage * 10 >= 100 * 9,
        "full coverage {}/100",
        many.full_coverage
    );
    let single = broadcast(&env, &s, &algo, NodeId(0), 0, d_hat, 19);
    assert!(
        many.total_slots() < single.total_slots() * k as u64,
        "gossip ({}) should beat {k} sequential broadcasts ({} each)",
        many.total_slots(),
        single.total_slots()
    );
}

#[test]
fn ruling_set_sound_on_clustered_hotspots() {
    // Skewed density (hotspots) is where phase one earns its keep.
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(71);
    let deploy = Deployment::clustered(5, 80, 12.0, 1.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(4, &params, 400);
    let r = params.transmission_range() / 4.0;
    let out = ruling_set(&env, &algo, MisConfig::new(r), 3);
    assert_eq!(out.independence_violations(&env.positions), 0);
    assert_eq!(out.domination_holes(&env.positions), 0);
}

#[test]
fn mis_is_deterministic_per_seed() {
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(73);
    let deploy = Deployment::uniform(150, 12.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(2, &params, 150);
    let r = params.transmission_range() / 4.0;
    let a = maximal_independent_set(&env, &algo, MisConfig::new(r), 11);
    let b = maximal_independent_set(&env, &algo, MisConfig::new(r), 11);
    assert_eq!(a.members(), b.members(), "same seed, same set");
    let c = maximal_independent_set(&env, &algo, MisConfig::new(r), 12);
    // Different seed *may* give the same set on small instances, but the
    // halt dynamics should differ somewhere.
    assert!(
        c.halt_round != a.halt_round || c.members() != a.members(),
        "different seeds should not replay identical executions"
    );
}

#[test]
fn exchange_and_aggregation_disagree_on_channel_value() {
    // The E14 contrast at test scale: aggregation gains from channels,
    // exchange does not.
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(75);
    let deploy = Deployment::disk(50, params.r_eps() / 4.0, &mut rng);
    let ex1 = run_info_exchange(&params, deploy.points(), ExchangeConfig::new(1, 50), 5)
        .median_completion()
        .expect("F=1 exchange completes");
    let ex8 = run_info_exchange(&params, deploy.points(), ExchangeConfig::new(8, 50), 5)
        .median_completion()
        .expect("F=8 exchange completes");
    // Flat: within 2x either way, and both above the receive floor.
    assert!(ex1 >= 49 && ex8 >= 49);
    let ratio = ex1 as f64 / ex8 as f64;
    assert!((0.5..2.0).contains(&ratio), "ex1={ex1} ex8={ex8}");
}

proptest! {
    /// LeaderAgg is a commutative idempotent monoid over arbitrary
    /// candidates (the flood path relies on all three laws).
    #[test]
    fn leader_agg_laws_hold_for_arbitrary_candidates(
        ranks in prop::collection::vec(0u64..u64::MAX, 3),
        ids in prop::collection::vec(0u32..10_000, 3),
    ) {
        let agg = LeaderAgg;
        let v: Vec<Candidate> = ranks
            .iter()
            .zip(ids.iter())
            .map(|(&rank, &id)| Candidate { rank, id: NodeId(id) })
            .collect();
        prop_assert_eq!(agg.combine(&v[0], &agg.identity()), v[0]);
        prop_assert_eq!(agg.combine(&v[0], &v[0]), v[0]);
        prop_assert_eq!(agg.combine(&v[0], &v[1]), agg.combine(&v[1], &v[0]));
        prop_assert_eq!(
            agg.combine(&v[0], &agg.combine(&v[1], &v[2])),
            agg.combine(&agg.combine(&v[0], &v[1]), &v[2])
        );
    }

    /// BcastAgg laws over arbitrary optional sourced messages.
    #[test]
    fn bcast_agg_laws_hold_for_arbitrary_messages(
        vals in prop::collection::vec(
            prop::option::of((0u32..1000, 0u64..u64::MAX)), 3),
    ) {
        let agg = BcastAgg;
        let v: Vec<Option<Sourced>> = vals
            .into_iter()
            .map(|o| o.map(|(src, payload)| Sourced { src: NodeId(src), payload }))
            .collect();
        prop_assert_eq!(agg.combine(&v[0], &agg.identity()), v[0]);
        prop_assert_eq!(agg.combine(&v[0], &v[0]), v[0]);
        prop_assert_eq!(agg.combine(&v[0], &v[1]), agg.combine(&v[1], &v[0]));
        prop_assert_eq!(
            agg.combine(&v[0], &agg.combine(&v[1], &v[2])),
            agg.combine(&agg.combine(&v[0], &v[1]), &v[2])
        );
    }

    /// Candidate draws are deterministic in (seed, id) and never collide
    /// with the identity element.
    #[test]
    fn candidate_draws_are_deterministic(seed in 0u64..u64::MAX, id in 0u32..u32::MAX) {
        let a = Candidate::draw(seed, NodeId(id));
        let b = Candidate::draw(seed, NodeId(id));
        prop_assert_eq!(a, b);
        prop_assert!(a.rank >= 1);
        prop_assert!(a.is_some());
    }

    /// Disk deployments stay inside their radius.
    #[test]
    fn disk_deployment_is_within_radius(
        n in 1usize..100,
        radius in 0.1f64..50.0,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = Deployment::disk(n, radius, &mut rng);
        for p in d.points() {
            prop_assert!(p.dist(Point::new(0.0, 0.0)) <= radius + 1e-9);
        }
    }
}

#[test]
fn hoist_survives_same_cluster_source_contention() {
    // All sources crowded into one cluster: the decay sweep must resolve
    // them one at a time without losing any.
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(91);
    let deploy = Deployment::disk(80, 1.8, &mut rng); // single cluster scale
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(4, &params, 80);
    let mut cfg = StructureConfig::new(algo, 91);
    cfg.substrate = SubstrateMode::Oracle;
    cfg.cluster_radius = 2.0;
    let s = build_structure(&env, &cfg);
    let d_hat = env.comm_graph().diameter_approx() + 2;
    // 10 sources, all inevitably in the same (or very few) clusters.
    let messages: Vec<(NodeId, u64)> = (0..10).map(|i| (NodeId(i * 7), i as u64)).collect();
    let out = broadcast_many(&env, &s, &algo, &messages, d_hat, 23);
    assert_eq!(out.unhoisted, 0, "decay hoist lost a source");
    assert!(
        out.full_coverage * 10 >= 80 * 9,
        "coverage {}/80",
        out.full_coverage
    );
}

#[test]
fn leader_election_across_many_hops() {
    // A corridor topology: D is large, so the flood term dominates; the
    // election must still be near-unanimous.
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(93);
    let deploy = Deployment::corridor(220, 60.0, 4.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let graph = env.comm_graph();
    assert!(graph.diameter_approx() >= 8, "corridor should be multi-hop");
    let algo = AlgoConfig::practical(4, &params, 220);
    let mut cfg = StructureConfig::new(algo, 93);
    cfg.substrate = SubstrateMode::Oracle;
    let s = build_structure(&env, &cfg);
    let d_hat = graph.diameter_approx() + 2;
    let out = elect_leader(&env, &s, &algo, d_hat, 29);
    assert!(out.leader_knows);
    assert!(
        out.agreement * 10 >= 220 * 9,
        "agreement {}/220 across {} hops",
        out.agreement,
        graph.diameter_approx()
    );
}

#[test]
fn mis_sound_on_jittered_grids() {
    // Grids are the adversarial-regularity case for geometric protocols
    // (synchronized distances, maximal packing).
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(95);
    let deploy = Deployment::grid(18, 18, 0.8, 0.1, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(2, &params, 324);
    let r = params.transmission_range() / 4.0;
    let out = maximal_independent_set(&env, &algo, MisConfig::new(r), 31);
    assert_eq!(out.independence_violations(&env.positions), 0);
    assert_eq!(out.domination_holes(&env.positions), 0);
}

#[test]
fn leader_election_on_tiny_networks() {
    // n = 1 and n = 2: the degenerate cases every distributed pipeline
    // must survive (single dominator, empty reporter sets).
    let params = SinrParams::default();
    for n in [1usize, 2] {
        let deploy = Deployment::from_points(
            "tiny",
            (0..n).map(|i| Point::new(i as f64 * 0.5, 0.0)).collect(),
        );
        let env = NetworkEnv::new(params, &deploy);
        let algo = AlgoConfig::practical(2, &params, n);
        let mut cfg = StructureConfig::new(algo, 1);
        cfg.substrate = SubstrateMode::Oracle;
        let s = build_structure(&env, &cfg);
        let out = elect_leader(&env, &s, &algo, 2, 5);
        assert!(
            out.leader.index() < n,
            "n={n}: leader {} out of range",
            out.leader
        );
        assert!(out.leader_knows, "n={n}: leader must know");
        assert_eq!(out.agreement, n, "n={n}: all must agree");
    }
}

#[test]
fn gossip_stress_half_the_network_are_sources() {
    // k = 30 messages among n = 60 nodes: the hoist must drain deep
    // per-cluster queues and the gossip must push 30 distinct packets
    // into every node.
    let (env, s, algo, d_hat) = setup(60, 7.0, 4, 41, SubstrateMode::Oracle);
    let messages: Vec<(NodeId, u64)> = (0..30).map(|i| (NodeId(i * 2), 1000 + i as u64)).collect();
    let out = broadcast_many(&env, &s, &algo, &messages, d_hat, 43);
    assert_eq!(out.unhoisted, 0, "hoist lost sources under load");
    assert!(
        out.full_coverage * 10 >= 60 * 9,
        "coverage {}/60 under k=30 load (delivery {:.2})",
        out.full_coverage,
        out.delivery_fraction(30)
    );
}
