//! The `MCA_FORCE_PAR=1` override — the lever CI's determinism job pulls
//! to re-run the whole suite under maximum fan-out.
//!
//! Lives in its own test binary: the override is read once per process,
//! so it must be set before the first `Engine` is built and would leak
//! into unrelated tests otherwise.

use multichannel_adhoc::prelude::*;
use multichannel_adhoc::radio::{Action, Observation, Protocol};
use rand::rngs::SmallRng;

struct Beacon(u32);
impl Protocol for Beacon {
    type Msg = u32;
    fn act(&mut self, _s: u64, _r: &mut SmallRng) -> Action<u32> {
        if self.0 == 0 {
            Action::Transmit {
                channel: Channel::FIRST,
                msg: 7,
            }
        } else {
            Action::Listen {
                channel: Channel::FIRST,
            }
        }
    }
    fn observe(&mut self, _s: u64, _o: Observation<u32>, _r: &mut SmallRng) {}
}

#[test]
fn mca_force_par_forces_every_fanout_axis() {
    std::env::set_var("MCA_FORCE_PAR", "1");
    let positions = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
    let engine = Engine::new(
        SinrParams::default(),
        positions.clone(),
        vec![Beacon(0), Beacon(1)],
        42,
    );
    assert!(engine.par_channels(), "par_channels must be forced on");
    assert!(engine.par_shards(), "par_shards must be forced on");
    assert!(engine.shards() >= 2, "a shard grid must be forced on");

    // Builder calls cannot switch the forced flags back off...
    let engine = engine
        .with_par_channels(false)
        .with_par_shards(false)
        .with_shards(0);
    assert!(engine.par_channels() && engine.par_shards() && engine.shards() >= 2);
    // ...and an explicit larger shard grid is respected as-is.
    let mut engine = engine.with_shards(9);
    assert_eq!(engine.shards(), 9);

    engine.step();
    assert_eq!(
        engine.metrics().receptions,
        1,
        "the forced engine still runs"
    );
}
