//! Bitwise contracts of the SIMD lane kernels (`mca_sinr::lanes`),
//! exercised through the public facade over random geometry.
//!
//! Every property here is *exact* equality on float bits, not tolerance:
//! the lane kernels' whole value proposition is that turning them on can
//! never change a golden byte. The properties cover:
//!
//! 1. [`PowerKernel::eval_lanes`] is element-wise bitwise
//!    [`PowerKernel::eval`] on every α path (integer fast paths and the
//!    general `powf` arm alike);
//! 2. the transposed listener-lane fold (`accumulate_span_lanes`) equals
//!    eight independent scalar accumulator chains, masks included;
//! 3. the single-listener SoA fold (`accumulate_identity`) equals the
//!    scalar walk, including `chunks_exact` remainders of every size;
//! 4. batched resolution (`resolve_batch_into` / `resolve_indexed_into`)
//!    is bitwise the per-listener `resolve`, in Exact and Fast modes,
//!    lanes on or off, for any batch length (remainder lanes included).
//!
//! [`PowerKernel::eval_lanes`]: multichannel_adhoc::sinr::PowerKernel::eval_lanes
//! [`PowerKernel::eval`]: multichannel_adhoc::sinr::PowerKernel::eval

use multichannel_adhoc::geom::{BoundingBox, Point};
use multichannel_adhoc::sinr::lanes::{
    accumulate_identity, accumulate_span_lanes, far_terms_lanes, rect_metrics_lanes, LANE_WIDTH,
};
use multichannel_adhoc::sinr::{ChannelResolver, ResolveMode, SinrParams};
use proptest::prelude::*;

/// α values spanning every `PowerKernel` dispatch arm: the cubic,
/// quartic, quintic, and sextic integer fast paths plus fractional
/// exponents that fall through to `powf`. (The vendored proptest has no
/// `prop_oneof!`; an index pick over a fractional draw does the same.)
fn alpha_strategy() -> impl Strategy<Value = f64> {
    (0usize..5, 2.1..6.9f64).prop_map(|(arm, frac)| match arm {
        0 => 3.0,
        1 => 4.0,
        2 => 5.0,
        3 => 6.0,
        _ => frac,
    })
}

fn params_for(alpha: f64, fast: bool) -> SinrParams {
    let p = SinrParams::with_range(alpha, 1.5, 1.0, 8.0, 0.5);
    if fast {
        p.with_resolve(ResolveMode::fast())
    } else {
        p
    }
}

/// Splits a generated point list into the lane SoA arrays.
fn to_lanes(pts: &[(f64, f64)]) -> ([f64; LANE_WIDTH], [f64; LANE_WIDTH]) {
    let mut lxs = [0.0; LANE_WIDTH];
    let mut lys = [0.0; LANE_WIDTH];
    for l in 0..LANE_WIDTH {
        lxs[l] = pts[l].0;
        lys[l] = pts[l].1;
    }
    (lxs, lys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: the vector power kernel is element-wise bitwise the
    /// scalar one, for every α dispatch arm.
    #[test]
    fn eval_lanes_is_elementwise_eval(
        alpha in alpha_strategy(),
        d_raw in proptest::collection::vec(0.0..5_000.0f64, LANE_WIDTH),
    ) {
        let kernel = params_for(alpha, false).power_kernel();
        let d_sq: [f64; LANE_WIDTH] = d_raw.as_slice().try_into().unwrap();
        let lanes = kernel.eval_lanes(d_sq);
        for (j, &d) in d_sq.iter().enumerate() {
            prop_assert_eq!(lanes[j].to_bits(), kernel.eval(d).to_bits(),
                "lane {} diverged at alpha {}", j, alpha);
        }
    }

    /// Property 2: the cross-lane near fold advances eight scalar
    /// accumulator chains exactly — masked lanes are untouched (the
    /// `·0.0 → +0.0` additive identity), active lanes fold in element
    /// order with the first-strongest-wins tie-break on transmitter id.
    #[test]
    fn span_lanes_fold_is_eight_scalar_chains(
        alpha in alpha_strategy(),
        pts in proptest::collection::vec((0.0..60.0f64, 0.0..60.0f64), 0..40),
        lpts in proptest::collection::vec((0.0..60.0f64, 0.0..60.0f64), LANE_WIDTH),
        mask_bits in proptest::collection::vec(0u8..2, LANE_WIDTH),
        id_base in 0u32..1_000,
    ) {
        let kernel = params_for(alpha, false).power_kernel();
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        // Non-contiguous ids: the tie-break runs on original indices.
        let ids: Vec<u32> = (0..pts.len() as u32).map(|k| id_base + 3 * k).collect();
        let (lxs, lys) = to_lanes(&lpts);
        let mut mask = [0.0; LANE_WIDTH];
        for l in 0..LANE_WIDTH {
            mask[l] = f64::from(mask_bits[l]);
        }

        let mut total = [0.25; LANE_WIDTH];
        let mut best_pow = [f64::NEG_INFINITY; LANE_WIDTH];
        let mut best = [0.0f64; LANE_WIDTH];
        accumulate_span_lanes(
            &kernel, &xs, &ys, &ids, &lxs, &lys, &mask,
            &mut total, &mut best_pow, &mut best,
        );

        // Scalar reference: one independent chain per lane, same walk.
        for l in 0..LANE_WIDTH {
            let mut t = 0.25;
            let mut bp = f64::NEG_INFINITY;
            let mut b = 0.0f64;
            for (k, &(x, y)) in pts.iter().enumerate() {
                let dx = x - lxs[l];
                let dy = y - lys[l];
                let pw = kernel.eval(dx * dx + dy * dy);
                t += pw * mask[l];
                let i = f64::from(ids[k]);
                if mask[l] != 0.0 && (pw > bp || (pw == bp && i < b)) {
                    bp = pw;
                    b = i;
                }
            }
            prop_assert_eq!(total[l].to_bits(), t.to_bits(), "total lane {}", l);
            prop_assert_eq!(best_pow[l].to_bits(), bp.to_bits(), "best_pow lane {}", l);
            prop_assert_eq!(best[l].to_bits(), b.to_bits(), "best lane {}", l);
        }
    }

    /// Property 2b: the listener-lane rect/far kernels equal the scalar
    /// clamp-and-evaluate per lane.
    #[test]
    fn rect_and_far_lanes_match_scalar(
        alpha in alpha_strategy(),
        rect in (0.0..30.0f64, 0.0..30.0f64, 0.1..20.0f64, 0.1..20.0f64),
        count in 1.0..50.0f64,
        lpts in proptest::collection::vec((-10.0..70.0f64, -10.0..70.0f64), LANE_WIDTH),
    ) {
        let kernel = params_for(alpha, false).power_kernel();
        let (min_x, min_y, w, h) = rect;
        let (max_x, max_y) = (min_x + w, min_y + h);
        let (cx, cy) = ((min_x + max_x) / 2.0, (min_y + max_y) / 2.0);
        let (lxs, lys) = to_lanes(&lpts);
        let (d_min, terms) =
            rect_metrics_lanes(&kernel, min_x, min_y, max_x, max_y, cx, cy, count, &lxs, &lys);
        let far = far_terms_lanes(&kernel, cx, cy, count, &lxs, &lys);
        for l in 0..LANE_WIDTH {
            let px = lxs[l].max(min_x).min(max_x);
            let py = lys[l].max(min_y).min(max_y);
            let (dx, dy) = (px - lxs[l], py - lys[l]);
            prop_assert_eq!(d_min[l].to_bits(), (dx * dx + dy * dy).to_bits());
            let (ex, ey) = (cx - lxs[l], cy - lys[l]);
            let term = kernel.eval(ex * ex + ey * ey) * count;
            prop_assert_eq!(terms[l].to_bits(), term.to_bits());
            prop_assert_eq!(far[l].to_bits(), term.to_bits());
        }
    }

    /// Property 3: the single-listener SoA fold equals the scalar walk
    /// for every length (the `chunks_exact` remainder sweep).
    #[test]
    fn identity_fold_matches_scalar_walk(
        alpha in alpha_strategy(),
        pts in proptest::collection::vec((0.0..60.0f64, 0.0..60.0f64), 0..26),
        lpt in (0.0..60.0f64, 0.0..60.0f64),
    ) {
        let kernel = params_for(alpha, false).power_kernel();
        let (lx, ly) = lpt;
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let mut total = 0.0;
        let mut best_pow = f64::NEG_INFINITY;
        let mut best = usize::MAX;
        accumulate_identity(&kernel, &xs, &ys, lx, ly, &mut total, &mut best_pow, &mut best);
        let mut t = 0.0;
        let mut bp = f64::NEG_INFINITY;
        let mut b = usize::MAX;
        for (k, &(x, y)) in pts.iter().enumerate() {
            let dx = x - lx;
            let dy = y - ly;
            let pw = kernel.eval(dx * dx + dy * dy);
            t += pw;
            if pw > bp || (pw == bp && k < b) {
                bp = pw;
                b = k;
            }
        }
        prop_assert_eq!(total.to_bits(), t.to_bits());
        prop_assert_eq!(best_pow.to_bits(), bp.to_bits());
        prop_assert_eq!(best, b);
    }

    /// Property 4: batched resolution is bitwise the per-listener walk —
    /// Exact and Fast, lanes on and off, slice and indexed entry points,
    /// any batch length (including sub-lane batches and odd remainders).
    #[test]
    fn batched_resolution_is_bitwise_per_listener(
        alpha in alpha_strategy(),
        fast_bit in 0u8..2,
        pts in proptest::collection::vec((0.0..80.0f64, 0.0..80.0f64), 16..90),
        lraw in proptest::collection::vec((0.0..80.0f64, 0.0..80.0f64), 1..30),
        extra in 0.0..2.0f64,
    ) {
        let params = params_for(alpha, fast_bit == 1);
        let txs: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let listeners: Vec<Point> = lraw.iter().map(|&(x, y)| Point::new(x, y)).collect();
        for lanes_on in [true, false] {
            let resolver = ChannelResolver::new(&params, &txs).with_lanes(lanes_on);
            let mut batch = Vec::new();
            resolver.resolve_batch_into(&listeners, extra, &mut batch);
            prop_assert_eq!(batch.len(), listeners.len());
            for (k, &l) in listeners.iter().enumerate() {
                let one = resolver.resolve(l, extra);
                prop_assert_eq!(batch[k].decoded, one.decoded);
                prop_assert_eq!(batch[k].total_power.to_bits(), one.total_power.to_bits());
                prop_assert_eq!(batch[k].signal.to_bits(), one.signal.to_bits());
                prop_assert_eq!(batch[k].sinr.to_bits(), one.sinr.to_bits());
            }
            // The indexed entry point sees the same world through keys.
            let keys: Vec<u32> = (0..listeners.len() as u32).rev().collect();
            let mut indexed = Vec::new();
            resolver.resolve_indexed_into(&listeners, &keys, extra, &mut indexed);
            for (j, &k) in keys.iter().enumerate() {
                prop_assert_eq!(indexed[j], batch[k as usize]);
            }
            // Task-scoped batches agree too (candidate-pruned walk).
            let bbox = BoundingBox::from_points(listeners.iter().copied()).unwrap();
            let task = resolver.task(bbox);
            let mut task_out = Vec::new();
            task.resolve_batch_into(&listeners, extra, &mut task_out);
            for (k, o) in batch.iter().enumerate() {
                prop_assert_eq!(&task_out[k], o);
            }
        }
    }
}
