//! Scheduling-stress determinism suite for the persistent work-stealing
//! pool: the committed golden metrics (`scenarios/GOLDEN_trials.json`)
//! must come out **byte-identical** whatever the pool looks like —
//! any worker count, any steal schedule, any interleaving of unit
//! execution. The determinism contract is architectural (per-listener
//! outcomes are pure functions of the channel's transmitter set, and the
//! merge is ordered channel-major/shard-minor), so scheduling is free to
//! be greedy; these tests are the teeth behind that claim.
//!
//! All tests force the parallel path (`MCA_FORCE_PAR=1`, read once per
//! process) and serialize through one lock because thread count and the
//! steal-stress capacity are process-global pool configuration.

use proptest::prelude::*;
use std::sync::Mutex;

const GOLDEN: &str = "scenarios/GOLDEN_trials.json";

static POOL_CONFIG_LOCK: Mutex<()> = Mutex::new(());

fn config_guard() -> std::sync::MutexGuard<'static, ()> {
    // `MCA_FORCE_PAR` is latched on first engine construction; setting it
    // before taking the guard guarantees every test in this binary runs
    // the forced-parallel configuration regardless of scheduling order.
    std::env::set_var("MCA_FORCE_PAR", "1");
    POOL_CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Renders the goldens on the live pool configuration and byte-compares
/// them against the committed file.
fn assert_goldens(what: &str) {
    if let Err(e) = mca_bench::check_golden_trials(GOLDEN) {
        panic!("goldens diverged ({what}): {e}");
    }
}

#[test]
fn goldens_byte_identical_at_every_thread_count() {
    let _g = config_guard();
    for threads in [1usize, 2, 4, 8] {
        rayon::set_num_threads(threads);
        assert_goldens(&format!("{threads} threads"));
    }
    rayon::set_num_threads(0);
}

#[test]
fn goldens_byte_identical_under_injected_steal_storm() {
    let _g = config_guard();
    // Capacity 1 funnels every submission through worker 0's one-slot
    // deque and the shared injector: workers 1..n make progress only by
    // stealing, so unit execution order bears no resemblance to
    // submission order. The bytes must not care.
    rayon::set_num_threads(8);
    rayon::set_test_deque_capacity(1);
    let steals_before = rayon::pool_stats().steals;
    assert_goldens("8 threads, deque capacity 1");
    rayon::set_test_deque_capacity(0);
    assert!(
        rayon::pool_stats().steals > steals_before,
        "the capacity funnel must actually manufacture steals"
    );
    rayon::set_num_threads(0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Random pool shapes: a drawn worker count and deque capacity give
    /// a different greedy schedule (and a different steal pattern) every
    /// case, and every case must reproduce the committed bytes.
    #[test]
    fn goldens_byte_identical_under_random_pool_shapes(
        threads in 1usize..9,
        cap in 0usize..4,
    ) {
        let _g = config_guard();
        rayon::set_num_threads(threads);
        rayon::set_test_deque_capacity(cap);
        let r = mca_bench::check_golden_trials(GOLDEN);
        rayon::set_test_deque_capacity(0);
        rayon::set_num_threads(0);
        prop_assert!(
            r.is_ok(),
            "goldens diverged at {} threads, cap {}: {:?}", threads, cap, r.err()
        );
    }
}
