//! Tier-1 gate for the committed scenario catalog: every `.toml` under
//! `scenarios/` must parse through the strict loader. Files may carry a
//! `[matrix]` sweep table, so the gate loads them as [`SweepFile`]s (a
//! plain scenario is the one-scenario, one-seed sweep) and validates the
//! expansion alongside the base.

use mca_scenario::{Scenario, SweepFile};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

#[test]
fn every_committed_scenario_file_parses() {
    let mut count = 0;
    let mut sweeps = 0;
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ directory") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "toml") {
            continue;
        }
        let sweep = SweepFile::load(&path).unwrap_or_else(|e| panic!("{e}"));
        let scenario = &sweep.base;
        assert!(!scenario.name.is_empty(), "{}", path.display());
        assert!(!scenario.is_empty(), "{}: deploys no nodes", path.display());
        assert!(scenario.channels >= 1, "{}", path.display());
        let set = sweep
            .trial_set()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!set.is_empty(), "{}: expands to no trials", path.display());
        if sweep.is_sweep() {
            sweeps += 1;
        }
        count += 1;
    }
    assert!(count >= 9, "catalog shrank: only {count} scenario files");
    assert!(sweeps >= 1, "catalog lost its [matrix] sweep example");
}

#[test]
fn catalog_files_reject_tampering() {
    // The strict loader catches a representative corruption of a real
    // committed file: an extra unknown key (appended text lands in the
    // file's last open table, `[deployment]`).
    let path = scenarios_dir().join("static-uniform.toml");
    let mut text = std::fs::read_to_string(path).unwrap();
    text.push_str("unknown_knob = 3\n");
    let e = Scenario::from_toml_str(&text).unwrap_err();
    assert_eq!(e.path, "deployment.unknown_knob");
    assert!(e.line > 0);
}
