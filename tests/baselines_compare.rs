//! Cross-checks between the paper's algorithm and the baselines: everyone
//! must agree on the answer; the round counts must order the way the
//! complexity bounds say.

use multichannel_adhoc::baselines;
use multichannel_adhoc::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn workload(n: usize, side: f64, seed: u64) -> (Deployment, Vec<i64>, i64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let deploy = Deployment::uniform(n, side, &mut rng);
    let inputs: Vec<i64> = (0..n).map(|i| (i as i64 * 271) % 9973).collect();
    let expect = *inputs.iter().max().unwrap();
    (deploy, inputs, expect)
}

#[test]
fn all_algorithms_agree_on_the_max() {
    let params = SinrParams::default();
    let (deploy, inputs, expect) = workload(200, 8.0, 5);
    let graph = CommGraph::build(deploy.points(), params.r_eps());
    let d_hat = graph.diameter_approx() + 2;

    // Ours.
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(8, &params, 200);
    let mut cfg = StructureConfig::new(algo, 5);
    cfg.substrate = SubstrateMode::Oracle;
    let s = build_structure(&env, &cfg);
    let ours = aggregate(
        &env,
        &s,
        &algo,
        MaxAgg,
        &inputs,
        InterclusterMode::Flood,
        d_hat,
        7,
    );
    assert_eq!(ours.values[0], Some(expect), "structure aggregation");

    // Single-channel decay tree.
    let b = baselines::run_single_channel(
        &params,
        deploy.points(),
        &inputs,
        NodeId(0),
        d_hat,
        graph.max_degree() as u64,
        200,
        7,
    );
    assert_eq!(b.results[0], Some(expect), "single-channel baseline");

    // Naive TDMA.
    let (values, _) = baselines::run_naive_tdma(&params, deploy.points(), &inputs, d_hat, 7);
    assert!(values.iter().all(|&v| v == expect), "naive TDMA");

    // Graph-model flood.
    let g =
        baselines::run_graph_flood(deploy.points(), params.r_eps(), &inputs, 8, 0.2, 500_000, 7);
    assert!(g.values.iter().all(|&v| v == expect), "graph-model flood");
}

#[test]
fn multichannel_beats_single_channel_baseline_when_dense() {
    let params = SinrParams::default();
    let (deploy, inputs, expect) = workload(300, 6.0, 9);
    let graph = CommGraph::build(deploy.points(), params.r_eps());
    let d_hat = graph.diameter_approx() + 2;

    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(8, &params, 300);
    let mut cfg = StructureConfig::new(algo, 9);
    cfg.substrate = SubstrateMode::Oracle;
    cfg.cluster_radius = 2.0;
    let s = build_structure(&env, &cfg);
    let ours = aggregate(
        &env,
        &s,
        &algo,
        MaxAgg,
        &inputs,
        InterclusterMode::Flood,
        d_hat,
        11,
    );
    assert_eq!(ours.values[0], Some(expect));

    let b = baselines::run_single_channel(
        &params,
        deploy.points(),
        &inputs,
        NodeId(0),
        d_hat,
        graph.max_degree() as u64,
        300,
        11,
    );
    let ours_total = s.report.total_slots() + ours.total_slots();
    assert!(
        ours_total < b.slots,
        "structure ({ours_total}) should beat the Θ(Δ log n) baseline ({})",
        b.slots
    );
}

#[test]
fn chain_lower_bound_binds_all_algorithms() {
    // On the exponential chain every descending schedule is serialized; the
    // relay bound n-1 is what any aggregation pays toward the origin.
    let params = SinrParams::default();
    assert!(params.chain_lower_bound_applies());
    for n in [8usize, 12] {
        assert_eq!(
            baselines::max_concurrent_successes_exhaustive(&params, n),
            1
        );
        assert_eq!(baselines::greedy_relay_slots(n), (n - 1) as u64);
    }
}

#[test]
fn coloring_baseline_and_structure_both_proper() {
    let params = SinrParams::default();
    let (deploy, _, _) = workload(150, 10.0, 13);
    let algo1 = AlgoConfig::practical(1, &params, 150);
    let b = baselines::run_single_coloring(&params, deploy.points(), &algo1, 512, 13);
    let r = params.r_eps().min(params.transmission_range() / 2.0);
    let g = CommGraph::build(deploy.points(), r);
    let colors: Vec<u32> = b.colors.iter().map(|c| c.unwrap()).collect();
    assert_eq!(g.coloring_violation(&colors), None);

    let env = NetworkEnv::new(params, &deploy);
    let algo8 = AlgoConfig::practical(8, &params, 150);
    let mut cfg = StructureConfig::new(algo8, 13);
    cfg.substrate = SubstrateMode::Oracle;
    let s = build_structure(&env, &cfg);
    let out = color_nodes(&env, &s, &algo8, 13);
    assert_eq!(out.uncolored, 0);
    let colors: Vec<u32> = out.colors.iter().map(|c| c.unwrap()).collect();
    assert_eq!(env.comm_graph().coloring_violation(&colors), None);
}
