//! Shard-boundary correctness of the sharded engine.
//!
//! The contract under test (see `docs/SHARDED_ENGINE.md`): sharding is an
//! *execution* knob — for any shard count, parallel or sequential, under
//! churn and motion, every observation a protocol makes is bit-for-bit
//! what the unsharded sequential engine delivers. The proptests place
//! transmitters at arbitrary positions (including exactly on shard edges
//! and inside halo rings) and interleave churn; the deterministic tests
//! pin transmitters *exactly* onto the partition lines, where any
//! off-by-one in halo classification would first bite.

use multichannel_adhoc::prelude::*;
use multichannel_adhoc::radio::{Action, Metrics, Observation, Protocol};
use multichannel_adhoc::sinr::ResolveMode;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random multi-channel chatter recording every observation verbatim,
/// floats included — the payload for bit-identity comparisons.
struct Recorder {
    channels: u16,
    p_tx: f64,
    heard: Vec<(u64, u32, u64, f64, f64, f64)>,
    noise: Vec<(u64, f64)>,
}

impl Recorder {
    fn new(channels: u16, p_tx: f64) -> Self {
        Recorder {
            channels,
            p_tx,
            heard: Vec::new(),
            noise: Vec::new(),
        }
    }
}

impl Protocol for Recorder {
    type Msg = u64;
    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<u64> {
        let ch = Channel(rng.gen_range(0..self.channels));
        if rng.gen_bool(self.p_tx) {
            Action::Transmit {
                channel: ch,
                msg: slot,
            }
        } else {
            Action::Listen { channel: ch }
        }
    }
    fn observe(&mut self, slot: u64, obs: Observation<u64>, _r: &mut SmallRng) {
        match obs {
            Observation::Received(r) => {
                self.heard
                    .push((slot, r.from.0, r.msg, r.signal, r.sinr, r.total_power))
            }
            Observation::Noise { total_power } => self.noise.push((slot, total_power)),
            _ => {}
        }
    }
}

type Logs = Vec<(Vec<(u64, u32, u64, f64, f64, f64)>, Vec<(u64, f64)>)>;

/// Runs `slots` slots of chatter over `positions` with the given engine
/// configuration, churn, and a deterministic motion schedule (node
/// `slot % n` drifts a little each slot — enough to cross shard
/// boundaries and fire reassignment events). Returns the full metrics and
/// every node's verbatim observation log.
#[allow(clippy::too_many_arguments)]
fn run_chatter(
    positions: &[Point],
    channels: u16,
    mode: ResolveMode,
    faults: FaultPlan,
    shards: u16,
    par: bool,
    slots: u64,
    moving: bool,
) -> (Metrics, Logs) {
    let params = SinrParams::default().with_resolve(mode);
    let protocols = (0..positions.len())
        .map(|_| Recorder::new(channels, 0.4))
        .collect();
    let mut engine = Engine::new(params, positions.to_vec(), protocols, 9)
        .with_faults(faults)
        .with_shards(shards)
        .with_par_channels(par)
        .with_par_shards(par);
    for slot in 0..slots {
        if moving && !positions.is_empty() {
            // Deterministic drift, identical across configurations: one
            // node nudges diagonally per slot.
            let i = (slot as usize) % positions.len();
            let p = engine.positions()[i];
            engine.positions_mut()[i] = Point::new(p.x + 0.9, p.y + 0.7);
        }
        engine.step();
    }
    let metrics = engine.metrics().clone();
    let logs = engine
        .into_protocols()
        .into_iter()
        .map(|r| (r.heard, r.noise))
        .collect();
    (metrics, logs)
}

/// A world large enough that single-channel sharding actually engages
/// (listeners comfortably beyond the engagement threshold), with corner
/// pins so the shard partition's bounding box — and therefore its edge
/// coordinates — are exactly known.
fn pinned_world(n: usize, side: f64, shards: u16) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(77);
    let mut positions = vec![Point::new(0.0, 0.0), Point::new(side, side)];
    // Transmitters exactly on every interior shard edge, and in the halo
    // ring just inside/outside of each.
    let step = side / f64::from(shards);
    for k in 1..shards {
        let x = f64::from(k) * step;
        positions.push(Point::new(x, side * 0.25));
        positions.push(Point::new(side * 0.75, x));
        positions.push(Point::new(x + 1e-9, side * 0.5));
        positions.push(Point::new(x - 1e-9, side * 0.35));
    }
    while positions.len() < n {
        positions.push(Point::new(
            rng.gen_range(0.0..side),
            rng.gen_range(0.0..side),
        ));
    }
    positions
}

#[test]
fn shard_edge_transmitters_heard_identically_exact_and_fast() {
    for mode in [ResolveMode::Exact, ResolveMode::fast()] {
        let positions = pinned_world(380, 32.0, 4);
        let (m_ref, l_ref) =
            run_chatter(&positions, 1, mode, FaultPlan::none(), 0, false, 30, false);
        for (shards, par) in [(4, false), (4, true), (3, true), (7, true)] {
            let (m, l) = run_chatter(
                &positions,
                1,
                mode,
                FaultPlan::none(),
                shards,
                par,
                30,
                false,
            );
            assert_eq!(m_ref, m, "metrics diverged (shards={shards}, par={par})");
            assert_eq!(
                l_ref, l,
                "an observation diverged (shards={shards}, par={par}, mode={mode:?})"
            );
        }
    }
}

#[test]
fn sharded_engine_builds_and_maintains_its_partition() {
    let positions = pinned_world(380, 32.0, 4);
    let params = SinrParams::default();
    let protocols = (0..positions.len())
        .map(|_| Recorder::new(1, 0.4))
        .collect();
    let mut engine = Engine::new(params, positions, protocols, 3).with_shards(4);
    assert!(engine.shard_map().is_none(), "map is built lazily");
    engine.step();
    let map = engine.shard_map().expect("built at first sharded slot");
    assert_eq!(map.shards(), 4);
    let before = map.shard_of(0);
    // Drag node 0 across the whole plane: the partition must follow via
    // the event stream (node 0 is pinned at the bbox corner, so this
    // crosses every column).
    engine.positions_mut()[0] = Point::new(31.9, 31.9);
    engine.step();
    let map = engine.shard_map().unwrap();
    assert_ne!(map.shard_of(0), before, "reassignment must follow motion");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole property: for random worlds, shard counts, resolve modes,
    /// churn interleavings, and motion, the sharded parallel engine's
    /// observations are bit-for-bit the unsharded sequential engine's.
    #[test]
    fn sharded_runs_are_bit_identical_to_unsharded(
        raw in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 280..400),
        shards in 2u16..7,
        channels in 1u16..3,
        fastmode in 0u8..2,
        moving in 0u8..2,
        churn in proptest::collection::vec((0u32..280, 0u64..40, 0u8..2), 0..12),
    ) {
        let moving = moving == 1;
        let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut faults = FaultPlan::none();
        for &(node, slot, is_crash) in &churn {
            if is_crash == 1 {
                faults.crash_at(node, slot);
            } else {
                faults.join_at(node, slot);
            }
        }
        let mode = if fastmode == 1 { ResolveMode::fast() } else { ResolveMode::Exact };
        let (m_ref, l_ref) = run_chatter(
            &positions, channels, mode, faults.clone(), 0, false, 40, moving,
        );
        let (m_shard, l_shard) = run_chatter(
            &positions, channels, mode, faults, shards, true, 40, moving,
        );
        prop_assert_eq!(m_ref, m_shard);
        prop_assert_eq!(l_ref, l_shard);
    }
}
