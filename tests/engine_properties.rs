//! Engine-level properties exercised through the public API: physical-layer
//! invariants that must hold for any protocol.

use multichannel_adhoc::prelude::*;
use multichannel_adhoc::radio::{Action, Observation, Protocol};
use multichannel_adhoc::sinr::resolve_listener;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random chatter: every node picks a random channel and transmits or
/// listens at random; listeners record every decode.
struct Chatter {
    channels: u16,
    p: f64,
    decodes: Vec<(u64, NodeId)>,
    tx_count: u64,
}

impl Protocol for Chatter {
    type Msg = u64;
    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<u64> {
        let ch = Channel(rng.gen_range(0..self.channels));
        if rng.gen_bool(self.p) {
            self.tx_count += 1;
            Action::Transmit {
                channel: ch,
                msg: slot,
            }
        } else {
            Action::Listen { channel: ch }
        }
    }
    fn observe(&mut self, slot: u64, obs: Observation<u64>, _rng: &mut SmallRng) {
        if let Observation::Received(r) = obs {
            self.decodes.push((slot, r.from));
        }
    }
}

fn chatter_net(n: usize, side: f64, channels: u16, p: f64, seed: u64) -> Engine<Chatter> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let deploy = Deployment::uniform(n, side, &mut rng);
    let protocols = (0..n)
        .map(|_| Chatter {
            channels,
            p,
            decodes: Vec::new(),
            tx_count: 0,
        })
        .collect();
    Engine::new(SinrParams::default(), deploy.into_points(), protocols, seed)
}

#[test]
fn at_most_one_decode_per_listener_per_slot() {
    let mut engine = chatter_net(60, 10.0, 4, 0.3, 3);
    engine.run(200);
    for p in engine.protocols() {
        let mut slots: Vec<u64> = p.decodes.iter().map(|&(s, _)| s).collect();
        let before = slots.len();
        slots.dedup();
        assert_eq!(before, slots.len(), "a listener decoded twice in one slot");
    }
}

#[test]
fn metrics_are_consistent() {
    let mut engine = chatter_net(80, 12.0, 4, 0.25, 5);
    engine.run(300);
    let m = engine.metrics();
    assert_eq!(m.slots, 300);
    let tx_from_protocols: u64 = engine.protocols().iter().map(|p| p.tx_count).sum();
    assert_eq!(m.transmissions, tx_from_protocols);
    let rx_from_protocols: u64 = engine
        .protocols()
        .iter()
        .map(|p| p.decodes.len() as u64)
        .sum();
    assert_eq!(m.receptions, rx_from_protocols);
    let per_channel: u64 = m.tx_per_channel.iter().sum();
    assert_eq!(per_channel, m.transmissions);
}

#[test]
fn decodes_match_offline_sinr_resolution() {
    // Replay a slot by hand: whatever the engine delivered must equal the
    // direct physical-layer computation.
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(11);
    let deploy = Deployment::uniform(40, 9.0, &mut rng);
    let positions = deploy.points().to_vec();
    // A fixed transmitter set: even indices transmit on channel 0.
    let txs: Vec<usize> = (0..40).step_by(2).collect();
    let tx_pos: Vec<Point> = txs.iter().map(|&i| positions[i]).collect();
    for &listener in &[1usize, 3, 17, 39] {
        let out = resolve_listener(&params, &tx_pos, positions[listener]);
        if let Some(k) = out.decoded {
            // Decoded index must be the strongest transmitter.
            let best = tx_pos
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    let da = a.1.dist(positions[listener]);
                    let db = b.1.dist(positions[listener]);
                    db.partial_cmp(&da).unwrap()
                })
                .unwrap()
                .0;
            assert_eq!(k, best);
            assert!(out.sinr >= params.beta);
        }
    }
}

#[test]
fn determinism_with_faults() {
    use multichannel_adhoc::radio::{FaultPlan, JamSpec};
    let run = || {
        let mut faults = FaultPlan::none();
        faults.crash_at(3, 50);
        faults.jam(JamSpec::Random {
            t: 1,
            total: 4,
            power: 20.0,
            seed: 99,
        });
        let mut engine = chatter_net(50, 10.0, 4, 0.3, 7).with_faults(faults);
        engine.run(150);
        (
            engine.metrics().transmissions,
            engine.metrics().receptions,
            engine.metrics().busy_failures,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn more_channels_mean_fewer_collisions_at_fixed_traffic() {
    let busy = |channels: u16| {
        let mut engine = chatter_net(120, 6.0, channels, 0.3, 13);
        engine.run(300);
        engine.metrics().busy_failures
    };
    let one = busy(1);
    let eight = busy(8);
    assert!(
        eight < one,
        "8 channels ({eight} busy failures) vs 1 ({one})"
    );
}
