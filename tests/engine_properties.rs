//! Engine-level properties exercised through the public API: physical-layer
//! invariants that must hold for any protocol.

use multichannel_adhoc::prelude::*;
use multichannel_adhoc::radio::{Action, Metrics, Observation, Protocol};
use multichannel_adhoc::sinr::resolve_listener;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random chatter: every node picks a random channel and transmits or
/// listens at random; listeners record every decode.
struct Chatter {
    channels: u16,
    p: f64,
    decodes: Vec<(u64, NodeId)>,
    tx_count: u64,
}

impl Protocol for Chatter {
    type Msg = u64;
    fn act(&mut self, slot: u64, rng: &mut SmallRng) -> Action<u64> {
        let ch = Channel(rng.gen_range(0..self.channels));
        if rng.gen_bool(self.p) {
            self.tx_count += 1;
            Action::Transmit {
                channel: ch,
                msg: slot,
            }
        } else {
            Action::Listen { channel: ch }
        }
    }
    fn observe(&mut self, slot: u64, obs: Observation<u64>, _rng: &mut SmallRng) {
        if let Observation::Received(r) = obs {
            self.decodes.push((slot, r.from));
        }
    }
}

fn chatter_net(n: usize, side: f64, channels: u16, p: f64, seed: u64) -> Engine<Chatter> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let deploy = Deployment::uniform(n, side, &mut rng);
    let protocols = (0..n)
        .map(|_| Chatter {
            channels,
            p,
            decodes: Vec::new(),
            tx_count: 0,
        })
        .collect();
    Engine::new(SinrParams::default(), deploy.into_points(), protocols, seed)
}

#[test]
fn at_most_one_decode_per_listener_per_slot() {
    let mut engine = chatter_net(60, 10.0, 4, 0.3, 3);
    engine.run(200);
    for p in engine.protocols() {
        let mut slots: Vec<u64> = p.decodes.iter().map(|&(s, _)| s).collect();
        let before = slots.len();
        slots.dedup();
        assert_eq!(before, slots.len(), "a listener decoded twice in one slot");
    }
}

#[test]
fn metrics_are_consistent() {
    let mut engine = chatter_net(80, 12.0, 4, 0.25, 5);
    engine.run(300);
    let m = engine.metrics();
    assert_eq!(m.slots, 300);
    let tx_from_protocols: u64 = engine.protocols().iter().map(|p| p.tx_count).sum();
    assert_eq!(m.transmissions, tx_from_protocols);
    let rx_from_protocols: u64 = engine
        .protocols()
        .iter()
        .map(|p| p.decodes.len() as u64)
        .sum();
    assert_eq!(m.receptions, rx_from_protocols);
    let per_channel: u64 = m.tx_per_channel.iter().sum();
    assert_eq!(per_channel, m.transmissions);
}

#[test]
fn decodes_match_offline_sinr_resolution() {
    // Replay a slot by hand: whatever the engine delivered must equal the
    // direct physical-layer computation.
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(11);
    let deploy = Deployment::uniform(40, 9.0, &mut rng);
    let positions = deploy.points().to_vec();
    // A fixed transmitter set: even indices transmit on channel 0.
    let txs: Vec<usize> = (0..40).step_by(2).collect();
    let tx_pos: Vec<Point> = txs.iter().map(|&i| positions[i]).collect();
    for &listener in &[1usize, 3, 17, 39] {
        let out = resolve_listener(&params, &tx_pos, positions[listener]);
        if let Some(k) = out.decoded {
            // Decoded index must be the strongest transmitter.
            let best = tx_pos
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    let da = a.1.dist(positions[listener]);
                    let db = b.1.dist(positions[listener]);
                    db.partial_cmp(&da).unwrap()
                })
                .unwrap()
                .0;
            assert_eq!(k, best);
            assert!(out.sinr >= params.beta);
        }
    }
}

#[test]
fn determinism_with_faults() {
    use multichannel_adhoc::radio::{FaultPlan, JamSpec};
    let run = || {
        let mut faults = FaultPlan::none();
        faults.crash_at(3, 50);
        faults.jam(JamSpec::Random {
            t: 1,
            total: 4,
            power: 20.0,
            seed: 99,
        });
        let mut engine = chatter_net(50, 10.0, 4, 0.3, 7).with_faults(faults);
        engine.run(150);
        (
            engine.metrics().transmissions,
            engine.metrics().receptions,
            engine.metrics().busy_failures,
        )
    };
    assert_eq!(run(), run());
}

/// One scripted lifecycle/motion event: at `slot`, either crash `node`
/// (kind 0), have `node` start crashed and join (kind 1), or nudge
/// `node` by `(dx, dy)` (kind 2). Crash/join events are installed on the
/// [`FaultPlan`] before the run; motion events are applied through
/// `positions_mut` in the step loop — in both cases identically for
/// every engine configuration under comparison.
type ScriptEvent = (u64, u8, u32, f64, f64);

/// Per-node observable state after a scripted run: the verbatim decode
/// log plus the transmit count.
type NodeLog = (Vec<(u64, NodeId)>, u64);

/// Runs a scripted chatter world and returns everything observable:
/// full metrics plus each node's verbatim decode log and tx count.
#[allow(clippy::too_many_arguments)]
fn run_scripted(
    positions: &[Point],
    channels: u16,
    p: f64,
    seed: u64,
    script: &[ScriptEvent],
    shards: u16,
    par: bool,
    slots: u64,
) -> (Metrics, Vec<NodeLog>) {
    use multichannel_adhoc::radio::FaultPlan;
    let n = positions.len();
    let mut faults = FaultPlan::none();
    for &(slot, kind, node, _, _) in script {
        let node = node % n as u32;
        match kind {
            0 => {
                faults.crash_at(node, slot);
            }
            1 => {
                faults.crash_at(node, 0).join_at(node, slot);
            }
            _ => {}
        }
    }
    let protocols = (0..n)
        .map(|_| Chatter {
            channels,
            p,
            decodes: Vec::new(),
            tx_count: 0,
        })
        .collect();
    let mut engine = Engine::new(SinrParams::default(), positions.to_vec(), protocols, seed)
        .with_faults(faults)
        .with_shards(shards)
        .with_par_channels(par)
        .with_par_shards(par);
    for slot in 0..slots {
        for &(at, kind, node, dx, dy) in script {
            if kind == 2 && at == slot {
                let i = (node % n as u32) as usize;
                let p0 = engine.positions()[i];
                engine.positions_mut()[i] = Point::new(p0.x + dx, p0.y + dy);
            }
        }
        engine.step();
    }
    let metrics = engine.metrics().clone();
    let logs = engine
        .into_protocols()
        .into_iter()
        .map(|c| (c.decodes, c.tx_count))
        .collect();
    (metrics, logs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Phase-overlap stress: under the pooled pipeline (double-buffered
    /// slot state, Phase-1-derived feedback delivered while resolve
    /// units are still in flight, delivery of earlier channels
    /// overlapping resolution of later ones) a run with random
    /// crash/join/motion interleavings must be bit-identical — metrics
    /// and every node's decode log — to the sequential engine, at every
    /// thread count and even when a tiny test deque capacity forces
    /// near-every task to be stolen.
    #[test]
    fn overlapped_pipeline_matches_sequential_under_random_churn(
        seed in 0u64..10_000,
        channels in 1u16..5,
        p in 0.15f64..0.45,
        script in proptest::collection::vec(
            (1u64..40, 0u8..3, 0u32..90, -1.5f64..1.5, -1.5f64..1.5),
            0..10,
        ),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let deploy = Deployment::uniform(90, 8.0, &mut rng);
        let positions = deploy.into_points();

        // Sequential reference: no sharding, no parallel dispatch,
        // single-threaded pool (everything runs inline).
        rayon::set_num_threads(1);
        let baseline = run_scripted(&positions, channels, p, seed, &script, 0, false, 40);

        // Pooled pipeline at several thread counts, each with a steal
        // funnel of a different severity (0 = normal submission).
        for (threads, cap) in [(2usize, 0usize), (4, 1), (8, 2)] {
            rayon::set_num_threads(threads);
            rayon::set_test_deque_capacity(cap);
            let pooled = run_scripted(&positions, channels, p, seed, &script, 4, true, 40);
            rayon::set_test_deque_capacity(0);
            prop_assert_eq!(
                &baseline.0, &pooled.0,
                "metrics diverged at {} threads (cap {})", threads, cap
            );
            prop_assert_eq!(
                &baseline.1, &pooled.1,
                "decode logs diverged at {} threads (cap {})", threads, cap
            );
        }
        rayon::set_num_threads(0);
    }
}

#[test]
fn more_channels_mean_fewer_collisions_at_fixed_traffic() {
    let busy = |channels: u16| {
        let mut engine = chatter_net(120, 6.0, channels, 0.3, 13);
        engine.run(300);
        engine.metrics().busy_failures
    };
    let one = busy(1);
    let eight = busy(8);
    assert!(
        eight < one,
        "8 channels ({eight} busy failures) vs 1 ({one})"
    );
}
