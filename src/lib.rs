//! # `multichannel-adhoc`
//!
//! A full reproduction of **"Leveraging Multiple Channels in Ad Hoc
//! Networks"** (Halldórsson, Wang, Yu — PODC 2015 / arXiv:1604.07182):
//! distributed data aggregation and node coloring with *linear channel
//! speedup* in the SINR interference model, implemented as executable
//! distributed protocols over a faithful multi-channel physical-layer
//! simulator.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`geom`] — planar geometry, deployments, communication graphs;
//! * [`sinr`] — the SINR physical layer (Eq. 1, clear receptions, radii);
//! * [`radio`] — the synchronous multi-channel simulation engine;
//! * [`core`] — the paper's algorithms: ruling sets, the aggregation
//!   structure, data aggregation (Theorem 22) and coloring (Theorem 24);
//! * [`baselines`] — single-channel / naive / graph-model comparators and
//!   the exponential-chain lower-bound instance;
//! * [`analysis`] — statistics and table rendering for experiments;
//! * [`scenario`] — dynamic environments (mobility, fading, churn) and the
//!   parallel scenario runner;
//! * [`obs`] — the determinism-preserving observability layer (phase
//!   spans, typed events, JSONL export); a true no-op unless this crate's
//!   `obs` cargo feature is on.
//!
//! # Quickstart
//!
//! ```
//! use multichannel_adhoc::prelude::*;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // A 150-node sensor field, 8 channels.
//! let params = SinrParams::default();
//! let mut rng = SmallRng::seed_from_u64(7);
//! let deploy = Deployment::uniform(150, 12.0, &mut rng);
//! let env = NetworkEnv::new(params, &deploy);
//!
//! // Build the aggregation structure (paper §5)…
//! let algo = AlgoConfig::practical(8, &params, 150);
//! let mut cfg = StructureConfig::new(algo, 7);
//! cfg.substrate = SubstrateMode::Oracle; // ablation mode; default is Distributed
//! let structure = build_structure(&env, &cfg);
//!
//! // …then aggregate the maximum of per-node readings (paper §6).
//! let readings: Vec<i64> = (0..150).map(|i| (i * 37 % 1000) as i64).collect();
//! let d_hat = env.comm_graph().diameter_approx() + 2;
//! let out = aggregate(
//!     &env, &structure, &algo, MaxAgg, &readings,
//!     InterclusterMode::Flood, d_hat, 42,
//! );
//! let expect = readings.iter().max().copied();
//! assert_eq!(out.values[0], expect);
//! ```
//!
//! # Dynamic scenarios
//!
//! The static engine answers "what does the protocol do on *this*
//! placement?" — the [`scenario`] subsystem asks what it does in a *living*
//! network. A [`Scenario`](scenario::Scenario) declares the whole world as
//! data: a seed-parameterized deployment, a mobility process (random
//! waypoint or group convoy, clamped to the deployment area), Gilbert–Elliot
//! per-channel fading that composes with [`FaultPlan`](radio::FaultPlan)
//! jamming, and churn (late joins, crash-stops). Drive one trial with
//! [`ScenarioSim`](scenario::ScenarioSim), or a whole (scenario × seed)
//! matrix across all cores with [`ScenarioRunner`](scenario::ScenarioRunner)
//! — every trial is a pure function of `(scenario, seed)`, so tables
//! replay bit-for-bit regardless of thread count.
//!
//! ```
//! use multichannel_adhoc::prelude::*;
//!
//! let scenario = Scenario::builder("roaming-sensors")
//!     .deployment(DeploymentSpec::Uniform { n: 40, side: 10.0 })
//!     .mobility(MobilitySpec::RandomWaypoint { speed_min: 0.02, speed_max: 0.1, pause: 8 })
//!     .fading(FadingSpec::interference(0.01, 0.1, 100.0))
//!     .channels(4)
//!     .build();
//! let trials = ScenarioRunner::new(scenario).trials(4).run(|s, seed| {
//!     s.deployment_for(seed).len()
//! });
//! assert_eq!(trials[0].outcome.results, vec![40, 40, 40, 40]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mca_analysis as analysis;
pub use mca_baselines as baselines;
pub use mca_core as core;
pub use mca_geom as geom;
pub use mca_obs as obs;
pub use mca_radio as radio;
pub use mca_scenario as scenario;
pub use mca_sinr as sinr;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use mca_analysis::{run_trials, Summary, Table};
    pub use mca_core::{
        aggregate, audit_structure, audit_structure_masked, broadcast, broadcast_many,
        build_structure, build_structure_masked, color_nodes, elect_leader,
        maximal_independent_set, AggregateOutcome, AggregationStructure, AlgoConfig,
        AuditTolerances, AvgAgg, AvgValue, BroadcastOutcome, Candidate, ColoringOutcome, Constants,
        CsaVariant, FmSketch, FmValue, GossipOutcome, InterclusterMode, LeaderOutcome,
        MaintainConfig, MaxAgg, MinAgg, MisConfig, MisOutcome, NetworkEnv, OrAgg, RepairKind,
        RepairReport, Sourced, StructureConfig, StructureMaintainer, SubstrateMode, SumAgg,
    };
    pub use mca_geom::{BoundingBox, CommGraph, Deployment, Point};
    pub use mca_radio::{
        Channel, ChannelCondition, Engine, FaultPlan, NodeEvent, NodeId, Protocol,
    };
    pub use mca_scenario::{
        ChurnSpec, DeploymentSpec, EnvironmentModel, FadingSpec, GilbertElliot, GroupConvoy,
        MaintenanceSpec, MobilitySpec, RandomWaypoint, Scenario, ScenarioRunner, ScenarioSim,
        StaticEnvironment,
    };
    pub use mca_sinr::{ChannelResolver, ResolveMode, SinrParams};
}
