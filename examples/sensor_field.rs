//! Sensor-field scenario: average temperature (exact, duplicate-sensitive)
//! and approximate node counting with duplicate-insensitive FM sketches.
//!
//! Models the paper's motivating "killer-app": a dense sensor deployment
//! reporting to a sink. The exact average rides the tree-based
//! inter-cluster mode; the FM sketch rides the fast `O(D + log n)` flood.
//!
//! Run with: `cargo run --release --example sensor_field`

use multichannel_adhoc::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn main() {
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(7);
    // A hotspot deployment: 12 clusters of 25 sensors each.
    let deploy = Deployment::clustered(12, 25, 30.0, 1.5, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let n = env.len();
    let graph = env.comm_graph();
    if !graph.is_connected() {
        println!("note: deployment disconnected; results cover the sink's component");
    }

    let algo = AlgoConfig::practical(8, &params, n);
    let cfg = StructureConfig::new(algo, 7);
    let structure = build_structure(&env, &cfg);
    println!(
        "structure: {} clusters over {} sensors (φ = {})",
        structure.report.clusters, n, structure.phi
    );

    // Simulated temperatures around 20°C.
    let temps: Vec<f64> = (0..n).map(|_| 20.0 + rng.gen_range(-5.0..5.0)).collect();
    let truth: f64 = temps.iter().sum::<f64>() / n as f64;

    // Exact average via the tree mode (sum/count pairs are
    // duplicate-sensitive).
    let inputs: Vec<AvgValue> = temps.iter().map(|&t| AvgValue::sample(t)).collect();
    let d_hat = graph.diameter_approx() + 2;
    let sink = NodeId(0);
    let out = aggregate(
        &env,
        &structure,
        &algo,
        AvgAgg,
        &inputs,
        InterclusterMode::Exact { sink },
        d_hat,
        13,
    );
    if let Some(avg) = out.values[sink.index()].as_ref().and_then(|v| v.mean()) {
        println!(
            "exact average at sink: {avg:.3}°C (ground truth {truth:.3}°C, \
             {} inputs lost, {} slots)",
            out.undelivered,
            out.total_slots()
        );
    } else {
        println!("exact average did not reach the sink (disconnected?)");
    }

    // Approximate census via FM sketches on the fast flood path.
    let ids: Vec<FmValue> = (0..n).map(|i| FmValue::of_item(i as u64)).collect();
    let out = aggregate(
        &env,
        &structure,
        &algo,
        FmSketch,
        &ids,
        InterclusterMode::Flood,
        d_hat,
        17,
    );
    if let Some(sketch) = &out.values[sink.index()] {
        println!(
            "FM census at sink: ≈{:.0} sensors (true {n}), {} slots on the flood path",
            sketch.estimate(),
            out.total_slots()
        );
    }
}
