//! Quickstart: build the aggregation structure and compute a network-wide
//! maximum over multiple channels.
//!
//! Run with: `cargo run --release --example quickstart`

use multichannel_adhoc::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    // A 300-node uniform deployment in a 15x15 field; R_T = 8 units.
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(2024);
    let deploy = Deployment::uniform(300, 15.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let graph = env.comm_graph();
    println!(
        "network: n = {}, Δ = {}, D ≈ {}, connected = {}",
        env.len(),
        graph.max_degree(),
        graph.diameter_approx(),
        graph.is_connected()
    );

    // 8 channels, practical constants, fully distributed substrate.
    let algo = AlgoConfig::practical(8, &params, 300);
    let cfg = StructureConfig::new(algo, 2024);
    let structure = build_structure(&env, &cfg);
    println!(
        "structure: {} clusters, φ = {}, built in {} slots",
        structure.report.clusters,
        structure.phi,
        structure.report.total_slots()
    );

    // Audit the paper's invariants (domination, density, separation, …).
    let audit = audit_structure(&env, &structure, cfg.cluster_radius);
    audit.assert_sound();
    println!(
        "audit: density = {}, estimate ratio = {:.2}..{:.2}, channel fill = {:.0}%",
        audit.density,
        audit.est_ratio.0,
        audit.est_ratio.1,
        audit.channel_fill * 100.0
    );

    // Aggregate the max of per-node sensor readings (Theorem 22).
    let readings: Vec<i64> = (0..300).map(|i| (i * 7919 % 10_000) as i64).collect();
    let expect = *readings.iter().max().unwrap();
    let d_hat = graph.diameter_approx() + 2;
    let out = aggregate(
        &env,
        &structure,
        &algo,
        MaxAgg,
        &readings,
        InterclusterMode::Flood,
        d_hat,
        99,
    );
    let holders = out.values.iter().filter(|v| **v == Some(expect)).count();
    println!(
        "aggregation: max = {expect}, known by {holders}/300 nodes, \
         {} slots (followers {}, tree {}, inter-cluster {})",
        out.total_slots(),
        out.follower_slots,
        out.tree_slots,
        out.inter_slots
    );
    assert_eq!(out.values[0], Some(expect), "sink must know the max");
}
