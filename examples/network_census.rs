//! Network census: the paper's motivating "killer-app" — computing
//! compressible functions (average, count) of values stored at the nodes
//! (§1, §2 "Data Aggregation").
//!
//! Three ways to count/average on the same structure:
//!
//! 1. **Exact average** via the duplicate-sensitive tree upcast
//!    (`InterclusterMode::Exact`, sum/count pairs);
//! 2. **Approximate census** via Flajolet–Martin sketches, which are
//!    duplicate-*insensitive* and therefore ride the fast `O(D + log n)`
//!    flood path — the trick of the paper's reference [2];
//! 3. **Boolean alarm** (`OrAgg`): "has any sensor tripped?" — the
//!    cheapest compressible query of all.
//!
//! Run with: `cargo run --release --example network_census`

use multichannel_adhoc::core::{FmSketch, FmValue, OrAgg};
use multichannel_adhoc::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn main() {
    let params = SinrParams::default();
    let n = 250usize;
    let mut rng = SmallRng::seed_from_u64(404);
    let deploy = Deployment::uniform(n, 12.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let d_hat = env.comm_graph().diameter_approx() + 2;

    let algo = AlgoConfig::practical(8, &params, n);
    let cfg = StructureConfig::new(algo, 404);
    let structure = build_structure(&env, &cfg);
    println!(
        "structure: {} clusters, φ = {}, {} slots to build",
        structure.report.clusters,
        structure.phi,
        structure.report.total_slots()
    );

    // --- 1. Exact average temperature (duplicate-sensitive). ---
    let temps: Vec<f64> = (0..n).map(|_| 15.0 + 10.0 * rng.gen::<f64>()).collect();
    let truth = temps.iter().sum::<f64>() / n as f64;
    let inputs: Vec<AvgValue> = temps.iter().map(|&t| AvgValue::sample(t)).collect();
    let out = aggregate(
        &env,
        &structure,
        &algo,
        AvgAgg,
        &inputs,
        InterclusterMode::Exact { sink: NodeId(0) },
        d_hat,
        1,
    );
    let measured = out.values[0]
        .as_ref()
        .and_then(|v| v.mean())
        .expect("sink should hold the average");
    println!(
        "exact average: {measured:.4} (ground truth {truth:.4}) in {} slots",
        out.total_slots()
    );
    assert!((measured - truth).abs() < 1e-9, "exact mode must be exact");

    // --- 2. Approximate census via FM sketches (idempotent => flood). ---
    let sketches: Vec<FmValue> = (0..n).map(|i| FmValue::of_item(i as u64)).collect();
    let out = aggregate(
        &env,
        &structure,
        &algo,
        FmSketch,
        &sketches,
        InterclusterMode::Flood,
        d_hat,
        2,
    );
    let est = out.values[0]
        .as_ref()
        .expect("sink should hold the sketch")
        .estimate();
    println!(
        "FM census: ≈{est:.0} nodes (true {n}) in {} slots — flood path, no sink needed",
        out.total_slots()
    );
    assert!(
        est > n as f64 / 3.0 && est < n as f64 * 3.0,
        "FM estimate {est} too far from {n}"
    );

    // --- 3. Boolean alarm. ---
    let mut alarms = vec![false; n];
    alarms[137] = true; // one tripped sensor
    let out = aggregate(
        &env,
        &structure,
        &algo,
        OrAgg,
        &alarms,
        InterclusterMode::Flood,
        d_hat,
        3,
    );
    let heard = out.values.iter().filter(|v| **v == Some(true)).count();
    println!("alarm: {heard}/{n} nodes learned of the tripped sensor");
    assert!(heard * 10 >= n * 9, "the alarm must spread");
}
