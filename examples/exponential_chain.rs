//! The exponential-chain lower bound (paper §1, "Lower Bounds").
//!
//! Node `i` sits at position `2^i` on a line. With uniform power and
//! `β ≥ 2^{1/α}`, at most **one** transmission toward the sink can succeed
//! per slot — however many channels exist — so any aggregation must pay
//! `Ω(Δ) = Ω(n)` slots on this instance. This is the fundamental limit
//! that makes the paper's `Δ/F` term (rather than something smaller)
//! the right target for multichannel speedup.
//!
//! The example (1) verifies the one-success-per-slot claim exhaustively
//! over every transmitter subset, (2) measures the greedy relay schedule
//! (the best any algorithm can do), and (3) contrasts with a uniform
//! clique of the same size where spatial reuse lets aggregation finish
//! faster than `n` slots.
//!
//! Run with: `cargo run --release --example exponential_chain`

use multichannel_adhoc::baselines::{greedy_relay_slots, max_concurrent_successes_exhaustive};
use multichannel_adhoc::prelude::*;
use rand::SeedableRng;

fn main() {
    let params = SinrParams::default();
    println!(
        "SINR parameters: α = {}, β = {} (2^(1/α) = {:.3}) — the bound needs β ≥ 2^(1/α)",
        params.alpha,
        params.beta,
        2f64.powf(1.0 / params.alpha)
    );

    // (1) Exhaustive verification: over all 2^n − 1 transmitter subsets,
    // at most one descending (toward-sink) transmission ever succeeds.
    println!("\nexhaustive check of the Moscibroda–Wattenhofer instance:");
    for n in [6usize, 8, 10, 12] {
        let max = max_concurrent_successes_exhaustive(&params, n);
        println!("  chain n = {n:2}: max concurrent descending successes = {max}");
        assert_eq!(
            max, 1,
            "the lower-bound instance admits one success per slot"
        );
    }

    // (2) The greedy relay schedule: data must hop node-by-node toward the
    // sink, one success per slot, so aggregation costs ≥ n − 1 slots.
    println!("\ngreedy relay toward the sink (best case for ANY algorithm):");
    for n in [8usize, 12, 16] {
        let slots = greedy_relay_slots(n);
        println!("  chain n = {n:2}: {slots} slots (Δ = {})", n - 1);
        assert!(slots >= (n - 1) as u64);
    }

    // (3) Contrast: a dense clique of the same Δ aggregates in far fewer
    // slots per node once channels kick in — the chain's pain is its
    // geometry, not its degree.
    let n = 64;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    let deploy = Deployment::disk(n, params.r_eps() / 4.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let algo = AlgoConfig::practical(8, &params, n);
    let mut cfg = StructureConfig::new(algo, 5);
    cfg.substrate = SubstrateMode::Oracle;
    let s = build_structure(&env, &cfg);
    let inputs: Vec<i64> = (0..n as i64).collect();
    let out = aggregate(
        &env,
        &s,
        &algo,
        MaxAgg,
        &inputs,
        InterclusterMode::Flood,
        3,
        9,
    );
    println!(
        "\nclique n = {n} (Δ = {}), F = 8: follower phase {} slots — \
         channels help here because receptions merge; on the chain they cannot",
        n - 1,
        out.follower_slots
    );
}
