//! The headline result, live: aggregation time vs. number of channels.
//!
//! Sweeps `F ∈ {1, 2, 4, 8, 16}` on a dense deployment and prints the
//! follower-phase slot counts — the `Δ/F` term of Theorem 22 — next to the
//! ideal linear speedup.
//!
//! Run with: `cargo run --release --example channel_speedup`

use multichannel_adhoc::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let params = SinrParams::default();
    let n = 400;
    let mut rng = SmallRng::seed_from_u64(11);
    // Dense: big clusters, so f_v grows with F.
    let deploy = Deployment::uniform(n, 6.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let graph = env.comm_graph();
    let d_hat = graph.diameter_approx() + 2;
    println!("n = {n}, Δ = {}, D ≈ {}", graph.max_degree(), d_hat - 2);

    let inputs: Vec<i64> = (0..n).map(|i| i as i64).collect();
    let mut table = Table::new(
        "aggregation slots vs channels (Theorem 22's Δ/F term)",
        ["F", "follower slots", "total slots", "speedup", "ideal"],
    );
    let mut base = None;
    for f in [1u16, 2, 4, 8, 16] {
        let algo = AlgoConfig::practical(f, &params, n);
        let mut cfg = StructureConfig::new(algo, 11);
        cfg.substrate = SubstrateMode::Oracle; // isolate the F-dependence
                                               // Larger clusters put the run in the Δ/F-dominated regime the
                                               // theorem is about (see EXPERIMENTS.md E1).
        cfg.cluster_radius = 2.0;
        let structure = build_structure(&env, &cfg);
        let out = aggregate(
            &env,
            &structure,
            &algo,
            MaxAgg,
            &inputs,
            InterclusterMode::Flood,
            d_hat,
            23,
        );
        let b = *base.get_or_insert(out.follower_slots as f64);
        table.row([
            f.to_string(),
            out.follower_slots.to_string(),
            out.total_slots().to_string(),
            format!("{:.2}x", b / out.follower_slots as f64),
            format!("{f}.00x"),
        ]);
    }
    println!("{table}");
    println!(
        "speedup tracks F while Δ/F dominates, then flattens at the \
         log n·log log n floor — exactly the paper's shape."
    );
}
