//! Node coloring as TDMA slot assignment (paper §7, Theorem 24).
//!
//! Colors computed by the aggregation-structure coloring are a proper
//! coloring of the communication graph, so "color = transmission slot"
//! yields an interference-free schedule with O(Δ) frame length.
//!
//! Run with: `cargo run --release --example spectrum_coloring`

use multichannel_adhoc::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let params = SinrParams::default();
    let n = 250;
    let mut rng = SmallRng::seed_from_u64(5);
    let deploy = Deployment::uniform(n, 12.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let graph = env.comm_graph();

    let algo = AlgoConfig::practical(8, &params, n);
    let cfg = StructureConfig::new(algo, 5);
    let structure = build_structure(&env, &cfg);
    let coloring = color_nodes(&env, &structure, &algo, 5);

    println!(
        "colored {}/{} nodes in {} slots (p1 {}, p2 {}, p3 {}, p4 {})",
        n - coloring.uncolored,
        n,
        coloring.total_slots(),
        coloring.p1_slots,
        coloring.p2_slots,
        coloring.p3_slots,
        coloring.p4_slots
    );
    println!(
        "palette: {} colors for Δ = {} (paper: O(Δ))",
        coloring.palette_size(),
        graph.max_degree()
    );

    // Verify the schedule is interference-free on the communication graph.
    let colors: Vec<u32> = coloring
        .colors
        .iter()
        .map(|c| c.expect("uncolored node"))
        .collect();
    match graph.coloring_violation(&colors) {
        None => println!("schedule check: no two neighbors share a slot ✓"),
        Some((u, v)) => println!("schedule check FAILED: nodes {u} and {v} collide"),
    }

    // Frame-length statistics: how many nodes share each slot.
    let mut per_slot = std::collections::HashMap::new();
    for &c in &colors {
        *per_slot.entry(c).or_insert(0usize) += 1;
    }
    let max_share = per_slot.values().max().copied().unwrap_or(0);
    println!("spatial reuse: up to {max_share} (mutually distant) nodes share a slot");
}
