//! Robustness extension: aggregation under a t-disrupted jammer and node
//! crashes (cf. the channel-disruption model of Dolev et al., the paper's
//! reference [9]), plus the channel-hopping fix.
//!
//! This drives the raw engine with fault injection to show how the
//! flood-combine inter-cluster phase degrades gracefully while `F − t`
//! channels remain clean — and how a shared slot-keyed hop sequence
//! (`FloodCfg::hop_channels`) defeats even a *sustained* fixed-channel
//! jammer, the failure mode a single-channel backbone cannot survive.
//!
//! Run with: `cargo run --release --example jamming_robustness`

use multichannel_adhoc::core::aggregate::intercluster::{FloodCfg, FloodCombine};
use multichannel_adhoc::core::{MaxAgg, Tdma};
use multichannel_adhoc::prelude::*;
use multichannel_adhoc::radio::{FaultPlan, JamSpec};
use rand::{rngs::SmallRng, SeedableRng};

fn run_flood(jam: Option<JamSpec>, crashes: usize, hop: u16, seed: u64) -> (usize, u64) {
    let params = SinrParams::default();
    let k = 24; // two dozen dominators on a multi-hop backbone
    let mut rng = SmallRng::seed_from_u64(seed);
    let deploy = Deployment::uniform(k, 25.0, &mut rng);

    let cfg = FloodCfg {
        q: 0.2,
        flood_rounds: 600,
        tail_rounds: 100,
        tdma: Tdma::new(1, 1),
        hop_channels: hop,
    };
    let protocols: Vec<FloodCombine<MaxAgg>> = (0..k)
        .map(|i| FloodCombine::dominator(MaxAgg, cfg, 0, i as i64))
        .collect();

    let mut faults = FaultPlan::none();
    if let Some(spec) = jam {
        faults.jam(spec);
    }
    for c in 0..crashes {
        faults.crash_at(c as u32, 150);
    }

    let mut engine =
        Engine::new(params, deploy.points().to_vec(), protocols, seed).with_faults(faults);
    engine.run_until_done(cfg.flood_rounds + cfg.tail_rounds + 1);
    let survivors_expect = (crashes as i64..k as i64).max().unwrap_or(0);
    let holders = engine
        .protocols()
        .iter()
        .enumerate()
        .filter(|(i, p)| *i >= crashes && *p.value() == survivors_expect)
        .count();
    (holders, engine.slot())
}

fn main() {
    println!("flood-combine max over a 24-dominator backbone:\n");
    let intermittent = |power: f64, seed: u64| JamSpec::Random {
        t: 1,
        total: 4,
        power,
        seed,
    };
    // A sustained jammer parked on channel 0 for the whole run.
    let constant_ch0 = |power: f64| JamSpec::Fixed {
        channel: 0,
        from: 0,
        to: u64::MAX,
        power,
    };
    let mut table = Table::new(
        "graceful degradation under faults",
        ["scenario", "nodes with global max", "slots"],
    );
    for (name, jam, crashes, hop) in [
        ("fault-free", None, 0usize, 0u16),
        (
            "25%-duty jammer (10x noise)",
            Some(intermittent(10.0, 0xBAD)),
            0,
            0,
        ),
        (
            "25%-duty jammer (1000x noise)",
            Some(intermittent(1000.0, 0xBAD)),
            0,
            0,
        ),
        ("3 crashed dominators", None, 3, 0),
        ("jammer + crashes", Some(intermittent(100.0, 0xBAD)), 3, 0),
        (
            "CONSTANT ch-0 jammer, no hopping",
            Some(constant_ch0(1000.0)),
            0,
            0,
        ),
        (
            "constant ch-0 jammer + 4-ch hopping",
            Some(constant_ch0(1000.0)),
            0,
            4,
        ),
    ] {
        let (holders, slots) = run_flood(jam, crashes, hop, 31);
        table.row([
            name.to_string(),
            format!("{holders}/{}", 24 - crashes),
            slots.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "the flood tolerates duty-cycled jamming (retransmissions are \
         continuous) and crash faults (the max of survivors still spreads).\n\
         a CONSTANT jammer on the flood channel is fatal to the single-channel \
         backbone — and harmless once the backbone hops over 4 channels on a \
         shared slot-keyed sequence: the adversary's fixed channel only \
         intersects the hop 1 slot in 4 (the paper's reference [9] theme, \
         implemented)."
    );
}
