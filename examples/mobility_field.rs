//! Dynamic scenarios: the same aggregation workload in a living network.
//!
//! The paper's experiments (and the rest of the examples) run over static
//! placements. This example declares four worlds with the `mca-scenario`
//! builder — static, random-waypoint mobility, a group convoy, and
//! Gilbert–Elliot channel fading — and runs the flood-combine
//! max-aggregation backbone end-to-end in each, multi-trial and in
//! parallel across all cores via `ScenarioRunner`.
//!
//! Run with: `cargo run --release --example mobility_field`

use multichannel_adhoc::core::aggregate::intercluster::{FloodCfg, FloodCombine};
use multichannel_adhoc::core::{MaxAgg, Tdma};
use multichannel_adhoc::prelude::*;

const N: usize = 60;
const SIDE: f64 = 18.0;
const CHANNELS: u16 = 4;
const SLOTS: u64 = 900;

fn scenarios() -> Vec<Scenario> {
    let base = || {
        Scenario::builder("")
            .deployment(DeploymentSpec::Uniform { n: N, side: SIDE })
            .channels(CHANNELS)
            .max_slots(SLOTS)
    };
    vec![
        {
            let mut s = base().build();
            s.name = "static".into();
            s
        },
        {
            let mut s = base()
                .mobility(MobilitySpec::RandomWaypoint {
                    speed_min: 0.02,
                    speed_max: 0.15,
                    pause: 10,
                })
                .build();
            s.name = "random waypoint (≤0.15 u/slot)".into();
            s
        },
        {
            let mut s = base()
                .mobility(MobilitySpec::Convoy {
                    groups: 4,
                    speed: 0.1,
                    spread: 2.5,
                    pause: 5,
                })
                .build();
            s.name = "4-group convoy".into();
            s
        },
        {
            let mut s = base()
                .fading(FadingSpec::interference(0.02, 0.1, 500.0))
                .build();
            s.name = "Gilbert–Elliot fading (17% bad)".into();
            s
        },
        {
            let mut s = base()
                .fading(FadingSpec::dropping(0.05, 0.1, 1.0))
                .mobility(MobilitySpec::RandomWaypoint {
                    speed_min: 0.02,
                    speed_max: 0.15,
                    pause: 10,
                })
                .churn(ChurnSpec::Random {
                    join_fraction: 0.15,
                    join_window: (1, 200),
                    crash_fraction: 0.1,
                    crash_window: (400, 800),
                })
                .build();
            s.name = "deep fades + mobility + churn".into();
            s
        },
    ]
}

fn main() {
    let cfg = FloodCfg {
        q: 0.2,
        flood_rounds: SLOTS - 100,
        tail_rounds: 100,
        tdma: Tdma::new(1, 1),
        hop_channels: CHANNELS,
    };
    let expect = (N - 1) as i64;

    let results = ScenarioRunner::sweep(scenarios())
        .trials(8)
        .master_seed(2026)
        .run(move |scenario, seed| {
            let mut sim = ScenarioSim::new(scenario, seed, |i, _| {
                FloodCombine::dominator(MaxAgg, cfg, 0, i as i64)
            });
            sim.run_until_done(scenario.max_slots);
            let holders = sim
                .protocols()
                .iter()
                .filter(|p| *p.value() == expect)
                .count();
            let m = sim.metrics();
            (
                holders as f64 / N as f64,
                m.reception_rate(),
                m.env_drops,
                sim.slot(),
            )
        });

    let mut table = Table::new(
        "flood-combine max-aggregation, 60 nodes, 4 channels, 8 trials/scenario",
        [
            "scenario",
            "coverage (median)",
            "rx rate",
            "env drops",
            "slots",
        ],
    );
    for st in &results {
        let o = &st.outcome;
        table.row([
            st.name.clone(),
            format!("{:.0}%", o.summarize(|r| r.0).median() * 100.0),
            format!("{:.3}", o.summarize(|r| r.1).median()),
            format!("{:.0}", o.summarize(|r| r.2 as f64).median()),
            format!("{:.0}", o.summarize(|r| r.3 as f64).median()),
        ]);
    }
    println!("{table}");
    println!(
        "every world is declared as data (Scenario::builder) and every trial \
         is a pure function of (scenario, seed): rerunning this binary \
         reproduces the table bit-for-bit, on any number of cores.\n\
         mobility reshapes the backbone mid-flood (coverage holds while the \
         network stays connected), and Gilbert–Elliot bad channels both \
         raise the interference floor and drop decodes (see `env drops`)."
    );
}
