//! Leader election as an application of the aggregation structure.
//!
//! Every node draws a random rank; the network aggregates the maximum
//! `(rank, id)` pair (an idempotent function, so it floods across clusters
//! at `O(D + log n)`), and the unique maximum is the leader all nodes
//! agree on. The whole election costs one Theorem-22 aggregation —
//! `O(D + Δ/F + log n·log log n)` — and therefore inherits the paper's
//! linear channel speedup.
//!
//! Run with: `cargo run --release --example leader_election`

use multichannel_adhoc::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let params = SinrParams::default();
    let mut rng = SmallRng::seed_from_u64(77);
    // Dense field: cluster sizes well above c₁·ln n, so the Δ/F term
    // dominates and the channel speedup is visible.
    let deploy = Deployment::uniform(250, 6.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    let graph = env.comm_graph();
    let d_hat = graph.diameter_approx() + 2;
    println!(
        "network: n = {}, Δ = {}, D ≈ {}",
        env.len(),
        graph.max_degree(),
        graph.diameter_approx()
    );

    for channels in [1u16, 8] {
        let algo = AlgoConfig::practical(channels, &params, 250);
        let mut cfg = StructureConfig::new(algo, 77);
        cfg.cluster_radius = 2.0;
        let structure = build_structure(&env, &cfg);

        let out = elect_leader(&env, &structure, &algo, d_hat, 2024);
        println!(
            "F = {channels}: leader = {} (rank {}), agreement {}/{}, \
             {} slots (followers {}, tree {}, flood {})",
            out.leader,
            Candidate::draw(2024, out.leader).rank,
            out.agreement,
            env.len(),
            out.total_slots(),
            out.follower_slots,
            out.tree_slots,
            out.inter_slots
        );
        assert!(out.leader_knows, "the winner must know it won");
        assert!(
            out.agreement * 10 >= env.len() * 9,
            "election should be near-unanimous"
        );
    }

    // Re-running with a different seed elects a (very likely) different
    // leader: the election is randomized and fair.
    let algo = AlgoConfig::practical(8, &params, 250);
    let mut cfg = StructureConfig::new(algo, 77);
    cfg.cluster_radius = 2.0;
    let structure = build_structure(&env, &cfg);
    let rerun = elect_leader(&env, &structure, &algo, d_hat, 2025);
    println!("re-election with a fresh seed: leader = {}", rerun.leader);
}
