//! The compressibility limit: why aggregation parallelizes linearly and
//! information exchange does not (paper §1 vs its reference [37]).
//!
//! On a single-hop clique, both tasks face `Δ = n − 1` peers. Aggregation
//! merges packets at every hop, so `F` channels split the work `F` ways
//! (Theorem 22's `Δ/F`). Local information exchange must deliver `Δ`
//! *distinct* packets into every single node, and a node decodes at most
//! one packet per slot whatever the channel count — the task is stuck at
//! the `Θ(Δ)` receive floor and channel hopping buys nothing.
//!
//! Run with: `cargo run --release --example info_exchange_limit`

use multichannel_adhoc::baselines::{run_info_exchange, ExchangeConfig};
use multichannel_adhoc::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let params = SinrParams::default();
    let n = 80usize;
    let mut rng = SmallRng::seed_from_u64(31);
    let deploy = Deployment::disk(n, params.r_eps() / 4.0, &mut rng);
    let env = NetworkEnv::new(params, &deploy);
    println!("single-hop clique: n = {n}, Δ = {}", n - 1);
    println!("\n| F | exchange slots | aggregation follower slots |");
    println!("|---|---|---|");

    for channels in [1u16, 2, 4, 8, 16] {
        // Incompressible: full token exchange.
        let ex = run_info_exchange(
            &params,
            deploy.points(),
            ExchangeConfig::new(channels, n),
            71,
        );
        let ex_slots = ex
            .median_completion()
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("did not finish ({:.0}%)", ex.mean_coverage() * 100.0));

        // Compressible: max-aggregation on the same instance.
        let algo = AlgoConfig::practical(channels, &params, n);
        let mut cfg = StructureConfig::new(algo, 31);
        cfg.substrate = SubstrateMode::Oracle;
        let s = build_structure(&env, &cfg);
        let inputs: Vec<i64> = (0..n as i64).collect();
        let agg = aggregate(
            &env,
            &s,
            &algo,
            MaxAgg,
            &inputs,
            InterclusterMode::Flood,
            3,
            17,
        );
        println!("| {channels} | {ex_slots} | {} |", agg.follower_slots);
    }

    // The [37] effective-channel cap, for reference.
    let (_, cap) = ExchangeConfig::new(32, n).cap_channels_like_37(n - 1, n);
    println!(
        "\n[37]'s effective channel budget at Δ = {}: √(Δ/ln n) ≈ {cap} — \
         coordination helps only this far; compressibility is what the paper's \
         linear speedup actually buys.",
        n - 1
    );
}
