//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Implements the slice of proptest this workspace's property tests use:
//! the [`proptest!`] macro with `pattern in strategy` parameters, range and
//! tuple strategies, [`collection::vec`], `prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Cases are
//! generated from fixed seeds so test runs are deterministic; shrinking is
//! not implemented (a failing case prints its values via the assertion
//! message instead).

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;

pub use strategy::Strategy;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — generate another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// The deterministic RNG for case number `i` of a property test.
pub fn test_rng(i: u64) -> SmallRng {
    SmallRng::seed_from_u64(0xC0FFEE ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop` alias module (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut passed = 0u32;
            let mut attempt = 0u64;
            while passed < cfg.cases {
                assert!(
                    attempt < cfg.cases as u64 * 20 + 100,
                    "proptest: too many cases rejected by prop_assume!"
                );
                let mut __rng = $crate::test_rng(attempt);
                attempt += 1;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", attempt - 1, msg)
                    }
                }
            }
        }
    )*};
}

/// Like `assert!` but aborts only the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` but aborts only the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Like `assert_ne!` but aborts only the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds (the case is regenerated).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0u32..10, y in -5.0..5.0f64) {
            prop_assert!(x < 10);
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0.0..1.0f64, 0u8..3), 2..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            for (f, b) in &v {
                prop_assert!(*f < 1.0 && *b < 3);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_respected(_x in 0u8..255) {
            prop_assert!(true);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let s = (0u32..5).prop_map(|v| v * 10);
        let mut rng = crate::test_rng(0);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(v % 10 == 0 && v < 50);
        }
    }
}
