//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A size constraint for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty collection size range");
        SizeRange { lo, hi: hi + 1 }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating `Vec`s of `element` values with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
