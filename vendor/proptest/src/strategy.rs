//! Value-generation strategies.

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
