//! Strategies for `Option` values.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
        if rng.gen_bool(0.5) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// A strategy yielding `None` half the time and `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
