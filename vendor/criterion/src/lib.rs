//! Offline, API-compatible subset of the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness matching the criterion call
//! surface this workspace uses (`benchmark_group`, `bench_with_input`,
//! `bench_function`, `sample_size`, `iter`, and the `criterion_group!` /
//! `criterion_main!` macros). Each benchmark runs `sample_size` timed
//! samples after one warm-up and prints the median per-iteration time —
//! no statistics engine, plots, or CLI, but `cargo bench` works end to end.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness handle passed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_benchmark(&id.to_string(), 100, &mut f);
    }
}

/// A named benchmark within a group, optionally parameterized.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.function.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with `input` passed by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timed iterations of the benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warm-up).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{label}: median {:?} over {} samples",
        median,
        b.samples.len()
    );
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(runs, 4, "3 samples + 1 warm-up");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(5).to_string(), "5");
    }
}
