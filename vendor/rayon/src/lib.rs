//! Offline, API-compatible subset of the `rayon` crate.
//!
//! Provides genuinely parallel versions of the rayon idioms this
//! workspace uses — `into_par_iter()` / `par_iter()` with `map` and
//! order-preserving `collect`, [`join`], and a borrowing [`scope`] — all
//! executing on a **persistent work-stealing worker pool** (the `pool`
//! module): lazily spawned, one Chase–Lev-style deque per worker with
//! a shared injector, condvar park/unpark when idle, panic propagation
//! back to the caller, and explicit reconfiguration through
//! [`set_num_threads`]. Work is cut into more chunks than workers so
//! stragglers can be stolen; results are reassembled in input order, so
//! a parallel `collect` is always element-for-element identical to the
//! sequential equivalent.
//!
//! The crate contains exactly one `unsafe` expression (the scoped-task
//! lifetime erasure in the `pool` module, with its soundness argument);
//! everything
//! else is `#![deny(unsafe_code)]`-clean.

#![deny(unsafe_code)]

pub mod iter;
mod pool;

pub use iter::{IntoParallelIterator, IntoParallelRefIterator};
pub use pool::{
    current_num_threads, join, pool_stats, scope, set_num_threads, set_test_deque_capacity,
    PoolStats, Scope,
};

pub(crate) use pool::parallel_map;

/// Common imports.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    /// The pool is process-global; tests that reconfigure it (thread
    /// count, stress capacity) or assert on its live state serialize
    /// through this lock so `cargo test`'s parallel harness can't
    /// interleave reconfigurations.
    static POOL_CONFIG_LOCK: Mutex<()> = Mutex::new(());

    fn config_guard() -> std::sync::MutexGuard<'static, ()> {
        POOL_CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = v.iter().map(|x| x * 3).collect();
        let par: Vec<u64> = v.into_par_iter().map(|x| x * 3).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_iter_by_ref() {
        let v: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[99], 198);
        assert_eq!(v.len(), 100, "by-ref iteration leaves the source intact");
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn range_par_iter() {
        let squares: Vec<usize> = (0..50usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
    }

    #[test]
    fn thread_count_override_pins_and_restores() {
        let _g = config_guard();
        super::set_num_threads(0);
        let auto = super::current_num_threads();
        super::set_num_threads(3);
        assert_eq!(super::current_num_threads(), 3);
        // Parallel results are identical under any pinned count.
        let v: Vec<u64> = (0..1000).collect();
        let pinned: Vec<u64> = v.clone().into_par_iter().map(|x| x * 7).collect();
        super::set_num_threads(0);
        assert_eq!(super::current_num_threads(), auto);
        let unpinned: Vec<u64> = v.into_par_iter().map(|x| x * 7).collect();
        assert_eq!(pinned, unpinned);
    }

    #[test]
    fn scope_spawn_borrows_stack_data() {
        let _g = config_guard();
        super::set_num_threads(4);
        let mut outs = vec![0u64; 16];
        let inputs: Vec<u64> = (0..16).collect();
        super::scope(|s| {
            for (out, x) in outs.iter_mut().zip(inputs.iter()) {
                s.spawn(move || *out = x * x);
            }
        });
        super::set_num_threads(0);
        let expect: Vec<u64> = (0..16).map(|x| x * x).collect();
        assert_eq!(outs, expect);
    }

    #[test]
    fn set_num_threads_shuts_down_and_reinits_the_pool() {
        let _g = config_guard();
        // Spin up a 2-worker pool and prove it is the live one.
        super::set_num_threads(2);
        let v: Vec<u64> = (0..256).collect();
        let _: Vec<u64> = v.clone().into_par_iter().map(|x| x + 1).collect();
        assert_eq!(super::pool_stats().workers, 2);

        // Explicit reconfiguration: the old pool is retired immediately;
        // the next operation runs on a fresh 4-worker pool, and results
        // stay identical across the reinit.
        super::set_num_threads(4);
        let before = super::pool_stats();
        assert_eq!(
            before.workers, 0,
            "retiring the mismatched pool empties the registry until next use"
        );
        let via4: Vec<u64> = v.clone().into_par_iter().map(|x| x + 1).collect();
        assert_eq!(super::pool_stats().workers, 4);
        let seq: Vec<u64> = v.iter().map(|x| x + 1).collect();
        assert_eq!(via4, seq);

        // Same count again is a no-op (no churn).
        super::set_num_threads(4);
        assert_eq!(super::pool_stats().workers, 4);
        super::set_num_threads(0);
    }

    #[test]
    fn panic_in_task_propagates_and_pool_survives() {
        let _g = config_guard();
        super::set_num_threads(2);
        let caught = std::panic::catch_unwind(|| {
            let v: Vec<u32> = (0..100).collect();
            let _: Vec<u32> = v
                .into_par_iter()
                .map(|x| {
                    if x == 37 {
                        panic!("boom at 37");
                    }
                    x
                })
                .collect();
        });
        assert!(caught.is_err(), "a panicking task must reach the caller");

        // Scope-level: body result discarded, spawned panic re-thrown.
        let caught = std::panic::catch_unwind(|| {
            super::scope(|s| {
                s.spawn(|| panic!("scoped boom"));
            });
        });
        assert!(caught.is_err());

        // The pool outlives both panics and still computes correctly.
        let v: Vec<u64> = (0..1000).collect();
        let sum: u64 = v
            .into_par_iter()
            .map(|x| x * 2)
            .collect::<Vec<u64>>()
            .iter()
            .sum();
        assert_eq!(sum, 999 * 1000);
        super::set_num_threads(0);
    }

    #[test]
    fn nested_join_from_worker_threads() {
        let _g = config_guard();
        super::set_num_threads(4);
        // Each outer task joins two inner tasks from *inside* a worker;
        // the inner spawn lands on the worker's own deque and either
        // runs LIFO on the same worker or is stolen — both orders must
        // give the same answer.
        let v: Vec<u64> = (0..64).collect();
        let nested: Vec<u64> = v
            .clone()
            .into_par_iter()
            .map(|x| {
                let (a, b) = super::join(|| x * 2, || x * 3);
                a + b
            })
            .collect();
        let seq: Vec<u64> = v.iter().map(|x| x * 5).collect();
        assert_eq!(nested, seq);
        super::set_num_threads(0);
    }

    #[test]
    fn idle_pool_parks_instead_of_spinning() {
        let _g = config_guard();
        super::set_num_threads(3);
        let v: Vec<u64> = (0..512).collect();
        let _: Vec<u64> = v.into_par_iter().map(|x| x + 1).collect();
        // Give the workers a moment to drain and park, then require every
        // one of them to be condvar-blocked (not scanning queues in a
        // loop): a spinning worker never appears in the idle count.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            let stats = super::pool_stats();
            if stats.idle == stats.workers && stats.workers == 3 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "workers failed to park: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Parked means no task executions happen while quiescent.
        let t0 = super::pool_stats().tasks;
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(super::pool_stats().tasks, t0);
        super::set_num_threads(0);
    }

    #[test]
    fn steal_stress_capacity_forces_identical_results() {
        let _g = config_guard();
        super::set_num_threads(4);
        let v: Vec<u64> = (0..4096).collect();
        let baseline: Vec<u64> = v.clone().into_par_iter().map(|x| x * 11).collect();
        // Funnel all submissions through worker 0 with a tiny capacity:
        // workers 1..3 make progress only by stealing, and the injector
        // absorbs the overflow. Results must not change.
        super::set_test_deque_capacity(1);
        let steals_before = super::pool_stats().steals;
        let stressed: Vec<u64> = v.into_par_iter().map(|x| x * 11).collect();
        super::set_test_deque_capacity(0);
        assert_eq!(stressed, baseline);
        assert!(
            super::pool_stats().steals > steals_before,
            "the capacity funnel must manufacture steals"
        );
        super::set_num_threads(0);
    }

    #[test]
    fn help_while_drives_latched_work() {
        let _g = config_guard();
        super::set_num_threads(2);
        static DONE: AtomicUsize = AtomicUsize::new(0);
        DONE.store(0, Ordering::SeqCst);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    DONE.fetch_add(1, Ordering::SeqCst);
                });
            }
            // The caller waits on an external condition its own spawned
            // tasks establish, helping to run them meanwhile.
            s.help_while(|| DONE.load(Ordering::SeqCst) < 8);
        });
        assert_eq!(DONE.load(Ordering::SeqCst), 8);
        super::set_num_threads(0);
    }
}
