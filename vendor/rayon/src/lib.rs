//! Offline, API-compatible subset of the `rayon` crate.
//!
//! Provides genuinely parallel (std::thread-based) versions of the rayon
//! idioms this workspace uses: `into_par_iter()` / `par_iter()` with `map`
//! and order-preserving `collect`, plus [`join`]. Work is split into one
//! contiguous chunk per available core; results are reassembled in input
//! order, so a parallel `collect` is always element-for-element identical
//! to the sequential equivalent.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

pub mod iter;

pub use iter::{IntoParallelIterator, IntoParallelRefIterator};

/// Common imports.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Worker-count override installed by [`set_num_threads`] (0 = automatic).
static NUM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the number of worker threads used by every subsequent parallel
/// operation in this process; `0` restores the automatic choice (one per
/// available core). The real rayon configures this through its global
/// thread-pool builder; this shim spawns scoped workers per call, so a
/// process-wide count is the equivalent control. Benchmarks and CI smoke
/// jobs use it (via `experiments --threads N`) to make wall-clock numbers
/// reproducible across hosts.
pub fn set_num_threads(n: usize) {
    NUM_THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    match NUM_THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Maps `f` over `items` using one thread per contiguous chunk, preserving
/// input order in the output.
pub(crate) fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n).max(1);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);

    let fref = &f;
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(fref).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = v.iter().map(|x| x * 3).collect();
        let par: Vec<u64> = v.into_par_iter().map(|x| x * 3).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_iter_by_ref() {
        let v: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[99], 198);
        assert_eq!(v.len(), 100, "by-ref iteration leaves the source intact");
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn range_par_iter() {
        let squares: Vec<usize> = (0..50usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
    }

    #[test]
    fn thread_count_override_pins_and_restores() {
        let auto = super::current_num_threads();
        super::set_num_threads(3);
        assert_eq!(super::current_num_threads(), 3);
        // Parallel results are identical under any pinned count.
        let v: Vec<u64> = (0..1000).collect();
        let pinned: Vec<u64> = v.clone().into_par_iter().map(|x| x * 7).collect();
        super::set_num_threads(0);
        assert_eq!(super::current_num_threads(), auto);
        let unpinned: Vec<u64> = v.into_par_iter().map(|x| x * 7).collect();
        assert_eq!(pinned, unpinned);
    }
}
