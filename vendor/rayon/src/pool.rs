//! The persistent work-stealing worker pool behind every parallel
//! operation of this shim.
//!
//! # Architecture
//!
//! A lazily-spawned global pool of `current_num_threads() - 0` worker
//! threads, each owning a Chase–Lev-style deque: the owner pushes and
//! pops work at the *bottom* (LIFO — hot caches, nested spawns run
//! immediately), idle workers steal from the *top* (FIFO — the oldest,
//! coarsest task migrates). The real Chase–Lev structure is a lock-free
//! array deque; this offline shim renders the same discipline with a
//! mutexed `VecDeque` per worker, which is indistinguishable at the task
//! granularity this workspace schedules (whole (channel × shard) resolve
//! units, map chunks — microseconds to milliseconds each, so an
//! uncontended lock per transfer is noise).
//!
//! External threads (anyone who is not a pool worker) submit by
//! round-robining tasks across the worker deques; a shared **injector**
//! queue takes overflow (and everything, under the stress hook below).
//! Idle workers park on a condvar — a quiescent pool burns no CPU — and
//! every submission wakes one sleeper.
//!
//! # Blocking, helping, and panics
//!
//! All entry points ([`scope`], [`join`], the `par_iter` machinery) block
//! the caller until every task they spawned has completed, and the
//! blocked caller *helps*: it executes queued tasks (its own deque first
//! if it is a worker, then the injector, then steals) instead of
//! sleeping. That blocking is also the soundness argument for the one
//! `unsafe` in this crate: a scoped task's borrows cannot dangle because
//! the scope that borrowed them never returns before the task has run.
//! A panicking task is caught in the worker, carried back, and re-thrown
//! in the caller at the end of the scope — after every sibling task has
//! finished, so no borrow is released early.
//!
//! # Reconfiguration
//!
//! [`set_num_threads`](crate::set_num_threads) takes effect at any time:
//! if a pool already runs at a different size it is **retired** — its
//! workers drain their queues and exit, while in-flight scopes keep their
//! handle to it and complete normally (worst case the scope's own caller
//! executes the stragglers) — and the next parallel operation spawns a
//! fresh pool at the new size. Nothing is ever lost or run twice.
//!
//! # Scheduling-stress test hook
//!
//! [`set_test_deque_capacity`] funnels every submission through worker
//! 0's deque up to the given capacity (overflow spills to the injector),
//! manufacturing maximal imbalance so that *every other worker must
//! steal*. The determinism suite runs golden workloads under tiny
//! capacities to prove outcomes are schedule-independent.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// A queued unit of work. Always a lifetime-erased scoped closure; the
/// erasure is sound because the owning scope blocks until the task runs
/// (see [`Scope::spawn`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Worker-count override installed by [`crate::set_num_threads`]
/// (0 = automatic, one worker per available core).
static NUM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The live pool, if one has been spawned (`None` before first use, after
/// retirement, and always when the effective thread count is 1).
static REGISTRY: Mutex<Option<Arc<Shared>>> = Mutex::new(None);

/// Stress hook: when non-zero, all submissions funnel through worker 0's
/// deque up to this length, then spill to the injector.
static TEST_DEQUE_CAP: AtomicUsize = AtomicUsize::new(0);

// Lifetime cumulative counters (across pool retirements — monotone, so
// observers can take deltas without caring about reconfiguration).
static STAT_STEALS: AtomicU64 = AtomicU64::new(0);
static STAT_TASKS: AtomicU64 = AtomicU64::new(0);
static STAT_PARKS: AtomicU64 = AtomicU64::new(0);
static STAT_INJECTED: AtomicU64 = AtomicU64::new(0);

/// Pins the number of worker threads used by every subsequent parallel
/// operation in this process; `0` restores the automatic choice (one per
/// available core).
///
/// Reconfiguration is **explicit and immediate** (this is the documented
/// fix for `--threads` only taking effect before first pool use): if a
/// pool is already running at a different size, it is retired — its
/// workers finish whatever is queued and exit; operations mid-flight on
/// it complete unaffected — and the next parallel operation lazily spawns
/// a fresh pool at the new count.
pub fn set_num_threads(n: usize) {
    NUM_THREADS_OVERRIDE.store(n, Ordering::SeqCst);
    let mut reg = lock(&REGISTRY);
    if let Some(pool) = reg.as_ref() {
        if pool.threads != effective_threads() {
            pool.begin_shutdown();
            *reg = None;
        }
    }
}

/// Number of worker threads used for parallel operations (the pinned
/// override, or one per available core).
pub fn current_num_threads() -> usize {
    match NUM_THREADS_OVERRIDE.load(Ordering::SeqCst) {
        0 => auto_threads(),
        n => n,
    }
}

/// `available_parallelism`, probed once per process (it can involve
/// cgroup filesystem reads — too costly for a per-slot query).
fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

fn effective_threads() -> usize {
    current_num_threads().max(1)
}

/// Sets the scheduling-stress deque capacity (`0` = off, the default).
/// While set, every submission lands on worker 0's deque until it holds
/// `cap` tasks, then spills to the shared injector — so with two or more
/// workers, all progress beyond worker 0's first `cap` tasks requires
/// stealing. A test hook: determinism suites use it to prove outcomes are
/// independent of steal-heavy schedules; it has no other legitimate use.
pub fn set_test_deque_capacity(cap: usize) {
    TEST_DEQUE_CAP.store(cap, Ordering::SeqCst);
}

/// A snapshot of pool activity. Counters are cumulative over the process
/// lifetime (they survive [`set_num_threads`] retirements), so observers
/// take deltas; `workers`/`idle` describe the currently live pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads in the live pool (0 when no pool has spawned).
    pub workers: usize,
    /// Workers currently parked (no work to do; condvar-blocked, not
    /// spinning).
    pub idle: usize,
    /// Tasks taken from another worker's deque (cumulative).
    pub steals: u64,
    /// Tasks executed by pool workers (cumulative; excludes tasks the
    /// blocked caller ran itself while helping).
    pub tasks: u64,
    /// Times a worker parked after finding no work (cumulative).
    pub parks: u64,
    /// Tasks that went through the shared injector (cumulative).
    pub injected: u64,
}

/// Reads the current [`PoolStats`].
pub fn pool_stats() -> PoolStats {
    let (workers, idle) = match lock(&REGISTRY).as_ref() {
        Some(p) => (p.threads, *lock(&p.idle)),
        None => (0, 0),
    };
    PoolStats {
        workers,
        idle,
        steals: STAT_STEALS.load(Ordering::SeqCst),
        tasks: STAT_TASKS.load(Ordering::SeqCst),
        parks: STAT_PARKS.load(Ordering::SeqCst),
        injected: STAT_INJECTED.load(Ordering::SeqCst),
    }
}

/// Everything the workers and their clients share. Held in an `Arc`:
/// the registry keeps the live pool's, scopes clone it, and retired pools
/// stay alive exactly as long as someone still schedules on them.
struct Shared {
    threads: usize,
    /// One deque per worker: owner pushes/pops at the back (LIFO),
    /// thieves pop the front (FIFO).
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// External-overflow queue (and the funnel target under the stress
    /// hook).
    injector: Mutex<VecDeque<Job>>,
    /// Total queued-but-unclaimed tasks; the park/wake handshake keys off
    /// it (incremented before a push, decremented by the dequeuer).
    pending: AtomicUsize,
    /// Parked-worker count, guarded by the mutex `wake` waits on.
    idle: Mutex<usize>,
    wake: Condvar,
    /// Callers blocked in a help loop with nothing left to help with,
    /// parked for task *completions* (mirrored in `helper_count` so the
    /// per-task completion path can skip the lock when nobody waits).
    helpers: Mutex<()>,
    done: Condvar,
    helper_count: AtomicUsize,
    /// Round-robin cursor for external submissions.
    cursor: AtomicUsize,
    shutdown: AtomicBool,
}

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    // Worker panics are caught inside the job wrapper, so a poisoned lock
    // means a panic inside this module itself; propagating the original
    // panic payload loses nothing.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// `(pool identity, worker index)` for pool workers; `None` on
    /// external threads. The identity is the `Arc<Shared>` address, so a
    /// worker of a retired pool never mistakes itself for a worker of the
    /// live one.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> = const { std::cell::Cell::new(None) };
}

impl Shared {
    fn new(threads: usize) -> Arc<Shared> {
        let shared = Arc::new(Shared {
            threads,
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            idle: Mutex::new(0),
            wake: Condvar::new(),
            helpers: Mutex::new(()),
            done: Condvar::new(),
            helper_count: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        for i in 0..threads {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("mca-pool-{i}"))
                .spawn(move || s.worker_loop(i))
                .expect("spawning a pool worker thread failed");
        }
        shared
    }

    fn id(&self) -> usize {
        self as *const Shared as usize
    }

    /// The calling thread's worker index in *this* pool, if any.
    fn own_index(&self) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((id, i)) if id == self.id() => Some(i),
            _ => None,
        })
    }

    /// Queues one task and wakes a sleeper. Worker threads push onto
    /// their own deque (LIFO end); external threads round-robin across
    /// the worker deques; the stress hook funnels everything through
    /// worker 0 with injector overflow.
    fn submit(&self, job: Job) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let cap = TEST_DEQUE_CAP.load(Ordering::SeqCst);
        if cap != 0 {
            let mut d0 = lock(&self.deques[0]);
            if d0.len() < cap {
                d0.push_back(job);
            } else {
                drop(d0);
                STAT_INJECTED.fetch_add(1, Ordering::SeqCst);
                lock(&self.injector).push_back(job);
            }
        } else if let Some(i) = self.own_index() {
            lock(&self.deques[i]).push_back(job);
        } else {
            let i = self.cursor.fetch_add(1, Ordering::SeqCst) % self.threads;
            lock(&self.deques[i]).push_back(job);
        }
        // Wake one sleeper. Taking the idle lock orders this against the
        // sleep path's re-check of `pending`, closing the lost-wake race.
        let idle = lock(&self.idle);
        if *idle > 0 {
            self.wake.notify_one();
        }
    }

    /// Claims one queued task, as `who` (a worker index, or an external
    /// helper). Workers prefer their own deque's LIFO end, then the
    /// injector, then steal the FIFO end of the other deques; helpers
    /// skip the "own deque" step.
    fn find_task(&self, who: Option<usize>) -> Option<Job> {
        if let Some(i) = who {
            if let Some(job) = lock(&self.deques[i]).pop_back() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        if let Some(job) = lock(&self.injector).pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let n = self.threads;
        let start = who.map_or(0, |i| i + 1);
        for k in 0..n {
            let v = (start + k) % n;
            if Some(v) == who {
                continue;
            }
            if let Some(job) = lock(&self.deques[v]).pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                STAT_STEALS.fetch_add(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// Runs one queued task on the calling thread, if any is available.
    fn try_run_one(&self, who: Option<usize>) -> bool {
        match self.find_task(who) {
            Some(job) => {
                job();
                self.notify_done();
                true
            }
            None => false,
        }
    }

    /// Wakes helpers parked for task completions.
    fn notify_done(&self) {
        if self.helper_count.load(Ordering::SeqCst) > 0 {
            let _guard = lock(&self.helpers);
            self.done.notify_all();
        }
    }

    /// The worker main loop: run tasks while any exist; park on the wake
    /// condvar when drained (no busy-spin — a quiescent pool is silent);
    /// exit once retired and fully drained.
    fn worker_loop(self: Arc<Shared>, index: usize) {
        WORKER.with(|w| w.set(Some((self.id(), index))));
        loop {
            if let Some(job) = self.find_task(Some(index)) {
                job();
                STAT_TASKS.fetch_add(1, Ordering::SeqCst);
                self.notify_done();
                continue;
            }
            let mut idle = lock(&self.idle);
            // Re-check under the lock: a submitter increments `pending`
            // before taking this lock to notify, so either we see the
            // task here or the submitter sees us sleeping.
            if self.pending.load(Ordering::SeqCst) > 0 {
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            *idle += 1;
            STAT_PARKS.fetch_add(1, Ordering::SeqCst);
            // The timeout is belt-and-braces against a missed wake; the
            // handshake above should make it unreachable.
            let (guard, _) = self
                .wake
                .wait_timeout(idle, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            idle = guard;
            *idle -= 1;
        }
    }

    /// Retires the pool: workers drain their queues and exit. In-flight
    /// scopes keep scheduling on it; their callers' help loops guarantee
    /// completion even after the last worker is gone.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _idle = lock(&self.idle);
        self.wake.notify_all();
    }
}

/// The live pool, spawning it if needed. `None` when the effective
/// thread count is 1 — every operation then runs inline, with no pool
/// and no worker threads at all.
fn current_pool() -> Option<Arc<Shared>> {
    let n = effective_threads();
    if n <= 1 {
        return None;
    }
    let mut reg = lock(&REGISTRY);
    if let Some(pool) = reg.as_ref() {
        if pool.threads == n {
            return Some(Arc::clone(pool));
        }
        pool.begin_shutdown();
    }
    let pool = Shared::new(n);
    *reg = Some(Arc::clone(&pool));
    Some(pool)
}

/// Completion latch plus panic carrier for one [`Scope`].
struct ScopeLatch {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeLatch {
    fn store_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = lock(&self.panic);
        // First panic wins; later ones are duplicates of the same broken
        // invariant and are dropped, as the real rayon does.
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A scope for spawning borrowed tasks onto the pool; created by
/// [`scope`], which blocks until every spawned task has completed.
pub struct Scope<'scope> {
    pool: Option<Arc<Shared>>,
    latch: Arc<ScopeLatch>,
    /// Invariant in `'scope`, as in the real rayon: a longer-lived scope
    /// must not coerce into a shorter-lived one.
    marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `f` as a stealable pool task. With an effective thread
    /// count of 1 the task runs inline right here — same semantics,
    /// no pool.
    ///
    /// If `f` panics, the panic is re-thrown by the enclosing [`scope`]
    /// call after all sibling tasks have completed.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let Some(pool) = &self.pool else {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                self.latch.store_panic(payload);
            }
            return;
        };
        self.latch.remaining.fetch_add(1, Ordering::SeqCst);
        let latch = Arc::clone(&self.latch);
        let shared = Arc::clone(pool);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                latch.store_panic(payload);
            }
            latch.remaining.fetch_sub(1, Ordering::SeqCst);
            shared.notify_done();
        });
        // SAFETY: the only unsafe in this crate. The job borrows data of
        // lifetime 'scope; erasing that lifetime is sound because
        // `scope()` (and `Scope::drop` has no part in this — scope() is
        // the sole constructor and always runs the wait) does not return
        // until `latch.remaining` is zero, i.e. until this closure has
        // finished executing — even if the scope body or a sibling task
        // panics. The borrowed data therefore strictly outlives every
        // access the job makes. Box<dyn FnOnce + Send> has identical
        // layout for both lifetimes (only the lifetime bound differs).
        #[allow(unsafe_code)]
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        pool.submit(job);
    }

    /// Runs queued pool tasks while `still_waiting()` returns `true`,
    /// parking briefly when the queues are dry. The caller's way to wait
    /// for a condition its spawned tasks will establish (e.g. a
    /// per-channel completion latch) without going idle while there is
    /// work to help with.
    pub fn help_while<F: FnMut() -> bool>(&self, mut still_waiting: F) {
        let Some(pool) = &self.pool else {
            // Inline mode: spawn() already ran everything.
            assert!(
                !still_waiting(),
                "help_while would wait forever: no pool, and the condition still holds"
            );
            return;
        };
        let who = pool.own_index();
        while still_waiting() {
            if pool.try_run_one(who) {
                continue;
            }
            // Nothing to help with: park for a completion notification.
            pool.helper_count.fetch_add(1, Ordering::SeqCst);
            let guard = lock(&pool.helpers);
            // Re-check after registering; a completion between the last
            // predicate check and here would otherwise be missed.
            if still_waiting() && pool.find_task(who).is_none() {
                let _ = pool
                    .done
                    .wait_timeout(guard, Duration::from_micros(200))
                    .unwrap_or_else(|e| e.into_inner());
            } else {
                drop(guard);
                pool.helper_count.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            pool.helper_count.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn wait_all(&self) {
        let latch = &self.latch;
        self.help_while(|| latch.remaining.load(Ordering::SeqCst) != 0);
    }
}

/// Creates a [`Scope`] whose spawned tasks may borrow from the caller's
/// stack, runs `body` with it, and blocks until every spawned task has
/// completed — helping to execute them rather than sleeping. Panics from
/// the body or from any task are re-thrown here, after all tasks finish.
pub fn scope<'scope, R>(body: impl FnOnce(&Scope<'scope>) -> R) -> R {
    let s = Scope {
        pool: current_pool(),
        latch: Arc::new(ScopeLatch {
            remaining: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }),
        marker: std::marker::PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| body(&s)));
    // The wait must run even when the body panicked: spawned tasks still
    // borrow the caller's stack.
    s.wait_all();
    let task_panic = lock(&s.latch.panic).take();
    match (result, task_panic) {
        (Err(payload), _) => panic::resume_unwind(payload),
        (Ok(_), Some(payload)) => panic::resume_unwind(payload),
        (Ok(r), None) => r,
    }
}

/// Runs both closures, potentially in parallel, returning both results.
/// `b` is made stealable; `a` runs on the calling thread. On a worker
/// thread `b` lands on the worker's own deque (LIFO), so an un-stolen
/// `b` runs immediately after `a` with hot caches — the Chase–Lev
/// nested-join pattern.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra = None;
    let mut rb = None;
    scope(|s| {
        s.spawn(|| rb = Some(b()));
        ra = Some(a());
    });
    match (ra, rb) {
        (Some(ra), Some(rb)) => (ra, rb),
        // Unreachable: scope() re-throws any panic, and absent a panic
        // both closures ran to completion.
        _ => unreachable!("scope returned with a join closure unfinished"),
    }
}

/// How many map chunks to cut per worker: more than one so stragglers
/// are stealable, bounded so tiny items aren't swamped by task overhead.
const CHUNKS_PER_THREAD: usize = 4;

/// Maps `f` over `items` on the pool, preserving input order in the
/// output. Work is cut into [`CHUNKS_PER_THREAD`] × threads chunks so an
/// unbalanced chunk can be stolen around; results are reassembled in
/// chunk order, so the output is always element-for-element identical to
/// the sequential map.
pub(crate) fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = effective_threads().min(n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil((threads * CHUNKS_PER_THREAD).min(n));
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(n.div_ceil(chunk_len));
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);

    let mut outs: Vec<Option<Vec<R>>> = (0..chunks.len()).map(|_| None).collect();
    let fref = &f;
    scope(|s| {
        for (chunk, out) in chunks.drain(..).zip(outs.iter_mut()) {
            s.spawn(move || *out = Some(chunk.into_iter().map(fref).collect()));
        }
    });
    let mut result = Vec::with_capacity(n);
    for out in outs {
        result.extend(out.expect("scope completed every chunk"));
    }
    result
}
