//! Parallel iterator types.

use crate::parallel_map;
use std::ops::Range;

/// Conversion into a by-value parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Starts a parallel pipeline over the elements.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Borrowing parallel iteration (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;

    /// Starts a parallel pipeline over references to the elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each element through `f` (executed in parallel at `collect`).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the elements (parallelism-neutral; kept for API parity).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel pipeline; executes on `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Runs the pipeline across threads and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, self.f).into_iter().collect()
    }

    /// Chains another map stage.
    pub fn map<R2: Send, G: Fn(R) -> R2 + Sync>(self, g: G) -> ParMap<T, impl Fn(T) -> R2 + Sync> {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |x| g(f(x)),
        }
    }
}
