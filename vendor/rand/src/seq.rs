//! Sequence-related random operations.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = SmallRng::seed_from_u64(6);
        let v = [1, 2, 3];
        assert!(Vec::<i32>::new().as_slice().choose(&mut rng).is_none());
        for _ in 0..10 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
