//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in an environment with no crates.io access, so the
//! subset of `rand 0.8` the simulator actually uses is implemented locally:
//! [`rngs::SmallRng`] (xoshiro256++), the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits with `gen`, `gen_range`, and `gen_bool`, and
//! [`seq::SliceRandom`]. Streams are deterministic functions of the seed,
//! which is all the repository's experiments require; no claim is made that
//! the byte streams match upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample over the whole domain of `T`
    /// (for floats: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..5);
            assert!(n < 5);
            let m: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&m));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = SmallRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
