//! Small, fast RNGs.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step — used to expand a 64-bit seed into RNG state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small-state, fast, non-cryptographic RNG (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn no_trivial_cycles_and_decent_spread() {
        let mut rng = SmallRng::seed_from_u64(0);
        let vals: HashSet<u64> = (0..4096).map(|_| rng.next_u64()).collect();
        assert_eq!(vals.len(), 4096);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SmallRng::seed_from_u64(11);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
